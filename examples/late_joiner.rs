//! Late joiner: who makes room for a newcomer?
//!
//! The paper's model is explicit that its initial-window quantifier covers
//! *"connections (with smaller window sizes) starting to send after other
//! connections (with larger window sizes)"*. This example stages exactly
//! that: an incumbent flow owns the link; 400 steps in, a newcomer arrives
//! with a 1-MSS window. For each protocol we report how long the newcomer
//! needs to reach half its fair share and where the pair settles —
//! convergence-to-fairness (Metric IV/V) as a lived experience rather than
//! a score.
//!
//! ```sh
//! cargo run --release --example late_joiner
//! ```

use axiomatic_cc::core::{LinkParams, Protocol};
use axiomatic_cc::fluidsim::{Scenario, SenderConfig};
use axiomatic_cc::protocols::registry::resolve;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let link = LinkParams::reference(); // C = 100 MSS
    let join_at = 400u64;
    let steps = 4000usize;
    println!(
        "link C = {:.0} MSS; incumbent starts at t=0, newcomer joins at t={join_at}\n",
        link.capacity()
    );
    println!(
        "{:<20} {:>22} {:>16} {:>14}",
        "protocol", "steps to half share", "tail fairness", "tail windows"
    );
    println!("{}", "-".repeat(76));

    for name in [
        "reno",
        "cubic",
        "scalable",
        "robust-aimd",
        "tfrc",
        "highspeed",
        "vegas",
    ] {
        let proto: Box<dyn Protocol> = resolve(name)?;
        let trace = Scenario::new(link)
            .sender(SenderConfig::new(proto.clone_box()).initial_window(90.0))
            .sender(
                SenderConfig::new(proto.clone_box())
                    .initial_window(1.0)
                    .start_at(join_at),
            )
            .steps(steps)
            .run();

        // Fair share ≈ half the loss threshold; time to reach half of it.
        let half_share = link.loss_threshold() / 4.0;
        let reach = trace.senders[1].window[join_at as usize..]
            .iter()
            .position(|&w| w >= half_share);
        let tail = trace.tail_start(0.75);
        let fair = axiomatic_cc::core::axioms::fairness::measured_fairness(&trace, tail);
        let w0 = trace.senders[0].mean_window_from(tail);
        let w1 = trace.senders[1].mean_window_from(tail);
        println!(
            "{:<20} {:>22} {:>16.3} {:>7.1}/{:<6.1}",
            proto.name(),
            reach.map_or("never".to_string(), |s| format!("{s} steps")),
            fair,
            w0,
            w1,
        );
    }
    println!(
        "\nAIMD-family protocols converge (Chiu–Jain): the incumbent's multiplicative\n\
         back-offs shed more than the newcomer's, until the windows meet. Scalable\n\
         (MIMD) never converges — synchronized multiplicative moves preserve the\n\
         incumbent's advantage forever, Table 1's <0> fairness in action."
    );
    Ok(())
}
