//! Lossy satellite link: robustness to non-congestion loss (Metric VI).
//!
//! The scenario the paper borrows from PCC's motivation: a sender alone on
//! a long, fat, *noisy* path — plenty of spare capacity, but a constant
//! random packet-loss rate that has nothing to do with congestion. Classic
//! TCP misreads the noise as congestion and collapses; Robust-AIMD
//! tolerates loss below its ε threshold and keeps climbing; PCC climbs
//! through anything below its 5% utility cliff.
//!
//! Runs the sweep at three loss rates (0.1%, 0.5%, 2%) in the fluid model
//! (Bernoulli per-packet loss) and reports the achieved average goodput
//! plus each protocol's measured robustness score.
//!
//! ```sh
//! cargo run --release --example lossy_satellite
//! ```

use axiomatic_cc::analysis::estimators::{measure_robustness_fluid, ROBUSTNESS_RATES};
use axiomatic_cc::core::units::sec_to_ms;
use axiomatic_cc::core::{LinkParams, Protocol};
use axiomatic_cc::fluidsim::{LossModel, Scenario, SenderConfig};
use axiomatic_cc::protocols::{Aimd, Cubic, Pcc, RobustAimd};

fn main() {
    // A 250 Mbps satellite-ish path, 300 ms RTT: C ≈ 6250 MSS — far more
    // than any sender here reaches, so loss is never congestive.
    let link = LinkParams::new(20_833.0, 0.15, 2000.0);
    println!(
        "link: {:.0} MSS/s, {:.0} ms RTT, C = {:.0} MSS — noisy but uncongested\n",
        link.bandwidth,
        sec_to_ms(link.min_rtt()),
        link.capacity()
    );

    let lineup: Vec<Box<dyn Protocol>> = vec![
        Box::new(Aimd::reno()),
        Box::new(Cubic::linux()),
        Box::new(RobustAimd::new(1.0, 0.8, 0.005)),
        Box::new(RobustAimd::table2()), // ε = 0.01
        Box::new(Pcc::new()),
    ];

    println!(
        "{:<20} {:>11} {:>11} {:>11} {:>12}",
        "protocol", "0.1% loss", "0.5% loss", "2% loss", "robustness α"
    );
    println!("{}", "-".repeat(70));
    for proto in &lineup {
        let mut cells = Vec::new();
        for rate in [0.001, 0.005, 0.02] {
            let trace = Scenario::new(link)
                .sender(SenderConfig::new(proto.clone_box()).initial_window(10.0))
                .wire_loss(LossModel::Bernoulli { rate })
                .seed(7)
                .steps(4000)
                .run();
            let tail = trace.tail_start(0.5);
            let goodput = trace.senders[0].mean_goodput_from(tail);
            cells.push(goodput / link.bandwidth); // fraction of link rate
        }
        let robustness = measure_robustness_fluid(proto.as_ref(), &ROBUSTNESS_RATES, 3000);
        println!(
            "{:<20} {:>10.1}% {:>10.1}% {:>10.1}% {:>12.3}",
            proto.name(),
            cells[0] * 100.0,
            cells[1] * 100.0,
            cells[2] * 100.0,
            robustness,
        );
    }
    println!(
        "\ngoodput is shown as % of link rate. Table 1's robustness column: every classical\n\
         protocol is 0-robust; Robust-AIMD(a,b,ε) is ε-robust — visible above as the\n\
         ε = 0.5% variant surviving 0.1% noise, the ε = 1% variant surviving 0.5%, and\n\
         PCC (loss-cliff at 5%) shrugging off all three rates."
    );
}
