//! Parking lot under churn: arrival storms on a multi-bottleneck path.
//!
//! The 3-hop parking lot from `parking_lot.rs`, now with a dynamic flow
//! population: seeded Poisson arrivals inject extra long flows (crossing
//! every hop) that live for a few hundred steps and depart. Each arrival
//! shoves the standing allocation aside; the question §6's dynamics
//! axioms ask is how fast the aggregate re-converges onto the bottleneck
//! and what the visitors do to the long/short split while they coexist.
//! This example runs the storm for Reno and for Vegas and prints the
//! arrival schedule, the convergence-after-arrival metric (mean steps for
//! hop-0 load to re-reach 80% of capacity after each arrival), and the
//! resulting goodput split.
//!
//! ```sh
//! cargo run --release --example parking_lot_churn
//! ```

use axiomatic_cc::core::axioms::churn::mean_settle_after_arrival;
use axiomatic_cc::core::{LinkParams, Protocol, ScenarioError};
use axiomatic_cc::fluidsim::{ChurnPlan, FlowConfig, NetScenario, Topology};
use axiomatic_cc::protocols::{Aimd, Vegas};

fn main() -> Result<(), ScenarioError> {
    let hop = LinkParams::reference(); // C = 100 MSS per hop
    let hops = 3;
    let steps = 4000;
    let long_path: Vec<usize> = (0..hops).collect();

    // Deterministic storm: ~1 arrival per 500 steps, each visitor living
    // ~250 steps, at most 2 visitors at once — sparse enough that hop 0
    // drains between visits. Same seed → same schedule.
    let plan = ChurnPlan::poisson(0.002, 250.0).seed(7).max_concurrent(2);
    let arrivals: Vec<u64> = plan
        .expand(steps as u64)
        .iter()
        .map(|iv| iv.start)
        .collect();
    println!(
        "parking lot under churn: {hops} hops of C = {:.0} MSS; 1 long flow + \
         short flows on hops 1.. + {} Poisson visitors on the long path",
        hop.capacity(),
        arrivals.len()
    );
    println!("arrival steps: {arrivals:?}\n");

    // Hop 0 carries only the long flow and the visitors, so its load
    // genuinely collapses on departures and the settle metric prices how
    // fast each arrival refills the bottleneck.
    let settle_threshold = 0.5 * hop.capacity();
    let protos: Vec<(&str, Box<dyn Protocol>)> = vec![
        ("TCP Reno", Box::new(Aimd::reno())),
        ("Vegas", Box::new(Vegas::classic())),
    ];

    for (label, proto) in protos {
        let mut sc = NetScenario::new(Topology::parking_lot(hops, hop)).steps(steps);
        // Flow 0: the resident long flow over every hop.
        sc = sc.flow(FlowConfig::new(proto.clone_box(), long_path.clone()));
        // Resident short flows on every hop but the first.
        for l in 1..hops {
            sc = sc.flow(FlowConfig::new(proto.clone_box(), vec![l]));
        }
        // The storm: churned visitors share the long path.
        let net = sc.churn(&plan, proto.as_ref(), long_path.clone())?.run();
        let tail = net.tail_start(0.5);

        println!("— {label} —");
        let settle = mean_settle_after_arrival(&net.link_load[0], &arrivals, settle_threshold);
        println!(
            "  convergence after arrival: {settle:.0} steps to re-reach \
             {settle_threshold:.0} MSS on hop 0"
        );
        let long = net.flow_goodput(0, tail);
        let mean_short =
            (1..hops).map(|f| net.flow_goodput(f, tail)).sum::<f64>() / (hops - 1) as f64;
        println!("  resident long flow:  {long:>7.1} MSS/s");
        println!("  resident short mean: {mean_short:>7.1} MSS/s");
        for l in 0..hops {
            println!(
                "  hop {l} utilization: {:.2}",
                net.link_utilization(l, tail)
            );
        }
        println!();
    }
    println!(
        "Reading: between visits hop 0 sags to whatever the squeezed resident\n\
         long flow holds, and the settle metric prices each arrival's refill.\n\
         Reno pays a measurable re-convergence delay because loss composed\n\
         across three hops keeps its resident small; Vegas holds more standing\n\
         window on hop 0 (it concedes on backlog, not loss), so arrivals land\n\
         in an already-settled bottleneck and the metric reads near zero."
    );
    Ok(())
}
