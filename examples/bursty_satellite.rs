//! Bursty satellite link: the [`lossy_satellite`] scenario with the noise
//! arriving in Gilbert–Elliott bursts instead of an even Bernoulli drizzle.
//!
//! Both impairments here have the **same mean loss rate** (2%) — only the
//! correlation differs (bursts average 6 packets in the bad state at 30%
//! in-burst loss). At packet granularity the comparison is subtle: a burst
//! lands inside one SACK-recovery epoch and costs a single back-off, so a
//! loss-based sender often fares *better* under bursty loss than under the
//! same number of drops sprinkled uniformly. What bursts do punish is the
//! *depth* of each back-off across consecutive bad feedback epochs —
//! Reno's ×0.5 versus Robust-AIMD's ×0.8 — which is exactly the axis the
//! `axcc gauntlet` sweep scores in the fluid model.
//!
//! ```sh
//! cargo run --release --example bursty_satellite
//! ```
//!
//! [`lossy_satellite`]: ../lossy_satellite.rs

use axiomatic_cc::core::units::{sec_to_ms, Bandwidth};
use axiomatic_cc::core::{LinkParams, Protocol};
use axiomatic_cc::packetsim::{FaultPlan, PacketScenario, PacketSenderConfig, WireLoss};
use axiomatic_cc::protocols::{Aimd, Cubic, Pcc, RobustAimd};

/// Mean non-congestion loss rate of both impairments.
const MEAN_RATE: f64 = 0.02;
/// Expected bad-state dwell (packets) of the bursty impairment.
const BURST_LEN: f64 = 6.0;
/// In-burst loss rate of the bursty impairment.
const LOSS_BAD: f64 = 0.3;

fn goodput(proto: &dyn Protocol, link: LinkParams, plan: FaultPlan) -> f64 {
    let out = PacketScenario::new(link)
        .sender(PacketSenderConfig::new(proto.clone_box()))
        .duration_secs(30.0)
        .faults(plan)
        .seed(11)
        .run();
    let tail = out.trace.tail_start(0.5);
    out.trace.senders[0].mean_goodput_from(tail)
}

fn main() {
    // A 50 Mbps satellite-ish path, 300 ms RTT: plenty of spare capacity,
    // so every drop below is the wire's fault, not congestion's.
    let link = LinkParams::from_experiment(Bandwidth::Mbps(50.0), 300.0, 500.0);
    println!(
        "link: {:.0} MSS/s, {:.0} ms RTT — noisy but uncongested",
        link.bandwidth,
        sec_to_ms(link.min_rtt()),
    );
    println!(
        "impairments: clean | uniform {:.0}% | bursty {:.0}% mean ({} pkt bursts @ {:.0}%)\n",
        MEAN_RATE * 100.0,
        MEAN_RATE * 100.0,
        BURST_LEN,
        LOSS_BAD * 100.0,
    );

    let lineup: Vec<Box<dyn Protocol>> = vec![
        Box::new(Aimd::reno()),
        Box::new(Cubic::linux()),
        Box::new(RobustAimd::table2()),
        Box::new(Pcc::new()),
    ];

    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>14}",
        "protocol", "clean", "uniform", "bursty", "bursty/uniform"
    );
    println!("{}", "-".repeat(68));
    for proto in &lineup {
        let clean = goodput(proto.as_ref(), link, FaultPlan::new());
        let uniform = goodput(
            proto.as_ref(),
            link,
            FaultPlan::new().data_loss(WireLoss::Bernoulli { rate: MEAN_RATE }),
        );
        let bursty = goodput(
            proto.as_ref(),
            link,
            FaultPlan::new().data_loss(WireLoss::bursty(MEAN_RATE, BURST_LEN, LOSS_BAD)),
        );
        println!(
            "{:<20} {:>10.0} {:>10.0} {:>10.0} {:>13.2}x",
            proto.name(),
            clean,
            uniform,
            bursty,
            if uniform > 0.0 {
                bursty / uniform
            } else {
                f64::INFINITY
            },
        );
    }
    println!(
        "\ngoodput in MSS/s (tail mean). At equal mean rate, correlated drops cost a\n\
         loss-based sender fewer back-offs than uniform drops — but each burst's\n\
         back-off is deeper the more feedback epochs it spans. Run `axcc gauntlet`\n\
         for the fluid-model sweep that scores exactly that axis (burst length at\n\
         fixed burst frequency) across the whole lineup."
    );
}
