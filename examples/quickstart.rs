//! Quickstart: two TCP Reno connections share one bottleneck.
//!
//! Builds the paper's model (Section 2), runs the dynamics, prints the
//! sawtooth, and scores the run against all the axioms a homogeneous
//! two-sender scenario can witness (Metrics I–V, VIII).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use axiomatic_cc::core::axioms::{
    convergence, efficiency, fairness, fast_utilization, latency, loss_avoidance,
};
use axiomatic_cc::core::units::sec_to_ms;
use axiomatic_cc::core::LinkParams;
use axiomatic_cc::fluidsim::{Scenario, SenderConfig};
use axiomatic_cc::protocols::Aimd;

fn main() {
    // A 12 Mbps link with 50 ms one-way propagation delay and a 20-MSS
    // buffer: capacity C = B·2Θ = 100 MSS.
    let link = LinkParams::reference();
    println!(
        "link: B = {} MSS/s, 2Θ = {} ms, τ = {} MSS  ⇒  C = {} MSS, loss threshold C+τ = {} MSS\n",
        link.bandwidth,
        sec_to_ms(link.min_rtt()),
        link.buffer,
        link.capacity(),
        link.loss_threshold()
    );

    // One incumbent with a large window, one newcomer with a tiny one:
    // the skewed start exercises AIMD's convergence-to-fairness.
    let trace = Scenario::new(link)
        .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(90.0))
        .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
        .steps(1200)
        .run();

    // Print the converged sawtooth at a resolution that resolves its
    // ~30-step period (coarser sampling would alias it).
    println!("t(step)  sender0  sender1  total   RTT(ms)  loss");
    for t in (900..1050).step_by(7) {
        println!(
            "{:>7}  {:>7.1}  {:>7.1}  {:>5.1}  {:>7.1}  {:.3}",
            t,
            trace.senders[0].window[t],
            trace.senders[1].window[t],
            trace.total_window[t],
            sec_to_ms(trace.rtt[t]),
            trace.loss[t],
        );
    }

    // Score the tail of the run against the axioms.
    let tail = trace.tail_start(0.5);
    println!("\naxiom scores over the final half of the run:");
    println!(
        "  Metric I    (efficiency):       α = {:.3}",
        efficiency::measured_efficiency(&trace, tail)
    );
    println!(
        "  Metric II   (fast-utilization): α = {:?}",
        fast_utilization::measured_fast_utilization(
            &trace.senders[0],
            trace.sender_rtt(0),
            tail,
            8
        )
    );
    println!(
        "  Metric III  (loss bound):       α = {:.4}",
        loss_avoidance::measured_loss_bound(&trace, tail)
    );
    println!(
        "  Metric IV   (fairness):         α = {:.3}  (Jain index {:.3})",
        fairness::measured_fairness(&trace, tail),
        fairness::jain_index(&trace, tail)
    );
    println!(
        "  Metric V    (convergence):      α = {:.3}",
        convergence::measured_convergence(&trace, tail)
    );
    println!(
        "  Metric VIII (latency):          α = {}",
        match latency::measured_latency_inflation(&trace, tail) {
            x if x.is_infinite() => "unbounded (loss-based protocol fills the buffer)".to_string(),
            x => format!("{x:.3}"),
        }
    );
    println!(
        "\nTable 1 predicts worst-case efficiency b = 0.5 and convergence 2b/(1+b) = {:.3} for Reno.",
        2.0 * 0.5 / 1.5
    );
}
