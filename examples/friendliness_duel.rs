//! Friendliness duel: how hard does a new protocol squeeze legacy TCP?
//!
//! Metric VII (TCP-friendliness) in action: a lineup of challengers each
//! shares a paper-grade link (20 Mbps, 42 ms RTT, 100-MSS buffer) with one
//! TCP Reno connection, in both the fluid model and the packet-level
//! simulator. For AIMD challengers the measured score is compared with
//! Theorem 2's tight bound `3(1−b)/(a(1+b))`.
//!
//! ```sh
//! cargo run --release --example friendliness_duel
//! ```

use axiomatic_cc::analysis::estimators::{measure_friendliness_fluid, measure_friendliness_packet};
use axiomatic_cc::core::theory::theorems::theorem2_friendliness_upper_bound;
use axiomatic_cc::core::units::Bandwidth;
use axiomatic_cc::core::{LinkParams, Protocol};
use axiomatic_cc::protocols::{Aimd, Binomial, Cubic, Mimd, Pcc, RobustAimd};

fn main() {
    let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
    println!(
        "arena: 20 Mbps, 42 ms RTT, 100-MSS buffer (C = {:.0} MSS); defender: TCP Reno\n",
        link.capacity()
    );
    let challengers: Vec<(Box<dyn Protocol>, Option<f64>)> = vec![
        (
            Box::new(Aimd::reno()),
            Some(theorem2_friendliness_upper_bound(1.0, 0.5)),
        ),
        (
            Box::new(Aimd::new(2.0, 0.5)),
            Some(theorem2_friendliness_upper_bound(2.0, 0.5)),
        ),
        (
            Box::new(Aimd::scalable()),
            Some(theorem2_friendliness_upper_bound(1.0, 0.875)),
        ),
        (Box::new(Cubic::linux()), None),
        (Box::new(Mimd::scalable()), None),
        (Box::new(Binomial::iiad(1.0, 1.0)), None),
        (Box::new(RobustAimd::table2()), None),
        (Box::new(Pcc::new()), None),
    ];

    let reno = Aimd::reno();
    println!(
        "{:<22} {:>12} {:>13} {:>16}",
        "challenger", "fluid score", "packet score", "Theorem 2 bound"
    );
    println!("{}", "-".repeat(67));
    for (challenger, bound) in challengers {
        let fluid =
            measure_friendliness_fluid(challenger.as_ref(), &reno, link, 1, 1, 4000, &[(1.0, 1.0)]);
        let packet = measure_friendliness_packet(challenger.as_ref(), &reno, link, 1, 1, 40.0, 0);
        println!(
            "{:<22} {:>12.3} {:>13.3} {:>16}",
            challenger.name(),
            fluid,
            packet,
            bound.map_or("-".to_string(), |b| format!("{b:.3}")),
        );
    }
    println!(
        "\nA score of 1 means Reno keeps pace; near 0 means Reno is starved.\n\
         Theorem 2's bound is tight for AIMD(a,b) — the fluid scores should sit on it.\n\
         PCC squeezes Reno hardest (it tolerates loss up to its 5% utility cliff);\n\
         Robust-AIMD is the Pareto compromise the paper proposes (robust AND friendlier)."
    );
}
