//! Buffer sizing: how τ moves every metric, at packet granularity.
//!
//! Table 1's parameterized forms say efficiency improves with buffer depth
//! (`min(1, b(1 + τ/C))`) while loss-avoidance worsens with sender count,
//! and latency (Metric VIII) pays for every MSS of standing queue. This
//! example sweeps the paper's two buffer sizes (10 and 100 MSS) plus a
//! bufferbloated 400 MSS on the packet-level simulator, for Reno and
//! Cubic with three connections, and prints the measured
//! efficiency/loss/latency tradeoff next to the Table 1 prediction —
//! the classic "small buffers cost throughput, big buffers cost delay".
//!
//! ```sh
//! cargo run --release --example buffer_sizing
//! ```

use axiomatic_cc::analysis::estimators::measure_solo_packet;
use axiomatic_cc::core::theory::ProtocolSpec;
use axiomatic_cc::core::units::{sec_to_ms, Bandwidth};
use axiomatic_cc::core::LinkParams;
use axiomatic_cc::protocols::{build_protocol, SlowStart};

fn main() {
    let n = 3;
    println!("3 connections, 20 Mbps, 42 ms RTT — sweeping buffer size\n");
    println!(
        "{:<16} {:>9} {:>14} {:>14} {:>11} {:>12} {:>14}",
        "protocol",
        "τ (MSS)",
        "eff (theory)",
        "eff (meas.)",
        "mean util",
        "loss bound",
        "queue delay"
    );
    println!("{}", "-".repeat(95));
    for spec in [ProtocolSpec::RENO, ProtocolSpec::CUBIC_LINUX] {
        for tau in [10.0, 100.0, 400.0] {
            let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, tau);
            let proto = SlowStart::new(build_protocol(&spec), f64::INFINITY);
            let m = measure_solo_packet(&proto, link, n, 40.0, 1.0, 0);
            let theory_eff = spec.efficiency(link.capacity(), tau);
            // Standing-queue delay implied by the measured mean
            // utilization above capacity.
            let mean_rtt_excess_ms =
                sec_to_ms((m.mean_utilization - 1.0).max(0.0) * link.capacity() / link.bandwidth);
            println!(
                "{:<16} {:>9} {:>14.3} {:>14.3} {:>11.3} {:>12.4} {:>11.1} ms",
                spec.name(),
                tau,
                theory_eff,
                m.efficiency,
                m.mean_utilization,
                m.loss_bound,
                mean_rtt_excess_ms,
            );
        }
    }
    println!(
        "\nreading the table: τ = 10 MSS (< C = 70) leaves the pipe draining after every\n\
         back-off (efficiency below 1, as min(1, b(1+τ/C)) predicts); τ = 100 MSS keeps\n\
         it full; τ = 400 MSS buys nothing more — it only adds standing-queue delay.\n\
         This is Metric VIII's case against bufferbloat, in the paper's own terms."
    );
}
