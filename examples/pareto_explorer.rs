//! Pareto explorer: walk the Figure 1 frontier and try to beat it.
//!
//! The paper's Section 5.2: protocols are points in metric space, and
//! design means picking a point on the Pareto frontier. This example
//! (1) prints the frontier of (fast-utilization α, efficiency β,
//! TCP-friendliness) traced out by AIMD(α, β); (2) measures a lineup of
//! real protocols and asks, for each, whether any AIMD frontier point
//! dominates it in that 3-metric subspace; (3) shows where Robust-AIMD
//! lands once robustness is added as a fourth dimension — dominated in
//! three dimensions, undominated in four, exactly the paper's argument.
//!
//! ```sh
//! cargo run --release --example pareto_explorer
//! ```

use axiomatic_cc::analysis::estimators::empirical_scores_fluid;
use axiomatic_cc::analysis::experiments::figure1::frontier_surface;
use axiomatic_cc::analysis::pareto::{pareto_front, ScoredPoint, FIGURE1_METRICS};
use axiomatic_cc::core::axioms::Metric;
use axiomatic_cc::core::{LinkParams, Protocol};
use axiomatic_cc::protocols::{Aimd, Cubic, Mimd, RobustAimd};

fn main() {
    // (1) The analytic frontier.
    let alphas = [0.5, 1.0, 2.0];
    let betas = [0.5, 0.7, 0.9];
    let fig = frontier_surface(&alphas, &betas);
    println!("Figure 1 frontier points (α, β, friendliness):");
    for p in &fig.points {
        println!(
            "  AIMD({},{})  →  ({}, {}, {:.3})",
            p.alpha, p.beta, p.alpha, p.beta, p.friendliness_bound
        );
    }
    println!(
        "dominated points on the surface: {} (a frontier has none)\n",
        fig.dominated_count()
    );

    // (2) Measure a real lineup and test for dominance by the surface.
    let link = LinkParams::reference();
    let surface = fig.as_scored_points();
    let lineup: Vec<Box<dyn Protocol>> = vec![
        Box::new(Aimd::reno()),
        Box::new(Cubic::linux()),
        Box::new(Mimd::scalable()),
        Box::new(RobustAimd::table2()),
    ];
    println!("measured protocols vs the AIMD surface (fast-util × efficiency × friendliness):");
    let mut measured_points = Vec::new();
    for proto in &lineup {
        let scores = empirical_scores_fluid(proto.as_ref(), link, 2, 2500);
        let dominated = surface
            .iter()
            .any(|s| s.scores.dominates_in(&scores, &FIGURE1_METRICS));
        println!(
            "  {:<20} fast={:<6.2} eff={:<5.2} friendly={:<6.3} robust={:<5.3} {}",
            proto.name(),
            scores.fast_utilization,
            scores.efficiency,
            scores.tcp_friendliness,
            scores.robustness,
            if dominated {
                "— dominated by the surface"
            } else {
                "— on/beyond the surface"
            }
        );
        measured_points.push(ScoredPoint::new(proto.name(), scores));
    }

    // (3) Add robustness as a fourth dimension: Robust-AIMD joins the
    // frontier because nothing else scores above 0 there.
    let four = [
        Metric::FastUtilization,
        Metric::Efficiency,
        Metric::TcpFriendliness,
        Metric::Robustness,
    ];
    let front4 = pareto_front(&measured_points, &four);
    println!(
        "\n4-metric frontier (adding robustness): {:?}",
        front4.iter().map(|p| p.label.as_str()).collect::<Vec<_>>()
    );
    println!(
        "Robust-AIMD trades friendliness for robustness — dominated in 3 dimensions is fine\n\
         as long as it is undominated in the 4th; that is the paper's design argument."
    );
}
