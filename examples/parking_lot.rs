//! Parking lot: network-wide protocol interaction (§6 future work).
//!
//! The classic multi-bottleneck topology — `k` links in a row, one long
//! flow crossing all of them, one short flow per link. The long flow pays
//! double: loss exposure on every hop (loss composes across links) and a
//! longer base RTT. This example runs the 3-hop parking lot for Reno and
//! for Vegas and prints each flow's goodput share, the per-link
//! utilization, and the long/short ratio — the number network-wide
//! fairness debates revolve around.
//!
//! ```sh
//! cargo run --release --example parking_lot
//! ```

use axiomatic_cc::core::{LinkParams, Protocol};
use axiomatic_cc::fluidsim::{FlowConfig, NetScenario, Topology};
use axiomatic_cc::protocols::{Aimd, Vegas};

fn main() {
    let hop = LinkParams::reference(); // C = 100 MSS per hop
    let hops = 3;
    println!(
        "parking lot: {hops} hops of C = {:.0} MSS; 1 long flow (all hops) + {hops} short flows\n",
        hop.capacity()
    );

    let protos: Vec<(&str, Box<dyn Protocol>)> = vec![
        ("TCP Reno", Box::new(Aimd::reno())),
        ("Vegas", Box::new(Vegas::classic())),
    ];

    for (label, proto) in protos {
        let mut sc = NetScenario::new(Topology::parking_lot(hops, hop)).steps(4000);
        // Flow 0: the long flow over every hop.
        sc = sc.flow(FlowConfig::new(proto.clone_box(), (0..hops).collect()));
        // One short flow per hop.
        for l in 0..hops {
            sc = sc.flow(FlowConfig::new(proto.clone_box(), vec![l]));
        }
        let net = sc.run();
        let tail = net.tail_start(0.5);

        println!("— {label} —");
        let long = net.flow_goodput(0, tail);
        println!("  long flow ({} hops): {:>7.1} MSS/s", hops, long);
        let mut shorts = Vec::new();
        for f in 1..=hops {
            let g = net.flow_goodput(f, tail);
            shorts.push(g);
            println!("  short flow on hop {}: {:>6.1} MSS/s", f - 1, g);
        }
        let mean_short = shorts.iter().sum::<f64>() / shorts.len() as f64;
        println!("  long/short ratio: {:.2}", long / mean_short);
        for l in 0..hops {
            println!(
                "  hop {l} utilization: {:.2}",
                net.link_utilization(l, tail)
            );
        }
        println!();
    }
    println!(
        "Reading: with Reno, loss exposure composes across hops and the long flow\n\
         gets squeezed well below the short flows' share (but never starved —\n\
         additive increase keeps probing). Vegas allocates by backlog, not loss,\n\
         and treats the long flow more gently while keeping every queue short."
    );
}
