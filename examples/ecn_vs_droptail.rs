//! ECN vs droptail: in-network queueing changes the axiom scores.
//!
//! Section 6 points at in-network queueing ("No Silver Bullet", reference
//! [25]) as a context for the axiomatic approach. This example makes the
//! point concrete at packet level: the *same* TCP Reno senders on the
//! *same* link score very differently on loss-avoidance (Metric III) and
//! latency-avoidance (Metric VIII) depending on whether the bottleneck
//! signals congestion by dropping (droptail) or by marking (ECN at a
//! 20-packet threshold). The protocol didn't change — the network's
//! feedback discipline moved the point in metric space.
//!
//! ```sh
//! cargo run --release --example ecn_vs_droptail
//! ```

use axiomatic_cc::core::axioms::{efficiency, latency, loss_avoidance};
use axiomatic_cc::core::units::{sec_to_ms, Bandwidth};
use axiomatic_cc::core::LinkParams;
use axiomatic_cc::packetsim::PacketScenario;
use axiomatic_cc::protocols::Aimd;

fn main() {
    let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
    println!("2 × TCP Reno on 20 Mbps / 42 ms / 100-MSS buffer; ECN threshold 20 MSS\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "bottleneck", "drops", "marks", "max queue", "loss bound", "mean RTT(ms)"
    );
    println!("{}", "-".repeat(82));

    for (label, ecn) in [("droptail", None), ("ECN @ 20", Some(20))] {
        let mut sc = PacketScenario::new(link)
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(40.0);
        if let Some(k) = ecn {
            sc = sc.ecn_threshold(k);
        }
        let out = sc.run();
        let tail = out.trace.tail_start(0.5);
        let loss = loss_avoidance::measured_loss_bound(&out.trace, tail);
        let mean_rtt: f64 = {
            let r = &out.trace.sender_rtt(0)[tail..];
            r.iter().sum::<f64>() / r.len() as f64
        };
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>12.4} {:>12.1}",
            label,
            out.queue.dropped,
            out.queue.marked,
            out.queue.max_depth,
            loss,
            sec_to_ms(mean_rtt),
        );
        let util = efficiency::mean_utilization(&out.trace, tail);
        let lat = latency::measured_latency_inflation(&out.trace, tail);
        println!(
            "{:<22} mean utilization {:.2}, latency inflation {}",
            "",
            util,
            if lat.is_infinite() {
                "unbounded".into()
            } else {
                format!("{lat:.2}")
            },
        );
    }

    println!(
        "\nSame protocol, same link: the marking discipline alone turns a lossy,\n\
         buffer-filling operating point into a loss-free one with a ~5x shorter\n\
         standing queue — i.e. it moves Reno along the Metric III and VIII axes\n\
         without touching Metric I. The axiom framework scores networks, not\n\
         just end-host algorithms."
    );
}
