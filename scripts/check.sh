#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints (warnings are errors), full test
# suite. CI and pre-push hooks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo tidy (axcc-tidy static analysis, gating on new findings)"
cargo run -q -p xtask -- tidy --baseline tidy.baseline

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> axcc run-all --jobs 2 --smoke (full suite through the sweep engine)"
cargo run -q -p axcc-cli -- run-all --jobs 2 --smoke \
  --cache-dir target/sweep-cache-ci --out-dir target/run-all-ci

echo "==> axcc sweep --only churn --smoke (flow churn: both engines, streaming path)"
cargo run -q -p axcc-cli -- sweep --only churn --smoke --jobs 2 \
  --cache-dir target/sweep-cache-ci > /dev/null

echo "==> axcc sweep --only explore --smoke (parameter-space exploration through the sharded store)"
cargo run -q -p axcc-cli -- sweep --only explore --smoke --jobs 2 --chunk-size 8 \
  --cache-dir target/sweep-cache-ci --cache-stats > /dev/null

echo "==> bench-sweep --check (snapshot was measured at this engine revision)"
cargo run -q --release -p axcc-bench --bin bench-sweep -- --check BENCH_sweep.json

echo "==> bench-sweep smoke gate (parallel vs serial at 4 workers on the gauntlet tier)"
# 0.90 tolerance: on a single-core host both sides run the same serial
# path, so anything below is dispatch-layer regression, not scheduling.
cargo run -q --release -p axcc-bench --bin bench-sweep -- --jobs 4 --only gauntlet \
  --reps 15 --min-speedup 0.90 --out target/BENCH_sweep_smoke.json > /dev/null

echo "==> bench-engine --smoke (streaming ≡ traced identity + speedup gate)"
cargo run -q --release -p axcc-bench --bin bench-engine -- --smoke \
  --min-speedup 0.95 --out target/BENCH_engine_smoke.json > /dev/null

echo "==> bench-serve --spawn (service smoke: daemon up, bench, drain)"
cargo run -q -p axcc-cli -- bench-serve --spawn --levels 1,2 --requests 3 \
  --steps 120 --out target/BENCH_service_smoke.json > /dev/null

echo "All checks passed."
