//! End-to-end determinism: the entire stack — protocols, both simulation
//! engines, loss injection, estimators — must be a pure function of
//! (scenario, seed). This is what makes every number in EXPERIMENTS.md
//! reproducible by `cargo run`.

use axiomatic_cc::core::units::Bandwidth;
use axiomatic_cc::core::LinkParams;
use axiomatic_cc::fluidsim::{LossModel, Scenario, SenderConfig};
use axiomatic_cc::packetsim::{PacketScenario, PacketSenderConfig};
use axiomatic_cc::protocols::registry::resolve;

const LINEUP: [&str; 7] = [
    "reno",
    "cubic",
    "scalable",
    "robust-aimd",
    "pcc",
    "vegas",
    "bin(1,0.5,1,0)",
];

#[test]
fn fluid_runs_are_bit_identical_per_seed() {
    for name in LINEUP {
        let run = |seed: u64| {
            let link = LinkParams::new(1000.0, 0.05, 20.0);
            Scenario::new(link)
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(2.0))
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(50.0))
                .wire_loss(LossModel::Bernoulli { rate: 0.01 })
                .seed(seed)
                .steps(600)
                .run()
        };
        assert_eq!(run(42), run(42), "{name} diverged under same seed");
        assert_ne!(
            run(42).senders[0].window,
            run(43).senders[0].window,
            "{name} ignored the seed"
        );
    }
}

#[test]
fn packet_runs_are_bit_identical_per_seed() {
    for name in ["reno", "cubic", "scalable", "robust-aimd", "pcc"] {
        let run = |seed: u64| {
            let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
            let out = PacketScenario::new(link)
                .sender(PacketSenderConfig::new(resolve(name).unwrap()))
                .sender(PacketSenderConfig::new(resolve(name).unwrap()).start_at_secs(1.0))
                .duration_secs(8.0)
                .wire_loss(0.01)
                .seed(seed)
                .run();
            (out.trace, out.flows, out.queue)
        };
        let (t1, f1, q1) = run(7);
        let (t2, f2, q2) = run(7);
        assert_eq!(t1, t2, "{name} trace diverged");
        assert_eq!(f1, f2, "{name} flow stats diverged");
        assert_eq!(q1, q2, "{name} queue stats diverged");
    }
}

#[test]
fn fluid_gilbert_elliott_runs_are_bit_identical_per_seed() {
    for name in LINEUP {
        let run = |seed: u64| {
            let link = LinkParams::new(1000.0, 0.05, 20.0);
            Scenario::new(link)
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(2.0))
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(50.0))
                .wire_loss(LossModel::bursty(0.01, 8.0, 0.25))
                .seed(seed)
                .steps(600)
                .run()
        };
        assert_eq!(run(42), run(42), "{name} diverged under same seed");
        assert_ne!(
            run(42).senders[0].window,
            run(43).senders[0].window,
            "{name} ignored the seed"
        );
    }
}

#[test]
fn packet_runs_under_every_impairment_are_bit_identical_per_seed() {
    use axiomatic_cc::packetsim::{FaultPlan, WireLoss};
    // (label, plan, draws randomness?) — outages and flaps are scheduled,
    // not drawn, so those runs are identical across seeds too.
    let plans: Vec<(&str, FaultPlan, bool)> = vec![
        (
            "bursty data loss",
            FaultPlan::new().data_loss(WireLoss::bursty(0.02, 6.0, 0.3)),
            true,
        ),
        (
            "ack loss",
            FaultPlan::new().ack_loss(WireLoss::Bernoulli { rate: 0.05 }),
            true,
        ),
        ("jitter", FaultPlan::new().jitter(0.004), true),
        ("reorder", FaultPlan::new().reorder(0.2, 0.01), true),
        ("outage", FaultPlan::new().outage(2.0, 2.5), false),
        (
            "capacity flap",
            FaultPlan::new().capacity_flap(3.0, 30_000.0),
            false,
        ),
        (
            "everything at once",
            FaultPlan::new()
                .data_loss(WireLoss::bursty(0.02, 6.0, 0.3))
                .ack_loss(WireLoss::Bernoulli { rate: 0.02 })
                .jitter(0.002)
                .reorder(0.1, 0.005)
                .outage(2.0, 2.5)
                .capacity_flap(4.0, 30_000.0),
            true,
        ),
    ];
    for (label, plan, stochastic) in plans {
        let run = |seed: u64| {
            let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
            let out = PacketScenario::new(link)
                .sender(PacketSenderConfig::new(resolve("reno").unwrap()))
                .sender(PacketSenderConfig::new(resolve("cubic").unwrap()).start_at_secs(0.5))
                .duration_secs(6.0)
                .faults(plan.clone())
                .seed(seed)
                .run();
            (out.trace, out.flows, out.queue)
        };
        let (t1, f1, q1) = run(9);
        let (t2, f2, q2) = run(9);
        assert_eq!(t1, t2, "{label}: trace diverged under same seed");
        assert_eq!(f1, f2, "{label}: flow stats diverged under same seed");
        assert_eq!(q1, q2, "{label}: queue stats diverged under same seed");
        if stochastic {
            let (t3, _, _) = run(10);
            assert_ne!(t1, t3, "{label}: ignored the seed");
        }
    }
}

#[test]
fn churn_family_jobs_are_bit_identical_parallel_vs_serial() {
    // The churn experiment fans dynamic-population cells out through the
    // sweep runner; worker count must never leak into the report. Run the
    // whole family serially and with 8 workers (cacheless, so every job
    // really executes both times) and demand exact bit equality on every
    // settle/fairness/utilization number.
    use axiomatic_cc::analysis::experiments::churn::{run_churn_with, ChurnReport};
    use axiomatic_cc::sweep::SweepRunner;
    fn bits(rep: &ChurnReport) -> Vec<(String, Vec<u64>)> {
        rep.rows
            .iter()
            .map(|r| {
                let mut b: Vec<u64> = r
                    .cells
                    .iter()
                    .flat_map(|c| {
                        [
                            c.settle.to_bits(),
                            c.fairness.to_bits(),
                            c.utilization.to_bits(),
                        ]
                    })
                    .collect();
                b.push(r.packet_utilization.to_bits());
                (r.protocol.clone(), b)
            })
            .collect()
    }
    let serial = run_churn_with(&SweepRunner::serial(), 400, 4.0);
    let parallel = run_churn_with(&SweepRunner::without_cache(8), 400, 4.0);
    assert_eq!(
        bits(&serial),
        bits(&parallel),
        "churn family diverged between serial and parallel runners"
    );
}

#[test]
fn deterministic_scenarios_ignore_seed_entirely() {
    // Without wire loss there is no randomness at all: seeds must not
    // matter.
    let run = |seed: u64| {
        let link = LinkParams::new(1000.0, 0.05, 20.0);
        Scenario::new(link)
            .sender(SenderConfig::new(resolve("reno").unwrap()).initial_window(1.0))
            .seed(seed)
            .steps(400)
            .run()
            .senders[0]
            .window
            .clone()
    };
    assert_eq!(run(1), run(2));
}

#[test]
fn protocol_reset_restores_initial_behaviour() {
    use axiomatic_cc::core::Observation;
    for name in LINEUP {
        let mut p = resolve(name).unwrap();
        let feed = |p: &mut Box<dyn axiomatic_cc::core::Protocol>| -> Vec<f64> {
            let mut w = 10.0;
            let mut out = Vec::new();
            for t in 0..80 {
                let loss = if t % 11 == 10 { 0.05 } else { 0.0 };
                let rtt = 0.1 + (t % 7) as f64 * 0.01;
                w = p.next_window(&Observation {
                    tick: t,
                    window: w,
                    loss_rate: loss,
                    rtt,
                    min_rtt: 0.1,
                });
                out.push(w);
            }
            out
        };
        let first = feed(&mut p);
        p.reset();
        let second = feed(&mut p);
        assert_eq!(first, second, "{name} reset is lossy");
    }
}
