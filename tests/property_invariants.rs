//! Property-based invariants across the whole stack: for *arbitrary*
//! protocol parameters, link shapes, initial windows and seeds, the model's
//! structural guarantees must hold — windows in `[0, M]`, loss in `[0, 1)`,
//! RTTs at least `2Θ`, packet conservation, trace validation, dominance
//! anti-symmetry.

#![allow(clippy::float_cmp)] // exact comparisons are deliberate in tests
use axiomatic_cc::core::protocol::MAX_WINDOW;
use axiomatic_cc::core::{AxiomScores, LinkParams};
use axiomatic_cc::fluidsim::{LossModel, Scenario, SenderConfig};
use axiomatic_cc::packetsim::PacketScenario;
use axiomatic_cc::protocols::{Aimd, Binomial, Cubic, Mimd, RobustAimd};
use proptest::prelude::*;

/// An arbitrary protocol drawn from all five families with in-domain
/// parameters.
fn arb_protocol() -> impl Strategy<Value = Box<dyn axiomatic_cc::core::Protocol>> {
    prop_oneof![
        (0.1f64..4.0, 0.1f64..0.95).prop_map(|(a, b)| {
            Box::new(Aimd::new(a, b)) as Box<dyn axiomatic_cc::core::Protocol>
        }),
        (1.001f64..1.5, 0.1f64..0.95).prop_map(|(a, b)| {
            Box::new(Mimd::new(a, b)) as Box<dyn axiomatic_cc::core::Protocol>
        }),
        (0.1f64..2.0, 0.1f64..1.0, 0.0f64..1.5, 0.0f64..1.0).prop_map(|(a, b, k, l)| {
            Box::new(Binomial::new(a, b, k, l)) as Box<dyn axiomatic_cc::core::Protocol>
        }),
        (0.05f64..1.0, 0.1f64..0.95).prop_map(|(c, b)| {
            Box::new(Cubic::new(c, b)) as Box<dyn axiomatic_cc::core::Protocol>
        }),
        (0.1f64..2.0, 0.1f64..0.95, 0.001f64..0.1).prop_map(|(a, b, e)| {
            Box::new(RobustAimd::new(a, b, e)) as Box<dyn axiomatic_cc::core::Protocol>
        }),
    ]
}

fn arb_link() -> impl Strategy<Value = LinkParams> {
    (100.0f64..20_000.0, 0.005f64..0.2, 0.0f64..500.0)
        .prop_map(|(b, theta, tau)| LinkParams::new(b, theta, tau))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fluid engine upholds every trace invariant for arbitrary
    /// protocols, links, initial windows and loss seeds.
    #[test]
    fn fluid_traces_always_validate(
        proto in arb_protocol(),
        link in arb_link(),
        init in proptest::collection::vec(0.0f64..300.0, 1..4),
        loss_rate in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let mut sc = Scenario::new(link)
            .steps(300)
            .wire_loss(LossModel::Bernoulli { rate: loss_rate })
            .seed(seed);
        for &w in &init {
            sc = sc.sender(SenderConfig::new(proto.clone_box()).initial_window(w));
        }
        let trace = sc.run();
        prop_assert_eq!(trace.validate(MAX_WINDOW), Ok(()));
        prop_assert_eq!(trace.len(), 300);
        // Link-level RTT equals equation (1) of the paper at every step.
        for (t, &x) in trace.total_window.iter().enumerate() {
            prop_assert!((trace.rtt[t] - link.rtt(x)).abs() < 1e-12);
            prop_assert!((trace.loss[t] - link.loss_rate(x)).abs() < 1e-12);
        }
    }

    /// The packet engine conserves packets and respects the buffer bound
    /// for arbitrary protocols and wire-loss rates.
    #[test]
    fn packet_engine_conserves_and_bounds_queue(
        proto in arb_protocol(),
        wire in 0.0f64..0.2,
        n in 1usize..4,
        seed in any::<u64>(),
    ) {
        let link = LinkParams::new(2000.0, 0.02, 50.0);
        let out = PacketScenario::new(link)
            .homogeneous(proto.as_ref(), n)
            .duration_secs(4.0)
            .wire_loss(wire)
            .seed(seed)
            .run();
        prop_assert!(out.conservation_ok());
        prop_assert!(out.queue.max_depth <= 50);
        prop_assert_eq!(out.trace.validate(MAX_WINDOW), Ok(()));
        // Accounting consistency: queue drops + wire losses = total losses
        // reported to flows, up to notifications still in flight at the
        // end of the run.
        let reported: u64 = out.flows.iter().map(|f| f.lost).sum();
        prop_assert!(reported <= out.queue.dropped + out.queue.wire_lost);
    }

    /// Gilbert–Elliott wire loss realizes its stationary rate: over a
    /// long run on a congestion-free link, the observed mean loss equals
    /// `π_bad · loss_bad + (1 − π_bad) · loss_good` with
    /// `π_bad = p_enter / (p_enter + p_exit)` — the two-state chain's
    /// stationary distribution — within sampling tolerance.
    #[test]
    fn gilbert_elliott_matches_its_stationary_rate(
        p_enter in 0.01f64..0.1,
        p_exit in 0.1f64..0.9,
        loss_bad in 0.1f64..0.5,
        seed in any::<u64>(),
    ) {
        let steps = 12_000;
        // Effectively infinite link: all observed loss is the wire's.
        let link = LinkParams::new(MAX_WINDOW * 100.0, 0.05, MAX_WINDOW);
        let trace = Scenario::new(link)
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0))
            .wire_loss(LossModel::GilbertElliott {
                p_enter,
                p_exit,
                loss_good: 0.0,
                loss_bad,
            })
            .steps(steps)
            .seed(seed)
            .run();
        let pi_bad = p_enter / (p_enter + p_exit);
        let expected = pi_bad * loss_bad;
        let observed: f64 =
            trace.senders[0].loss.iter().sum::<f64>() / trace.len() as f64;
        // Bursts correlate adjacent samples, so the sample mean is noisy:
        // allow 50% relative error plus a small absolute floor.
        let tol = 0.5 * expected + 0.003;
        prop_assert!(
            (observed - expected).abs() < tol,
            "observed {observed}, stationary {expected} (π_bad = {pi_bad})"
        );
    }

    /// Pareto dominance is irreflexive and anti-symmetric for arbitrary
    /// score tuples.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in arb_scores(),
        b in arb_scores(),
    ) {
        prop_assert!(!a.dominates(&a));
        prop_assert!(!(a.dominates(&b) && b.dominates(&a)));
    }

    /// Staggered entry never breaks validation, and inactive senders are
    /// recorded as zero-window.
    #[test]
    fn staggered_entry_invariants(
        start in 0u64..250,
        init in 1.0f64..200.0,
    ) {
        let link = LinkParams::new(1000.0, 0.05, 20.0);
        let trace = Scenario::new(link)
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0))
            .sender(
                SenderConfig::new(Box::new(Aimd::reno()))
                    .initial_window(init)
                    .start_at(start),
            )
            .steps(300)
            .run();
        prop_assert_eq!(trace.validate(MAX_WINDOW), Ok(()));
        for t in 0..(start as usize).min(300) {
            prop_assert_eq!(trace.senders[1].window[t], 0.0);
            prop_assert_eq!(trace.senders[1].goodput[t], 0.0);
        }
    }
}

fn arb_scores() -> impl Strategy<Value = AxiomScores> {
    (
        0.0f64..1.0,
        0.0f64..5.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..0.2,
        0.0f64..3.0,
        prop_oneof![Just(f64::INFINITY), 0.0f64..2.0],
    )
        .prop_map(
            |(eff, fast, loss, fair, conv, rob, friendly, lat)| AxiomScores {
                efficiency: eff,
                fast_utilization: fast,
                loss_bound: loss,
                fairness: fair,
                convergence: conv,
                robustness: rob,
                tcp_friendliness: friendly,
                latency_inflation: lat,
            },
        )
}
