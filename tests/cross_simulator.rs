//! Cross-simulator agreement: the fluid model (exact Section 2 dynamics)
//! and the packet-level simulator (the Emulab stand-in) must agree on the
//! *qualitative* facts the paper's evaluation rests on, even though their
//! mechanisms differ (synchronized loss vs droptail packet bursts,
//! fractional vs integral windows, instantaneous vs one-RTT feedback).

use axiomatic_cc::analysis::estimators::{
    measure_friendliness_fluid, measure_friendliness_packet, measure_solo_fluid,
    measure_solo_packet, SweepConfig,
};
use axiomatic_cc::core::units::Bandwidth;
use axiomatic_cc::core::LinkParams;
use axiomatic_cc::protocols::{Aimd, Pcc, RobustAimd, SlowStart};

fn paper_link() -> LinkParams {
    LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0)
}

/// Both backends find two Renos fair and the link well used.
#[test]
fn reno_pair_agrees_across_backends() {
    let link = paper_link();
    let fluid = measure_solo_fluid(&Aimd::reno(), &SweepConfig::standard(link, 2, 3000));
    let packet = measure_solo_packet(
        &SlowStart::new(Box::new(Aimd::reno()), f64::INFINITY),
        link,
        2,
        40.0,
        1.0,
        0,
    );
    for (name, m) in [("fluid", &fluid), ("packet", &packet)] {
        assert!(m.fairness > 0.6, "{name} fairness {}", m.fairness);
        assert!(
            m.mean_utilization > 0.8,
            "{name} util {}",
            m.mean_utilization
        );
        assert!(m.loss_bound < 0.15, "{name} loss {}", m.loss_bound);
    }
}

/// Both backends rank Reno's TCP-friendliness above PCC's — the ordering
/// Table 2 depends on.
#[test]
fn friendliness_ordering_agrees_across_backends() {
    let link = paper_link();
    let reno = Aimd::reno();
    let pcc = Pcc::new();
    let robust = RobustAimd::table2();
    let pairs = [(1.0, 1.0)];

    let fluid_pcc = measure_friendliness_fluid(&pcc, &reno, link, 1, 1, 3000, &pairs);
    let fluid_rob = measure_friendliness_fluid(&robust, &reno, link, 1, 1, 3000, &pairs);
    let packet_pcc = measure_friendliness_packet(&pcc, &reno, link, 1, 1, 40.0, 0);
    let packet_rob = measure_friendliness_packet(&robust, &reno, link, 1, 1, 40.0, 0);

    assert!(
        fluid_rob > fluid_pcc,
        "fluid: R-AIMD {fluid_rob} vs PCC {fluid_pcc}"
    );
    assert!(
        packet_rob > packet_pcc,
        "packet: R-AIMD {packet_rob} vs PCC {packet_pcc}"
    );
}

/// The robustness story (Metric VI) holds at packet level too: under 0.5%
/// wire loss with ample capacity, Robust-AIMD's goodput dwarfs Reno's.
#[test]
fn robustness_story_at_packet_level() {
    let link = LinkParams::from_experiment(Bandwidth::Mbps(100.0), 42.0, 500.0);
    let run = |p: Box<dyn axiomatic_cc::core::Protocol>| {
        let out = axiomatic_cc::packetsim::PacketScenario::new(link)
            .sender(axiomatic_cc::packetsim::PacketSenderConfig::new(p))
            .duration_secs(40.0)
            .wire_loss(0.005)
            .seed(11)
            .run();
        assert!(out.conservation_ok());
        let tail = out.trace.tail_start(0.5);
        out.trace.senders[0].mean_goodput_from(tail)
    };
    let robust = run(Box::new(RobustAimd::table2()));
    let reno = run(Box::new(Aimd::reno()));
    assert!(robust > 1.4 * reno, "robust {robust} vs reno {reno}");
}

/// Pacing (the PCC/BBR sender class, §2 future work): a *paced* PCC
/// squeezes Reno at least as hard as the window-clocked PCC model — the
/// aggressiveness the paper attributes to PCC is not an artifact of
/// ACK-clocking it.
#[test]
fn paced_pcc_is_at_least_as_aggressive() {
    use axiomatic_cc::packetsim::{PacketScenario, PacketSenderConfig};
    use axiomatic_cc::protocols::Pcc;
    let link = paper_link();
    let run = |paced: bool| {
        let mut pcc_cfg = PacketSenderConfig::new(Box::new(Pcc::new()));
        if paced {
            pcc_cfg = pcc_cfg.paced();
        }
        let out = PacketScenario::new(link)
            .sender(pcc_cfg)
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
            .duration_secs(40.0)
            .run();
        let tail = out.trace.tail_start(0.5);
        // Reno's share of tail goodput.
        let g_pcc = out.trace.senders[0].mean_goodput_from(tail);
        let g_reno = out.trace.senders[1].mean_goodput_from(tail);
        g_reno / (g_reno + g_pcc)
    };
    let windowed_share = run(false);
    let paced_share = run(true);
    assert!(
        paced_share <= windowed_share + 0.05,
        "Reno share vs paced PCC {paced_share} vs windowed PCC {windowed_share}"
    );
    assert!(paced_share < 0.35, "Reno share vs paced PCC {paced_share}");
}

/// Trace-shape contract: both backends produce validating RunTraces with
/// the same sender ordering and naming.
#[test]
fn traces_validate_and_align() {
    let link = paper_link();
    let fluid = axiomatic_cc::fluidsim::Scenario::new(link)
        .homogeneous(&Aimd::reno(), 2, 1.0)
        .steps(500)
        .run();
    fluid.validate(1e9).unwrap();

    let packet = axiomatic_cc::packetsim::PacketScenario::new(link)
        .homogeneous(&Aimd::reno(), 2)
        .duration_secs(10.0)
        .run();
    packet.trace.validate(1e9).unwrap();

    assert_eq!(fluid.num_senders(), packet.trace.num_senders());
    for (f, p) in fluid.senders.iter().zip(&packet.trace.senders) {
        assert_eq!(f.protocol, p.protocol);
        assert_eq!(f.loss_based, p.loss_based);
    }
}
