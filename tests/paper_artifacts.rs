//! Integration tests pinning the paper's headline results, end-to-end
//! (protocols → simulators → estimators → experiment builders), at reduced
//! budgets so the suite stays fast. The full-budget regenerations are the
//! `axcc-bench` binaries.

#![allow(clippy::float_cmp)] // exact comparisons are deliberate in tests
use axiomatic_cc::analysis::estimators::{
    measure_friendliness_fluid, measure_robustness_fluid, ROBUSTNESS_RATES,
};
use axiomatic_cc::analysis::experiments::figure1::frontier_surface;
use axiomatic_cc::analysis::experiments::table1::theoretical_table1;
use axiomatic_cc::analysis::experiments::table2::{TABLE2_BUFFER_MSS, TABLE2_RTT_MS};
use axiomatic_cc::analysis::experiments::theorems;
use axiomatic_cc::core::theory::ProtocolSpec;
use axiomatic_cc::core::units::Bandwidth;
use axiomatic_cc::core::LinkParams;
use axiomatic_cc::protocols::{Aimd, Pcc, RobustAimd};

/// Table 1, worst-case column, exactly as printed in the paper (up to the
/// documented MIMD loss-cell convention normalization).
#[test]
fn table1_worst_case_column_matches_paper() {
    let t = theoretical_table1(350.0, 100.0, 2);
    let get = |name: &str| {
        t.rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("row {name}"))
    };

    let reno = get("AIMD(1,0.5)");
    assert_eq!(reno.worst_case.efficiency, 0.5); // <b>
    assert_eq!(reno.worst_case.loss_bound, 1.0); // <1>
    assert_eq!(reno.worst_case.fast_utilization, 1.0); // <a>
    assert!((reno.worst_case.tcp_friendliness - 1.0).abs() < 1e-12); // <3(1-b)/(a(1+b))>
    assert_eq!(reno.worst_case.fairness, 1.0); // <1>
    assert!((reno.worst_case.convergence - 2.0 / 3.0).abs() < 1e-12); // <2b/(1+b)>

    let mimd = get("MIMD(1.01,0.875)");
    assert!(mimd.worst_case.fast_utilization.is_infinite()); // <∞>
    assert_eq!(mimd.worst_case.fairness, 0.0); // <0>
    assert_eq!(mimd.worst_case.tcp_friendliness, 0.0); // <0>

    let bin = get("BIN(1,0.5,1,0)"); // IIAD: k=1, l=0
    assert_eq!(bin.worst_case.fast_utilization, 0.0); // <0> if k>0
    assert!((bin.worst_case.tcp_friendliness - (1.5f64).sqrt() * 0.5f64.sqrt()).abs() < 1e-12);

    let cubic = get("CUBIC(0.4,0.8)");
    assert_eq!(cubic.worst_case.efficiency, 0.8); // <b>
    assert_eq!(cubic.worst_case.fast_utilization, 0.4); // <c>

    let raimd = get("R-AIMD(1,0.8,0.01)");
    assert!((raimd.worst_case.efficiency - 0.8 / 0.99).abs() < 1e-12); // <b/(1-k)>
    assert_eq!(raimd.worst_case.robustness, 0.01); // k-robust
}

/// Table 2's headline: Robust-AIMD(1,0.8,0.01) is consistently friendlier
/// to Reno than PCC. One representative cell at test budget.
#[test]
fn table2_robust_aimd_beats_pcc() {
    let link = LinkParams::from_experiment(Bandwidth::Mbps(30.0), TABLE2_RTT_MS, TABLE2_BUFFER_MSS);
    let reno = Aimd::reno();
    let pairs = [(1.0, 1.0)];
    let f_r = measure_friendliness_fluid(&RobustAimd::table2(), &reno, link, 1, 1, 3000, &pairs);
    let f_p = measure_friendliness_fluid(&Pcc::new(), &reno, link, 1, 1, 3000, &pairs);
    assert!(f_r > f_p, "R-AIMD {f_r} must beat PCC {f_p}");
    // The paper reports >1.5x in every cell; at this budget demand >1.2x.
    assert!(f_r / f_p > 1.2, "improvement {:.2}x", f_r / f_p);
}

/// Table 2's monotonicity remark: "the more Robust-AIMD connections share
/// a link the better its friendliness to TCP connections".
#[test]
fn robust_aimd_friendliness_monotone_in_connections() {
    let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), TABLE2_RTT_MS, TABLE2_BUFFER_MSS);
    let reno = Aimd::reno();
    let robust = RobustAimd::table2();
    let pairs = [(1.0, 1.0)];
    let f1 = measure_friendliness_fluid(&robust, &reno, link, 1, 1, 3000, &pairs);
    let f3 = measure_friendliness_fluid(&robust, &reno, link, 3, 1, 3000, &pairs);
    assert!(
        f3 > f1,
        "friendliness should improve with more R-AIMD senders: 1→{f1}, 3→{f3}"
    );
}

/// Figure 1: the AIMD(α, β) surface is a clean Pareto frontier and Reno
/// sits at friendliness exactly 1.
#[test]
fn figure1_surface_is_clean_frontier() {
    let fig = frontier_surface(&[0.5, 1.0, 2.0, 3.0], &[0.5, 0.7, 0.9]);
    assert_eq!(fig.dominated_count(), 0);
    let reno_pt = fig
        .points
        .iter()
        .find(|p| p.alpha == 1.0 && p.beta == 0.5)
        .unwrap();
    assert!((reno_pt.friendliness_bound - 1.0).abs() < 1e-12);
}

/// Section 4's results hold end-to-end at test budget.
#[test]
fn all_theorem_checks_pass() {
    for check in theorems::check_all(2000) {
        assert!(check.passed, "{}: {}", check.name, check.detail);
    }
}

/// Robustness scores end-to-end: the ε-knob is what buys robustness, and
/// the measured score tracks ε across the paper's three settings.
#[test]
fn robustness_tracks_epsilon() {
    let mut last = 0.0;
    for eps in [0.005, 0.007, 0.01] {
        let r = measure_robustness_fluid(&RobustAimd::new(1.0, 0.8, eps), &ROBUSTNESS_RATES, 1200);
        assert!(r > 0.0, "ε={eps} must be robust");
        assert!(r < eps, "measured robustness {r} must stay below ε={eps}");
        assert!(r >= last, "robustness must not decrease with ε");
        last = r;
    }
    // And Reno is 0-robust.
    assert_eq!(
        measure_robustness_fluid(&Aimd::reno(), &ROBUSTNESS_RATES, 1200),
        0.0
    );
}

/// The theory and the executable protocols agree on names/parameters via
/// the `ProtocolSpec` bridge (one-source-of-truth check).
#[test]
fn spec_bridge_round_trips() {
    for spec in [
        ProtocolSpec::RENO,
        ProtocolSpec::SCALABLE_MIMD,
        ProtocolSpec::CUBIC_LINUX,
        ProtocolSpec::ROBUST_AIMD_TABLE2,
    ] {
        let proto = axiomatic_cc::protocols::build_protocol(&spec);
        assert_eq!(proto.name(), spec.name());
    }
}
