//! Offline vendored stub of `serde`.
//!
//! Real serde separates the data model (`Serializer` visitors) from formats;
//! this workspace only ever serializes **to JSON**, so the stub collapses
//! the two: [`Serialize`] converts a value directly into the JSON
//! [`value::Value`] tree defined here, and the `serde_json` stub renders /
//! parses that tree. The `Serialize`/`Deserialize` derive macros come from
//! the sibling `serde_derive` stub (re-exported under the `derive` feature,
//! mirroring upstream).
//!
//! [`Deserialize`] is a marker only: no call site in the workspace
//! deserializes into a typed struct (only into `serde_json::Value`).

#![deny(missing_docs)]

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types convertible to a JSON [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// The workspace never deserializes into typed structs (only into
/// `serde_json::Value`), so no methods are required.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(v)
                } else {
                    // Upstream serde_json also emits null for non-finite floats.
                    Value::Null
                }
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);
impl_serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
