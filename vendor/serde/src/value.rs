//! The JSON value tree shared by the `serde` and `serde_json` stubs.
//!
//! Lives here (rather than in `serde_json`) so the [`crate::Serialize`]
//! trait can name it without a circular dependency; `serde_json` re-exports
//! it as `serde_json::Value`, which is the name the workspace uses.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Numbers are `f64` — every number the workspace
/// serializes is a score, rate or parameter well inside `f64` range.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` matches upstream serde_json's default
    /// (sorted keys, not insertion order).
    Object(Map),
}

/// A JSON object: string keys to values, sorted by key.
pub type Map = BTreeMap<String, Value>;

static NULL: Value = Value::Null;

impl Value {
    /// The value under `key` if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `f64` representation if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// `u64` representation if `self` is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String slice if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool if `self` is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents if `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object contents if `self` is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True if `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Render as compact JSON (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Render as two-space-indented JSON.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integral values print without a trailing ".0", like upstream.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_numbers_have_no_decimal_point() {
        assert_eq!(Value::Number(3.0).render_compact(), "3");
        assert_eq!(Value::Number(3.25).render_compact(), "3.25");
        assert_eq!(Value::Number(f64::NAN).render_compact(), "null");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            Value::String("a\"b\\c\n".into()).render_compact(),
            r#""a\"b\\c\n""#
        );
    }

    #[test]
    fn indexing_missing_is_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }
}
