//! Offline vendored stub of `rand_chacha`: a genuine ChaCha8 block cipher
//! run in counter mode, exposing the one type the workspace uses,
//! [`ChaCha8Rng`].
//!
//! The keystream is deterministic in the seed (the whole point — every
//! simulator run must be bit-identical under the same seed) but is **not**
//! guaranteed word-for-word identical to upstream `rand_chacha`, whose
//! `seed_from_u64` key-expansion differs. Nothing in the workspace pins
//! golden RNG values, so only self-consistency matters.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 pseudo-random generator (8 rounds, counter mode).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, counter, zero nonce.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (word, inp) in s.iter_mut().zip(input) {
            *word = word.wrapping_add(inp);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion, as upstream rand does for small seeds.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chacha_core_changes_every_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
