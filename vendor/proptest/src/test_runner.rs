//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG strategies draw from.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stub halves that twice because the
        // workspace's cases each run multi-hundred-step simulations.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip this case, draw another.
    Reject(String),
    /// `prop_assert!` (or friends) failed — the property is violated.
    Fail(String),
}

/// Deterministic generator for strategy draws (SplitMix64).
///
/// Seeded from the test function's name, so every `cargo test` run explores
/// the same sequence of cases — failures reproduce without a persistence
/// file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("foo");
        let mut b = TestRng::from_name("foo");
        let mut c = TestRng::from_name("bar");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
