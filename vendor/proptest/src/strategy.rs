//! Value-generation strategies: ranges, `Just`, `any`, tuples, map /
//! flat-map combinators, boxing, and unions (for `prop_oneof!`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only generated values satisfying `f` (regenerates on failure;
    /// panics after 1000 consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe alias: a boxed strategy producing `V`.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe core of [`Strategy`] (no combinator methods).
pub trait DynStrategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice between same-typed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- primitive strategies --------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles; property tests on link math don't
        // want NaN/inf from `any` (upstream gates those behind flags too).
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            v
        } else {
            rng.unit_f64() * 1e12 - 0.5e12
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..2000 {
            let x = (1.5f64..9.25).generate(&mut rng);
            assert!((1.5..9.25).contains(&x));
            let n = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&n));
            let m = (5u64..=5).generate(&mut rng);
            assert_eq!(m, 5);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1usize..4).prop_flat_map(|n| (0.0f64..1.0).prop_map(move |x| (n, x)));
        for _ in 0..500 {
            let (n, x) = s.generate(&mut rng);
            assert!((1..4).contains(&n) && (0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::from_name("union");
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
