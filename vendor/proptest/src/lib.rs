//! Offline vendored stub of `proptest`: the subset this workspace's
//! property tests use, backed by a deterministic per-test RNG.
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports the case number and (where
//!   available) the failed assertion; inputs are regenerable because runs
//!   are fully deterministic (the RNG is seeded from the test name).
//! * **No persistence files / environment configuration.**
//! * Strategies generate values directly instead of building `ValueTree`s.
//!
//! Covered API: `proptest!` (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, numeric range strategies, tuple
//! strategies, `.prop_map`/`.prop_flat_map`/`.boxed`, and
//! `proptest::collection::vec`.

#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0.0f64..1.0, n in 1usize..10) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __rejected: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __cfg.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __case += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            if __rejected > __cfg.cases * 16 {
                                panic!("proptest: too many rejected cases ({__rejected})");
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case #{} failed: {}", __case, __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject (skip) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
