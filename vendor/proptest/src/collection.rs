//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a vector-length specification.
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (inclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min + 1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0.0f64..1.0, 2usize..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(0u32..9, 7usize..=7);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}
