//! Offline vendored stub of the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *exact* API surface it consumes: [`RngCore`],
//! [`Rng::gen`] and [`SeedableRng::seed_from_u64`]. Anything else from real
//! `rand` is intentionally absent — if new code needs more, extend this stub
//! rather than adding a registry dependency.
//!
//! Determinism is the only contract: the same seed must always produce the
//! same stream. Bit-compatibility with upstream `rand` is *not* promised
//! (no golden RNG values are pinned anywhere in the workspace).

#![deny(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next pseudo-random `u32` (high word of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
///
/// This plays the role of `rand::distributions::Standard`: `f64`/`f32`
/// sample uniformly from `[0, 1)`, integers uniformly over their full range,
/// `bool` as a fair coin.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits, exactly the classic [0, 1) construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a `u64` seed. Same seed ⇒ same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the f64 distribution test sees spread-out bits.
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut rng = Counter(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
