//! Offline vendored helper: a process-wide SIGINT latch.
//!
//! The workspace is `unsafe`-free and dependency-free, but graceful
//! Ctrl-C handling (drain the evaluation daemon, flush the sweep cache,
//! print a partial report) fundamentally requires registering a signal
//! handler, which is FFI. Like the other `vendor/` stubs, this crate
//! carries its own (minimal) lint policy so the one `unsafe` block in the
//! workspace lives here, behind a safe two-function API:
//!
//! * [`install`] — register the latch for `SIGINT` (idempotent);
//! * [`interrupted`] / [`interrupt_count`] — poll the latch.
//!
//! The handler itself only performs async-signal-safe work: it increments
//! one `AtomicUsize`. Everything else (draining queues, flushing caches,
//! exiting) happens on normal threads that *poll* the latch. A second
//! Ctrl-C is visible as `interrupt_count() >= 2`, which callers use to
//! escalate from "graceful drain" to "exit now".
//!
//! Registration uses `signal(2)`, which on Linux/glibc gives BSD
//! semantics (the handler stays installed and interrupted syscalls are
//! restarted), so pollers must use timeouts or non-blocking I/O rather
//! than expecting `EINTR` wakeups — which is how the workspace's accept
//! and queue loops are written anyway.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// `SIGINT` on every platform the workspace targets (POSIX).
const SIGINT: i32 = 2;

/// How many SIGINTs have been received since [`install`].
static RECEIVED: AtomicUsize = AtomicUsize::new(0);

/// Whether the handler has been registered already.
static INSTALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    // Async-signal-safe: a single lock-free atomic increment.
    RECEIVED.fetch_add(1, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Register the SIGINT latch. Returns `false` if registration failed
/// (the process then keeps the default die-on-Ctrl-C behaviour).
/// Idempotent: repeated calls re-use the first registration.
pub fn install() -> bool {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return true;
    }
    const SIG_ERR: usize = usize::MAX;
    // SAFETY: `signal` is a POSIX libc function; `on_sigint` is an
    // `extern "C" fn(i32)` whose body is async-signal-safe (one atomic
    // increment, no allocation, no locks).
    let previous = unsafe { signal(SIGINT, on_sigint as extern "C" fn(i32) as usize) };
    if previous == SIG_ERR {
        INSTALLED.store(false, Ordering::SeqCst);
        return false;
    }
    true
}

/// Whether at least one SIGINT has arrived since [`install`].
pub fn interrupted() -> bool {
    RECEIVED.load(Ordering::SeqCst) > 0
}

/// Number of SIGINTs received since [`install`] (a second Ctrl-C is the
/// conventional "stop draining, exit now" escalation).
pub fn interrupt_count() -> usize {
    RECEIVED.load(Ordering::SeqCst)
}

/// Reset the latch (test support; also lets a long-lived REPL reuse it).
pub fn reset() {
    RECEIVED.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_resets() {
        reset();
        assert!(!interrupted());
        assert_eq!(interrupt_count(), 0);
        RECEIVED.fetch_add(2, Ordering::SeqCst);
        assert!(interrupted());
        assert_eq!(interrupt_count(), 2);
        reset();
        assert!(!interrupted());
    }

    #[test]
    fn install_is_idempotent() {
        assert!(install());
        assert!(install());
    }
}
