//! Offline vendored stub of `serde_derive`: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` implemented directly on `proc_macro` token
//! streams (no `syn`/`quote` — the build environment is offline).
//!
//! Supported shapes — exactly the ones this workspace derives on:
//! non-generic structs (named, tuple, unit) and non-generic enums whose
//! variants are unit, tuple or struct-like. JSON mapping mirrors upstream
//! serde's "externally tagged" default:
//! unit variant → `"Name"`, newtype → `{"Name": inner}`,
//! tuple → `{"Name": [..]}`, struct variant → `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (stub: direct conversion to the JSON tree).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::value::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(String::from(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::value::Value::Object(m)");
            s
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let name = &item.name;
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::String(String::from(\"{vname}\")),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "{name}::{vname}({}) => {{ let mut m = ::serde::value::Map::new(); \
                             m.insert(String::from(\"{vname}\"), {inner}); \
                             ::serde::value::Value::Object(m) }}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __inner = ::serde::value::Map::new(); ");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(String::from(\"{f}\"), ::serde::Serialize::to_json_value({f})); "
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ {inner} \
                             let mut m = ::serde::value::Map::new(); \
                             m.insert(String::from(\"{vname}\"), ::serde::value::Value::Object(__inner)); \
                             ::serde::value::Value::Object(m) }}\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n fn to_json_value(&self) -> ::serde::value::Value {{\n {body}\n }}\n}}",
        item.name
    )
    .parse()
    .expect("serde_derive stub emitted invalid Rust")
}

/// Derive `serde::Deserialize` (stub: marker impl only — the workspace
/// never deserializes into typed structs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", item.name)
        .parse()
        .expect("serde_derive stub emitted invalid Rust")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [...] group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (derive on {name})");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_items(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other} {name}`"),
    };
    Item { name, shape }
}

/// Field names from `{ a: T, pub b: U, ... }`, tracking `<...>` depth so
/// commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':' then skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count comma-separated items in a tuple-struct/-variant body.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip variant attributes (incl. doc comments).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
