//! Offline vendored stub of `serde_json`, covering the workspace's usage:
//! [`to_string`] / [`to_string_pretty`] over derived `Serialize` types, the
//! [`json!`] macro for flat object literals, [`Map`] assembly, and
//! [`from_str`] parsing into a dynamic [`Value`] (the only deserialization
//! the workspace performs).
//!
//! The value tree itself lives in the `serde` stub (`serde::value`) so the
//! `Serialize` trait can target it directly; this crate re-exports it under
//! the upstream names.

#![deny(missing_docs)]

pub use serde::value::{Map, Value};
use serde::Serialize;
use std::fmt;

/// A JSON error (only parsing can actually fail in this stub).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string. Infallible in this stub but
/// keeps the upstream `Result` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_compact())
}

/// Serialize `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

/// Convert any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Parse a JSON document into a [`Value`].
///
/// Upstream `from_str` is generic over `Deserialize`; the workspace only
/// ever parses into `Value`, so the stub is monomorphic (call sites
/// annotate `let v: serde_json::Value = ...`, which still typechecks).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Build a [`Value`] from a flat object/array literal. Keys are string
/// literals; values are arbitrary `Serialize` expressions (nested `json!`
/// calls work because `Value` is itself `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut m = $crate::Map::new();
        $( m.insert(($key).to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($val:expr) => { $crate::to_value(&$val) };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; the
                            // workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = json!({"a": 1.5, "b": "x\"y", "c": [1.0, 2.0], "d": true, "e": json!(null)});
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parses_nested() {
        let v = from_str(r#"{"outer": {"inner": [1, 2.5, "three", null]}, "n": -1e-3}"#).unwrap();
        assert_eq!(v["outer"]["inner"][1].as_f64(), Some(2.5));
        assert_eq!(v["outer"]["inner"][2].as_str(), Some("three"));
        assert!(v["outer"]["inner"][3].is_null());
        assert_eq!(v["n"].as_f64(), Some(-1e-3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn pretty_contains_keys() {
        let v = json!({"efficiency": 0.93});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"efficiency\": 0.93"), "{s}");
    }
}
