//! Offline vendored stub of `criterion`: enough of the API to compile and
//! run the workspace's benches as plain timed loops.
//!
//! No statistics, warm-up calibration, or HTML reports — each benchmark
//! runs a fixed number of timed iterations and prints the mean time per
//! iteration. Good for "did I make the hot loop 3× slower?", which is all
//! the workspace's benches are used for offline.

#![deny(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by the stub's simple loop).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower the iteration count for expensive benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("{}: throughput {t:?}", self.name);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        iterations: samples as u64,
        elapsed_ns: 0,
        measured: 0,
    };
    f(&mut b);
    if b.measured > 0 {
        println!(
            "bench {name}: {} ns/iter ({} iters)",
            b.elapsed_ns / b.measured as u128,
            b.measured
        );
    }
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
    measured: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.measured += self.iterations;
    }

    /// Time `routine` with a fresh `setup()` input per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
            self.measured += 1;
        }
    }
}

/// Collect benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 20);
    }
}
