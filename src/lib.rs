//! # axiomatic-cc — An Axiomatic Approach to Congestion Control
//!
//! A full Rust implementation of the framework from *"An Axiomatic
//! Approach to Congestion Control"* (Zarchy, Schapira, Mittal, Shenker —
//! HotNets-XVI, 2017): the fluid-flow model, the eight parameterized
//! axioms, the protocol families (plus PCC- and Vegas-style protocols),
//! the theoretical results (Table 1, Claim 1, Theorems 1–5), a
//! packet-level simulator standing in for the paper's Emulab testbed, and
//! the machinery that regenerates every table and figure in the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the seven library crates so
//! applications can depend on one name.
//!
//! ```
//! use axiomatic_cc::core::LinkParams;
//! use axiomatic_cc::fluidsim::{Scenario, SenderConfig};
//! use axiomatic_cc::protocols::Aimd;
//! use axiomatic_cc::core::axioms::fairness;
//!
//! // Two Reno senders on one bottleneck; measure Metric IV (fairness).
//! let link = LinkParams::new(1000.0, 0.05, 20.0);
//! let trace = Scenario::new(link)
//!     .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(90.0))
//!     .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
//!     .steps(3000)
//!     .run();
//! let score = fairness::measured_fairness(&trace, trace.tail_start(0.5));
//! assert!(score > 0.8);
//! ```
//!
//! The crates, bottom-up:
//!
//! * [`core`] — model types, the [`Protocol`](core::Protocol) trait, the
//!   eight axioms, Table 1's closed forms, Theorems 1–5;
//! * [`protocols`] — executable AIMD / MIMD / BIN / CUBIC / Robust-AIMD /
//!   PCC / Vegas implementations and Linux presets;
//! * [`fluidsim`] — the paper's synchronized discrete-time simulator;
//! * [`packetsim`] — the event-driven packet-level simulator (Emulab
//!   substitute);
//! * [`analysis`] — empirical scoring, Pareto tooling, and the experiment
//!   builders for Table 1, Table 2, Figure 1 and the theorem checks;
//! * [`sweep`] — the deterministic parallel experiment runner with a
//!   content-addressed result cache that the experiment suite fans out
//!   through (`axcc run-all`);
//! * [`serve`] — the fault-tolerant evaluation daemon (`axcc serve`):
//!   newline-delimited JSON over TCP with a typed error taxonomy,
//!   per-job panic isolation, deadlines, bounded-queue overload
//!   shedding, and graceful drain — plus its closed-loop bench client
//!   (`axcc bench-serve`).
//!
//! Runnable walkthroughs live in `examples/`; the paper's tables and
//! figures regenerate via the `axcc-bench` binaries (see README).

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub use axcc_analysis as analysis;
pub use axcc_core as core;
pub use axcc_fluidsim as fluidsim;
pub use axcc_packetsim as packetsim;
pub use axcc_protocols as protocols;
pub use axcc_serve as serve;
pub use axcc_sweep as sweep;
