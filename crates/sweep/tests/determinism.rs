//! Integration properties of the sweep engine against the *real* fluid
//! simulator: parallel output is bit-identical to serial output, cached
//! results come back without re-execution, and every engine parameter
//! participates in the content address.

use axcc_core::fingerprint::{Fingerprint, Fingerprinter};
use axcc_core::LinkParams;
use axcc_fluidsim::{Scenario, SenderConfig};
use axcc_protocols::Aimd;
use axcc_sweep::{SweepJob, SweepRunner};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A real two-sender fluid run: AIMD(α, β) sharing a link with Reno.
#[derive(Clone)]
struct FluidJob {
    alpha: f64,
    beta: f64,
    steps: usize,
    link: LinkParams,
}

impl FluidJob {
    fn evaluate(&self) -> (f64, f64) {
        let trace = Scenario::new(self.link)
            .sender(
                SenderConfig::new(Box::new(Aimd::new(self.alpha, self.beta))).initial_window(1.0),
            )
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .steps(self.steps)
            .run();
        let tail = trace.tail_start(0.5);
        (
            trace.senders[0].mean_goodput_from(tail),
            trace.senders[1].mean_goodput_from(tail),
        )
    }
}

impl Fingerprint for FluidJob {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("FluidJob");
        fp.write_f64(self.alpha);
        fp.write_f64(self.beta);
        fp.write_usize(self.steps);
        self.link.fingerprint(fp);
    }
}

impl SweepJob for FluidJob {
    type Output = (f64, f64);
    fn run(&self) -> (f64, f64) {
        self.evaluate()
    }
}

fn job_grid(alpha: f64, beta: f64, steps: usize) -> Vec<FluidJob> {
    let link = LinkParams::reference();
    let mut jobs = Vec::new();
    for da in [0.0, 0.25, 0.5] {
        for db in [0.0, 0.1] {
            jobs.push(FluidJob {
                alpha: alpha + da,
                beta: beta + db,
                steps,
                link,
            });
        }
    }
    jobs
}

/// Exact bit equality — `==` would accept -0.0 vs 0.0 and reject NaN.
fn bits(results: &[(f64, f64)]) -> Vec<(u64, u64)> {
    results
        .iter()
        .map(|(a, b)| (a.to_bits(), b.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `--jobs 8` output is bit-identical to `--jobs 1` output on real
    /// fluid-model sweeps, for arbitrary protocol parameters.
    #[test]
    fn parallel_is_bit_identical_to_serial(
        alpha in 0.5f64..2.0,
        beta in 0.4f64..0.8,
    ) {
        let jobs = job_grid(alpha, beta, 400);
        let serial = SweepRunner::serial().run_jobs("determinism", &jobs);
        let parallel = SweepRunner::new(8).run_jobs("determinism", &jobs);
        prop_assert_eq!(bits(&serial), bits(&parallel));
        let uncached = SweepRunner::without_cache(8).run_jobs("determinism", &jobs);
        prop_assert_eq!(bits(&serial), bits(&uncached));
    }

    /// Chunked dispatch never changes results: random worker counts and
    /// chunk sizes — including chunk 1 and one chunk larger than the whole
    /// sweep — reproduce the serial reference bits on real fluid jobs.
    #[test]
    fn chunked_dispatch_is_bit_identical_for_any_chunking(
        alpha in 0.5f64..2.0,
        workers in 1usize..9,
        chunk in prop_oneof![Just(1usize), 2usize..8, Just(1000usize)],
    ) {
        let jobs = job_grid(alpha, 0.5, 300);
        let serial = SweepRunner::serial().run_jobs("chunking", &jobs);
        let chunked = SweepRunner::new(workers)
            .with_chunk_size(chunk)
            .run_jobs("chunking", &jobs);
        prop_assert_eq!(bits(&serial), bits(&chunked));
        let uncached = SweepRunner::without_cache(workers)
            .with_chunk_size(chunk)
            .run_jobs("chunking", &jobs);
        prop_assert_eq!(bits(&serial), bits(&uncached));
    }
}

/// Reference chunk processor for the pool-level property: a cheap pure
/// function of the job index.
fn mix_range(range: std::ops::Range<usize>, out: &mut Vec<u64>) {
    for idx in range {
        out.push((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pool itself (below the runner's serial-fallback heuristics):
    /// random job counts × worker counts × chunk sizes produce the serial
    /// reference output, exercising ragged tails, chunks larger than the
    /// sweep, and single-job chunks under real thread interleaving.
    #[test]
    fn pool_chunked_claims_preserve_submission_order(
        jobs in 0usize..120,
        workers in 1usize..9,
        chunk in 1usize..140,
    ) {
        use axcc_sweep::pool::run_chunked_cancellable;
        let reference = run_chunked_cancellable(1, jobs, 1, mix_range, None);
        let chunked = run_chunked_cancellable(workers, jobs, chunk, mix_range, None);
        prop_assert_eq!(reference, chunked);
    }
}

/// An instrumented job: counts how many times `run` actually executes.
struct CountedJob<'a> {
    inner: FluidJob,
    executions: &'a AtomicUsize,
}

impl Fingerprint for CountedJob<'_> {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        self.inner.fingerprint(fp);
    }
}

impl SweepJob for CountedJob<'_> {
    type Output = (f64, f64);
    fn run(&self) -> (f64, f64) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate()
    }
}

#[test]
fn equal_fingerprints_return_cached_results_without_rerunning() {
    let executions = AtomicUsize::new(0);
    let jobs: Vec<CountedJob> = job_grid(1.0, 0.5, 300)
        .into_iter()
        .map(|inner| CountedJob {
            inner,
            executions: &executions,
        })
        .collect();
    let runner = SweepRunner::new(4);
    let first = runner.run_jobs("cache-hit", &jobs);
    let ran = executions.load(Ordering::Relaxed);
    assert_eq!(ran, jobs.len(), "cold cache must execute every job");

    let second = runner.run_jobs("cache-hit", &jobs);
    assert_eq!(
        executions.load(Ordering::Relaxed),
        ran,
        "warm cache must not re-run any job"
    );
    assert_eq!(bits(&first), bits(&second));
    let stats = runner.stats();
    assert_eq!(stats.cache_hits as usize, jobs.len());
}

#[test]
fn warm_disk_cache_survives_a_new_runner() {
    let dir = std::env::temp_dir().join(format!("axcc-sweep-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = job_grid(1.0, 0.5, 300);

    let cold = SweepRunner::with_disk_cache(2, dir.clone());
    let first = cold.run_jobs("disk", &jobs);
    assert_eq!(cold.stats().executed as usize, jobs.len());

    // A fresh runner (fresh in-memory cache) over the same directory must
    // be answered entirely from disk.
    let warm = SweepRunner::with_disk_cache(2, dir.clone());
    let second = warm.run_jobs("disk", &jobs);
    assert_eq!(warm.stats().executed, 0, "disk cache must answer all jobs");
    assert_eq!(warm.stats().cache_hits as usize, jobs.len());
    assert_eq!(bits(&first), bits(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_engine_parameter_changes_the_address() {
    let runner = SweepRunner::serial();
    let base = FluidJob {
        alpha: 1.0,
        beta: 0.5,
        steps: 400,
        link: LinkParams::reference(),
    };
    let addr = |job: &FluidJob| runner.job_digest("sensitivity", job);
    let reference = addr(&base);

    let variants = [
        FluidJob {
            alpha: 1.0 + 1e-9,
            ..base.clone()
        },
        FluidJob {
            beta: 0.5 - 1e-9,
            ..base.clone()
        },
        FluidJob {
            steps: 401,
            ..base.clone()
        },
        FluidJob {
            link: LinkParams::new(1001.0, 0.05, 20.0),
            ..base.clone()
        },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(addr(v), reference, "variant {i} must re-address the job");
    }

    // Same job, different scope or engine tag: different address, so an
    // engine-revision bump orphans (never corrupts) old cache entries.
    assert_ne!(runner.job_digest("other-scope", &base), reference);
    let retagged = SweepRunner::serial().with_engine_tag("axcc-test+r999");
    assert_ne!(retagged.job_digest("sensitivity", &base), reference);
}
