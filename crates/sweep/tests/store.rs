//! Round-trip properties of the sharded log-structured result store:
//! arbitrary records append, reopen, index, and read back bit-identical
//! (NaN payloads and escaping included), and a segment whose tail was
//! chopped mid-entry heals into plain misses while every surviving entry
//! still decodes to its exact original bits.

use axcc_core::fingerprint::{Digest, Fingerprint};
use axcc_sweep::{Record, ResultCache};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique per-case scratch directories (proptest reruns cases).
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("axcc-store-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A record carrying arbitrary float bit patterns (NaNs, infinities,
/// subnormals — whatever the strategy drew) plus a string field that
/// exercises the codec's escaping.
fn record_from(bits: &[u64], note: &str) -> Record {
    let mut r = Record::new();
    r.push_usize(bits.len());
    for &b in bits {
        r.push_f64(f64::from_bits(b));
    }
    r.push_str(note);
    r
}

/// Deterministic note text from a seed, over an alphabet that includes
/// the codec's two escaped characters (backslash and newline).
fn note_from(seed: u64) -> String {
    const ALPHABET: [char; 8] = ['a', 'z', '0', ' ', '\\', '\n', '.', '-'];
    (0..8)
        .map(|i| ALPHABET[((seed >> (i * 8)) & 7) as usize])
        .collect()
}

fn entries_from(payloads: &[(Vec<u64>, u64)]) -> Vec<(Digest, Record)> {
    payloads
        .iter()
        .enumerate()
        .map(|(i, (bits, seed))| {
            (
                format!("store-prop-{i}").digest(),
                record_from(bits, &note_from(*seed)),
            )
        })
        .collect()
}

fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "seg"))
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    paths
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// append → reopen → index → read back: every field bit-identical.
    #[test]
    fn random_records_round_trip_bit_identically(
        payloads in proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), 0..6), any::<u64>()),
            1..48,
        ),
    ) {
        let dir = fresh_dir("rt");
        let entries = entries_from(&payloads);
        let cache = ResultCache::with_disk(dir.clone());
        cache.put_batch(entries.clone());
        drop(cache);

        let reopened = ResultCache::with_disk(dir.clone());
        for (digest, record) in &entries {
            let got = reopened.get(digest);
            prop_assert_eq!(got.as_ref(), Some(record));
        }
        // The layout invariant that makes 10⁵-job sweeps feasible:
        // entry count is unbounded, file count is O(shards).
        prop_assert!(segment_paths(&dir).len() <= axcc_sweep::SHARD_COUNT);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Chopping a segment mid-entry loses only the damaged tail: every
    /// lookup either misses (healed) or returns the exact original bits,
    /// and the healed shard accepts re-appends that then read back.
    #[test]
    fn truncated_tail_recovers_as_misses(
        payloads in proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), 1..5), any::<u64>()),
            2..24,
        ),
        cut in 1u64..200,
    ) {
        let dir = fresh_dir("cut");
        let entries = entries_from(&payloads);
        {
            let cache = ResultCache::with_disk(dir.clone());
            cache.put_batch(entries.clone());
        }
        // Truncate the largest segment by `cut` bytes (clamped to its
        // size): its final entry is damaged mid-body or mid-header.
        let victim = segment_paths(&dir)
            .into_iter()
            .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .expect("store has at least one segment");
        let len = std::fs::metadata(&victim).expect("segment metadata").len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .expect("segment is writable")
            .set_len(len.saturating_sub(cut))
            .expect("truncate segment");

        let reopened = ResultCache::with_disk(dir.clone());
        let mut lost = 0usize;
        for (digest, record) in &entries {
            match reopened.get(digest) {
                Some(got) => prop_assert_eq!(&got, record, "surviving entries are bit-identical"),
                None => lost += 1,
            }
        }
        prop_assert!(lost >= 1, "shrinking a segment must damage its last entry");
        prop_assert!(reopened.stats().heal_events >= 1, "the chop is a heal event");

        // Heal-and-recompute: re-append everything, read it all back.
        reopened.put_batch(entries.clone());
        for (digest, record) in &entries {
            let got = reopened.get(digest);
            prop_assert_eq!(got.as_ref(), Some(record));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
