//! The content-addressed result store.
//!
//! Results live in an in-memory `BTreeMap` keyed by the 128-bit job
//! [`Digest`]; a cache may additionally be backed by a directory holding
//! a **sharded, log-structured** store: [`SHARD_COUNT`] append-only
//! segment files, each owning the digests whose top hex digit matches
//! the shard id. A segment is a sequence of length-prefixed entries
//! (`axcc1 <32-hex digest> <body len>\n` followed by exactly that many
//! bytes of encoded [`Record`]); an in-memory per-shard index from
//! digest to byte range is rebuilt by scanning the segment the first
//! time the shard is touched. Later entries for the same digest win
//! during the scan, so an append is also an overwrite — there is no
//! in-place mutation anywhere in the format.
//!
//! Because the address is a content hash of *all* inputs including the
//! engine version, entries never go stale — a stale input simply hashes
//! elsewhere — so there is no eviction machinery; segments are compacted
//! (latest entry per digest, temp file + rename) only when they outgrow
//! the rotation threshold. A cold sweep therefore creates O(shards)
//! files regardless of job count, where the previous one-file-per-digest
//! layout created O(jobs).
//!
//! Disk I/O is strictly best-effort: a segment whose tail was truncated
//! by a killed process is healed by truncating back to the last whole
//! entry (the lost tail re-runs as misses), an entry whose body fails to
//! decode is dropped from the index (miss, recompute, re-append), and
//! write failures are swallowed — a broken cache directory may cost
//! time, never correctness. Directories written by the old
//! one-file-per-digest layout are migrated into the shard segments on
//! first touch, so existing warm caches stay warm.

use crate::record::Record;
use axcc_core::fingerprint::Digest;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Number of segment shards in an on-disk store. Sixteen means the shard
/// id is exactly the leading hex digit of the digest, which keeps the
/// legacy-file migration a pure filename computation.
pub const SHARD_COUNT: usize = 16;

/// Default segment size above which a shard is compacted and rewritten.
const DEFAULT_ROTATE_BYTES: u64 = 8 * 1024 * 1024;

/// Leading magic token of every segment entry header.
const ENTRY_MAGIC: &str = "axcc1";

/// Monotonic suffix source for temp-file names, so concurrent rotations
/// in one process never collide. (Cross-process uniqueness comes from the
/// process id in the name.)
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Byte range of one indexed record body inside its segment file.
#[derive(Debug, Clone, Copy)]
struct Span {
    offset: u64,
    len: u32,
}

/// One segment shard: lazily opened, then an index over the segment file.
#[derive(Debug, Default)]
struct Shard {
    opened: bool,
    index: BTreeMap<Digest, Span>,
    /// Current segment length in bytes (append position).
    bytes: u64,
}

/// The on-disk half of a cache: a directory of segment shards.
#[derive(Debug)]
struct DiskStore {
    dir: PathBuf,
    rotate_bytes: u64,
    shards: Vec<Mutex<Shard>>,
}

/// Per-shard occupancy as reported by [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Live (indexed) entries in the shard.
    pub entries: usize,
    /// Current segment file size in bytes, including superseded entries.
    pub segment_bytes: u64,
}

/// Counters and occupancy for one cache, as rendered by
/// `axcc sweep --cache-stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered (from memory or disk).
    pub hits: u64,
    /// Lookups that found nothing (the job re-ran).
    pub misses: u64,
    /// Corruption repairs: truncated segment tails and entries whose body
    /// failed to decode, both healed into plain misses.
    pub heal_events: u64,
    /// Entries currently held in memory.
    pub mem_entries: usize,
    /// Per-shard occupancy; empty for purely in-memory caches.
    pub shards: Vec<ShardStats>,
}

impl CacheStats {
    /// Total live entries across all disk shards.
    pub fn disk_entries(&self) -> usize {
        self.shards.iter().map(|s| s.entries).sum()
    }

    /// Total segment bytes across all disk shards.
    pub fn segment_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.segment_bytes).sum()
    }
}

/// In-memory + optional on-disk record store, shared across worker
/// threads.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<BTreeMap<Digest, Record>>,
    disk: Option<DiskStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    heals: AtomicU64,
}

impl ResultCache {
    fn with_disk_opt(disk: Option<DiskStore>) -> Self {
        ResultCache {
            mem: Mutex::new(BTreeMap::new()),
            disk,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        }
    }

    /// Purely in-memory cache (lives as long as the process).
    pub fn in_memory() -> Self {
        Self::with_disk_opt(None)
    }

    /// Cache backed by `dir` (created on first write). Entries persist
    /// across processes, which is what makes warm re-runs of the
    /// experiment suite near-free.
    pub fn with_disk(dir: PathBuf) -> Self {
        Self::with_disk_rotate_at(dir, DEFAULT_ROTATE_BYTES)
    }

    /// [`with_disk`](Self::with_disk) with an explicit segment rotation
    /// threshold, for tests that need to exercise compaction without
    /// writing megabytes.
    pub fn with_disk_rotate_at(dir: PathBuf, rotate_bytes: u64) -> Self {
        let shards = (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect();
        Self::with_disk_opt(Some(DiskStore {
            dir,
            rotate_bytes,
            shards,
        }))
    }

    /// The backing directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&PathBuf> {
        self.disk.as_ref().map(|d| &d.dir)
    }

    /// Look up a record; disk hits are promoted into memory.
    ///
    /// An indexed entry whose body no longer decodes (bit rot, a stray
    /// editor) is dropped from the index and treated as a miss, so the
    /// re-computed result can be appended again — otherwise a corrupt
    /// entry would shadow its own address forever and every warm run
    /// would silently pay for the same re-computation.
    pub fn get(&self, digest: &Digest) -> Option<Record> {
        if let Some(rec) = self.lock_mem().get(digest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(rec.clone());
        }
        let Some(rec) = self.disk_get(digest) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.lock_mem().insert(*digest, rec.clone());
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(rec)
    }

    /// Store a record under its content address.
    pub fn put(&self, digest: Digest, record: Record) {
        self.put_batch(vec![(digest, record)]);
    }

    /// Store a batch of records, paying the shard locks and the segment
    /// appends once per shard instead of once per record. This is the
    /// write path of chunked dispatch: a worker flushes its whole chunk
    /// here in one call.
    pub fn put_batch(&self, entries: Vec<(Digest, Record)>) {
        if entries.is_empty() {
            return;
        }
        if let Some(disk) = &self.disk {
            // Group by shard so each segment is appended to exactly once.
            let mut by_shard: Vec<Vec<&(Digest, Record)>> =
                (0..SHARD_COUNT).map(|_| Vec::new()).collect();
            for entry in &entries {
                by_shard[shard_of(&entry.0)].push(entry);
            }
            for (id, group) in by_shard.iter().enumerate() {
                if !group.is_empty() {
                    disk.append(id, group, &self.heals);
                }
            }
        }
        let mut mem = self.lock_mem();
        for (digest, record) in entries {
            mem.insert(digest, record);
        }
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock_mem().len()
    }

    /// Whether the in-memory store is empty.
    pub fn is_empty(&self) -> bool {
        self.lock_mem().is_empty()
    }

    /// Counters and per-shard occupancy. Opens (scans) any shard not yet
    /// touched, so the numbers reflect the directory, not just this
    /// process's traffic.
    pub fn stats(&self) -> CacheStats {
        let mut shards = Vec::new();
        if let Some(disk) = &self.disk {
            for id in 0..SHARD_COUNT {
                let mut shard = disk.lock_shard(id);
                disk.ensure_open(id, &mut shard, &self.heals);
                shards.push(ShardStats {
                    entries: shard.index.len(),
                    segment_bytes: shard.bytes,
                });
            }
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            heal_events: self.heals.load(Ordering::Relaxed),
            mem_entries: self.len(),
            shards,
        }
    }

    /// Disk half of [`get`](Self::get): index lookup, then a seek+read of
    /// the body bytes.
    fn disk_get(&self, digest: &Digest) -> Option<Record> {
        let disk = self.disk.as_ref()?;
        let id = shard_of(digest);
        let mut shard = disk.lock_shard(id);
        disk.ensure_open(id, &mut shard, &self.heals);
        let span = *shard.index.get(digest)?;
        let Some(rec) = disk.read_span(id, span) else {
            // Heal-by-forgetting: drop the poisoned index entry so the
            // recomputed result can take the address back.
            shard.index.remove(digest);
            self.heals.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        Some(rec)
    }

    /// Lock the map, recovering from poisoning: a worker that panicked
    /// mid-insert leaves the map structurally intact (inserts are
    /// atomic at this level), so the data is still usable.
    fn lock_mem(&self) -> MutexGuard<'_, BTreeMap<Digest, Record>> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shard owning `digest`: its leading hex digit.
fn shard_of(digest: &Digest) -> usize {
    (digest.hi >> 60) as usize
}

impl DiskStore {
    fn segment_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("shard-{id:02x}.seg"))
    }

    /// Lock one shard, recovering from poisoning (the index is only ever
    /// updated after a successful write, so it is structurally sound).
    fn lock_shard(&self, id: usize) -> MutexGuard<'_, Shard> {
        self.shards[id]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// First-touch opening: scan the segment into the index (truncating a
    /// corrupt tail), then fold any legacy one-file-per-digest entries
    /// for this shard into the segment.
    fn ensure_open(&self, id: usize, shard: &mut Shard, heals: &AtomicU64) {
        if shard.opened {
            return;
        }
        shard.opened = true;
        self.scan_segment(id, shard, heals);
        self.migrate_legacy(id, shard, heals);
    }

    /// Build the index by walking the segment's entries; on the first
    /// malformed header or short body, truncate the file back to the end
    /// of the last whole entry (one heal event) — the lost tail simply
    /// re-runs as misses.
    fn scan_segment(&self, id: usize, shard: &mut Shard, heals: &AtomicU64) {
        let path = self.segment_path(id);
        let Ok(bytes) = fs::read(&path) else {
            return;
        };
        let mut pos: usize = 0;
        loop {
            if pos == bytes.len() {
                shard.bytes = pos as u64;
                return;
            }
            let Some((digest, body_len, body_start)) = parse_entry_header(&bytes, pos) else {
                break;
            };
            let body_end = body_start + body_len;
            if body_end > bytes.len() {
                break;
            }
            shard.index.insert(
                digest,
                Span {
                    offset: body_start as u64,
                    len: body_len as u32,
                },
            );
            pos = body_end;
        }
        // Corrupt tail: keep the healthy prefix, drop the rest.
        heals.fetch_add(1, Ordering::Relaxed);
        shard.bytes = pos as u64;
        if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
            let _ = f.set_len(pos as u64);
        }
    }

    /// Fold legacy one-file-per-digest entries (32-hex filenames) that
    /// hash into this shard into the segment, deleting the loose files.
    /// Undecodable legacy files are deleted as heal events.
    fn migrate_legacy(&self, id: usize, shard: &mut Shard, heals: &AtomicU64) {
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut moved: Vec<(Digest, Record, PathBuf)> = Vec::new();
        for dirent in listing.flatten() {
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(digest) = Digest::from_hex(name) else {
                continue;
            };
            if shard_of(&digest) != id {
                continue;
            }
            let path = dirent.path();
            match fs::read(&path)
                .ok()
                .and_then(|b| Record::decode(std::str::from_utf8(&b).ok()?))
            {
                Some(rec) => moved.push((digest, rec, path)),
                None => {
                    heals.fetch_add(1, Ordering::Relaxed);
                    let _ = fs::remove_file(&path);
                }
            }
        }
        // Deterministic segment layout regardless of directory order.
        moved.sort_by_key(|(d, _, _)| *d);
        for (digest, rec, path) in &moved {
            if self.append_locked(id, shard, &[(digest, rec)]) {
                let _ = fs::remove_file(path);
            }
        }
    }

    /// Append a group of records to shard `id` (one segment write),
    /// updating the index on success and rotating if the segment outgrew
    /// the threshold.
    fn append(&self, id: usize, group: &[&(Digest, Record)], heals: &AtomicU64) {
        let mut shard = self.lock_shard(id);
        self.ensure_open(id, &mut shard, heals);
        let pairs: Vec<(&Digest, &Record)> = group.iter().map(|(d, r)| (d, r)).collect();
        self.append_locked(id, &mut shard, &pairs);
        if shard.bytes > self.rotate_bytes {
            self.rotate(id, &mut shard);
        }
    }

    /// The raw append: one buffered write of every entry, best-effort (a
    /// full disk degrades to an in-memory cache, silently). Returns
    /// whether the write landed.
    fn append_locked(&self, id: usize, shard: &mut Shard, entries: &[(&Digest, &Record)]) -> bool {
        if fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let mut buf = Vec::new();
        let mut spans = Vec::with_capacity(entries.len());
        for (digest, record) in entries {
            let body = record.encode();
            let header = format!("{ENTRY_MAGIC} {} {}\n", digest.to_hex(), body.len());
            let offset = shard.bytes + (buf.len() + header.len()) as u64;
            buf.extend_from_slice(header.as_bytes());
            buf.extend_from_slice(body.as_bytes());
            spans.push((
                **digest,
                Span {
                    offset,
                    len: body.len() as u32,
                },
            ));
        }
        let written = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.segment_path(id))
            .and_then(|mut f| f.write_all(&buf))
            .is_ok();
        if written {
            shard.bytes += buf.len() as u64;
            for (digest, span) in spans {
                shard.index.insert(digest, span);
            }
        }
        written
    }

    /// Seek+read one indexed body and decode it.
    fn read_span(&self, id: usize, span: Span) -> Option<Record> {
        let mut f = fs::File::open(self.segment_path(id)).ok()?;
        f.seek(SeekFrom::Start(span.offset)).ok()?;
        let mut body = vec![0u8; span.len as usize];
        f.read_exact(&mut body).ok()?;
        Record::decode(std::str::from_utf8(&body).ok()?)
    }

    /// Compaction: rewrite the segment with only the live (indexed)
    /// entries, via temp file + rename so a concurrent reader never sees
    /// a half-written segment. Best-effort — on any failure the oversized
    /// segment simply keeps growing until the next rotation attempt.
    fn rotate(&self, id: usize, shard: &mut Shard) {
        let mut live: Vec<(Digest, Record)> = Vec::with_capacity(shard.index.len());
        for (digest, span) in &shard.index {
            let Some(rec) = self.read_span(id, *span) else {
                return;
            };
            live.push((*digest, rec));
        }
        let mut buf = Vec::new();
        let mut index = BTreeMap::new();
        for (digest, record) in &live {
            let body = record.encode();
            let header = format!("{ENTRY_MAGIC} {} {}\n", digest.to_hex(), body.len());
            index.insert(
                *digest,
                Span {
                    offset: (buf.len() + header.len()) as u64,
                    len: body.len() as u32,
                },
            );
            buf.extend_from_slice(header.as_bytes());
            buf.extend_from_slice(body.as_bytes());
        }
        let suffix = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".rotate-{id:02x}-{}-{suffix}", std::process::id()));
        if fs::write(&tmp, &buf).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if fs::rename(&tmp, self.segment_path(id)).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        shard.index = index;
        shard.bytes = buf.len() as u64;
    }
}

/// Parse one `axcc1 <32-hex digest> <len>\n` header starting at `pos`;
/// returns the digest, body length, and the offset where the body starts.
fn parse_entry_header(bytes: &[u8], pos: usize) -> Option<(Digest, usize, usize)> {
    // Headers are short; cap the newline scan so a garbage blob cannot
    // make us walk the whole segment.
    let window_end = bytes.len().min(pos + 64);
    let nl = bytes[pos..window_end].iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&bytes[pos..pos + nl]).ok()?;
    let mut parts = line.split(' ');
    if parts.next() != Some(ENTRY_MAGIC) {
        return None;
    }
    let digest = Digest::from_hex(parts.next()?)?;
    let body_len: usize = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((digest, body_len, pos + nl + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_core::fingerprint::Fingerprint;
    use std::path::Path;

    fn digest_of(tag: &str) -> Digest {
        tag.digest()
    }

    fn record_of(v: f64) -> Record {
        let mut r = Record::new();
        r.push_f64(v);
        r
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("axcc-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn segment_files(dir: &Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .map(|rd| {
                rd.flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "seg"))
                    .collect()
            })
            .unwrap_or_default();
        files.sort();
        files
    }

    #[test]
    fn memory_get_put() {
        let cache = ResultCache::in_memory();
        let d = digest_of("k1");
        assert!(cache.get(&d).is_none());
        cache.put(d, record_of(1.5));
        assert_eq!(cache.get(&d), Some(record_of(1.5)));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.shards.is_empty());
    }

    #[test]
    fn disk_round_trip_through_segments() {
        let dir = temp_dir("segrt");
        let cache = ResultCache::with_disk(dir.clone());
        let d = digest_of("disk-key");
        cache.put(d, record_of(f64::INFINITY));

        // A fresh cache over the same directory sees the entry…
        let warm = ResultCache::with_disk(dir.clone());
        let rec = warm.get(&d).unwrap();
        assert_eq!(rec.reader().f64().unwrap(), f64::INFINITY);
        // …and the directory holds segment files, not per-digest files.
        assert_eq!(segment_files(&dir).len(), 1);
        assert!(!dir.join(d.to_hex()).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_put_lands_every_entry_in_one_pass() {
        let dir = temp_dir("batch");
        let cache = ResultCache::with_disk(dir.clone());
        let entries: Vec<(Digest, Record)> = (0..64)
            .map(|i| (digest_of(&format!("b{i}")), record_of(i as f64)))
            .collect();
        cache.put_batch(entries.clone());
        // Cold-run peak file count is O(shards), not O(jobs).
        assert!(segment_files(&dir).len() <= SHARD_COUNT);
        let warm = ResultCache::with_disk(dir.clone());
        for (d, r) in &entries {
            assert_eq!(warm.get(d).as_ref(), Some(r));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_record_body_heals_as_a_miss() {
        let dir = temp_dir("garbage");
        let cache = ResultCache::with_disk(dir.clone());
        let d = digest_of("poisoned");
        cache.put(d, record_of(2.0));
        // Overwrite the segment with a validly framed entry whose body
        // does not decode as a Record.
        let seg = segment_files(&dir).pop().unwrap();
        let body = "not a record";
        fs::write(
            &seg,
            format!("{ENTRY_MAGIC} {} {}\n{body}", d.to_hex(), body.len()),
        )
        .unwrap();

        let cold = ResultCache::with_disk(dir.clone());
        assert!(cold.get(&d).is_none(), "undecodable body is a miss");
        assert_eq!(cold.stats().heal_events, 1);
        // Recompute-and-persist round-trips: the next put re-appends and
        // a fresh cache reads it back.
        cold.put(d, record_of(2.25));
        let recovered = ResultCache::with_disk(dir.clone());
        assert_eq!(recovered.get(&d), Some(record_of(2.25)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_healed_and_earlier_entries_survive() {
        let dir = temp_dir("tail");
        let cache = ResultCache::with_disk(dir.clone());
        let keep_a = digest_of("keep-a");
        let keep_b = digest_of("keep-b");
        let lost = digest_of("lost");
        // Force all three into one shard by brute-forcing tags? No —
        // put each, then truncate every segment by a few bytes; only the
        // shard(s) holding a final entry lose it.
        cache.put(keep_a, record_of(1.0));
        cache.put(keep_b, record_of(2.0));
        cache.put(lost, record_of(3.0));
        let lost_shard = shard_of(&lost);
        let seg = dir.join(format!("shard-{lost_shard:02x}.seg"));
        let len = fs::metadata(&seg).unwrap().len();
        // Chop mid-body: the last entry in that shard no longer parses.
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let cold = ResultCache::with_disk(dir.clone());
        assert!(cold.get(&lost).is_none(), "chopped entry is a miss");
        assert!(cold.stats().heal_events >= 1);
        // Entries in other shards (and any whole prefix of the chopped
        // shard) still read back.
        for (d, v) in [(keep_a, 1.0), (keep_b, 2.0)] {
            if shard_of(&d) != lost_shard {
                assert_eq!(cold.get(&d), Some(record_of(v)));
            }
        }
        // The healed shard accepts appends again.
        cold.put(lost, record_of(3.5));
        let recovered = ResultCache::with_disk(dir.clone());
        assert_eq!(recovered.get(&lost), Some(record_of(3.5)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_per_digest_files_migrate_into_segments() {
        let dir = temp_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        let good = digest_of("legacy-good");
        let bad = digest_of("legacy-bad");
        fs::write(dir.join(good.to_hex()), record_of(7.0).encode()).unwrap();
        fs::write(dir.join(bad.to_hex()), "garbage").unwrap();

        let cache = ResultCache::with_disk(dir.clone());
        assert_eq!(cache.get(&good), Some(record_of(7.0)));
        assert!(cache.get(&bad).is_none());
        // Both loose files are gone: migrated or deleted.
        assert!(!dir.join(good.to_hex()).exists());
        assert!(!dir.join(bad.to_hex()).exists());
        // And the migrated entry now lives in its segment.
        let warm = ResultCache::with_disk(dir.clone());
        assert_eq!(warm.get(&good), Some(record_of(7.0)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_segments_rotate_and_stay_readable() {
        let dir = temp_dir("rotate");
        let cache = ResultCache::with_disk_rotate_at(dir.clone(), 256);
        let d = digest_of("churny");
        // Re-put the same address many times: the segment grows with
        // superseded entries until rotation compacts it to one.
        for i in 0..64 {
            cache.put(d, record_of(i as f64));
        }
        let stats = cache.stats();
        let shard = &stats.shards[shard_of(&d)];
        assert_eq!(shard.entries, 1);
        assert!(
            shard.segment_bytes <= 256,
            "rotation should have compacted the segment ({} bytes)",
            shard.segment_bytes
        );
        assert_eq!(cache.get(&d), Some(record_of(63.0)));
        // No temp files left behind, still O(shards) files total.
        let files: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
        assert!(files.len() <= SHARD_COUNT);
        let warm = ResultCache::with_disk(dir.clone());
        assert_eq!(warm.get(&d), Some(record_of(63.0)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_entries_override_earlier_ones_on_scan() {
        let dir = temp_dir("override");
        let d = digest_of("versioned");
        {
            let cache = ResultCache::with_disk(dir.clone());
            cache.put(d, record_of(1.0));
            cache.put(d, record_of(2.0));
        }
        let warm = ResultCache::with_disk(dir.clone());
        assert_eq!(warm.get(&d), Some(record_of(2.0)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_report_shard_occupancy() {
        let dir = temp_dir("stats");
        let cache = ResultCache::with_disk(dir.clone());
        let entries: Vec<(Digest, Record)> = (0..32)
            .map(|i| (digest_of(&format!("s{i}")), record_of(i as f64)))
            .collect();
        cache.put_batch(entries);
        let stats = cache.stats();
        assert_eq!(stats.shards.len(), SHARD_COUNT);
        assert_eq!(stats.disk_entries(), 32);
        assert!(stats.segment_bytes() > 0);
        assert_eq!(stats.mem_entries, 32);
        let _ = fs::remove_dir_all(&dir);
    }
}
