//! The content-addressed result store.
//!
//! Results live in an in-memory `BTreeMap` keyed by the 128-bit job
//! [`Digest`]; a cache may additionally be backed by a directory, with
//! one file per digest (named by its 32-hex-digit address) holding the
//! encoded [`Record`]. Because the address is a content hash of *all*
//! inputs including the engine version, entries never go stale — a stale
//! input simply hashes elsewhere — so there is no eviction or
//! invalidation machinery.
//!
//! Disk I/O is strictly best-effort: unreadable, missing, or corrupt
//! files are cache *misses* (the job re-runs), and write failures are
//! swallowed — a broken cache directory may cost time, never
//! correctness. Writes go through a temp file + rename so a concurrent
//! reader can never observe a half-written record.

use crate::record::Record;
use axcc_core::fingerprint::Digest;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Monotonic suffix source for temp-file names, so concurrent writers in
/// one process never collide. (Cross-process uniqueness comes from the
/// process id in the name.)
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// In-memory + optional on-disk record store, shared across worker
/// threads.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<BTreeMap<Digest, Record>>,
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// Purely in-memory cache (lives as long as the process).
    pub fn in_memory() -> Self {
        ResultCache {
            mem: Mutex::new(BTreeMap::new()),
            dir: None,
        }
    }

    /// Cache backed by `dir` (created on first write). Entries persist
    /// across processes, which is what makes warm re-runs of the
    /// experiment suite near-free.
    pub fn with_disk(dir: PathBuf) -> Self {
        ResultCache {
            mem: Mutex::new(BTreeMap::new()),
            dir: Some(dir),
        }
    }

    /// The backing directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Look up a record; disk hits are promoted into memory.
    ///
    /// A file that exists but does not decode (truncated write from a
    /// killed process, bit rot, a stray editor) is treated as a miss
    /// *and deleted*, so the re-computed result can be persisted again —
    /// otherwise a corrupt entry would shadow its own address forever and
    /// every warm run would silently pay for the same re-computation.
    pub fn get(&self, digest: &Digest) -> Option<Record> {
        if let Some(rec) = self.lock_mem().get(digest) {
            return Some(rec.clone());
        }
        let dir = self.dir.as_ref()?;
        let path = dir.join(digest.to_hex());
        let bytes = fs::read(&path).ok()?;
        let rec = match std::str::from_utf8(&bytes).ok().and_then(Record::decode) {
            Some(rec) => rec,
            None => {
                // Delete-and-recompute: best-effort, a failed unlink just
                // means we try again next miss.
                let _ = fs::remove_file(&path);
                return None;
            }
        };
        self.lock_mem().insert(*digest, rec.clone());
        Some(rec)
    }

    /// Store a record under its content address.
    pub fn put(&self, digest: Digest, record: Record) {
        if let Some(dir) = &self.dir {
            // Best-effort persistence: a full disk or read-only directory
            // degrades to an in-memory cache, silently.
            if fs::create_dir_all(dir).is_ok() {
                let suffix = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
                let tmp = dir.join(format!(
                    ".tmp-{}-{}-{}",
                    digest.to_hex(),
                    std::process::id(),
                    suffix
                ));
                if fs::write(&tmp, record.encode()).is_ok()
                    && fs::rename(&tmp, dir.join(digest.to_hex())).is_err()
                {
                    let _ = fs::remove_file(&tmp);
                }
            }
        }
        self.lock_mem().insert(digest, record);
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock_mem().len()
    }

    /// Whether the in-memory store is empty.
    pub fn is_empty(&self) -> bool {
        self.lock_mem().is_empty()
    }

    /// Lock the map, recovering from poisoning: a worker that panicked
    /// mid-insert leaves the map structurally intact (inserts are
    /// atomic at this level), so the data is still usable.
    fn lock_mem(&self) -> std::sync::MutexGuard<'_, BTreeMap<Digest, Record>> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_core::fingerprint::Fingerprint;

    fn digest_of(tag: &str) -> Digest {
        tag.digest()
    }

    fn record_of(v: f64) -> Record {
        let mut r = Record::new();
        r.push_f64(v);
        r
    }

    #[test]
    fn memory_get_put() {
        let cache = ResultCache::in_memory();
        let d = digest_of("k1");
        assert!(cache.get(&d).is_none());
        cache.put(d, record_of(1.5));
        assert_eq!(cache.get(&d), Some(record_of(1.5)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_round_trip_and_corruption_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("axcc-sweep-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::with_disk(dir.clone());
        let d = digest_of("disk-key");
        cache.put(d, record_of(f64::INFINITY));

        // A fresh cache over the same directory sees the entry.
        let warm = ResultCache::with_disk(dir.clone());
        let rec = warm.get(&d).unwrap();
        assert_eq!(rec.reader().f64().unwrap(), f64::INFINITY);

        // Corrupt the file: decode fails, lookup degrades to a miss AND
        // the poisoned entry is unlinked so the address is writable again.
        fs::write(dir.join(d.to_hex()), "garbage").unwrap();
        let cold = ResultCache::with_disk(dir.clone());
        assert!(cold.get(&d).is_none());
        assert!(
            !dir.join(d.to_hex()).exists(),
            "corrupt entry should be deleted on miss"
        );

        // Recompute-and-persist round-trips: the next put re-creates the
        // file and a fresh cache reads it back.
        cold.put(d, record_of(2.25));
        let recovered = ResultCache::with_disk(dir.clone());
        assert_eq!(recovered.get(&d), Some(record_of(2.25)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_garbage_is_deleted_too() {
        let dir = std::env::temp_dir().join(format!("axcc-sweep-utf8-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::with_disk(dir.clone());
        let d = digest_of("binary-key");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(d.to_hex()), [0xff, 0xfe, 0x00, 0x81]).unwrap();
        assert!(cache.get(&d).is_none());
        assert!(!dir.join(d.to_hex()).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
