//! The exact-bit cache record codec.
//!
//! Cached results must round-trip *losslessly*: several axiom scores are
//! legitimately `+∞` (e.g. convergence time of a non-converging protocol)
//! and text renderings of floats would silently corrupt them (the vendored
//! JSON writer renders non-finite numbers as `null`). A [`Record`] is
//! therefore a flat list of string fields in which every `f64` is stored
//! as the 16-hex-digit form of its IEEE-754 bit pattern — decode returns
//! the identical bits, NaN payloads included.
//!
//! The on-disk encoding is line-oriented: a count header, then one field
//! per line with `\`-escaping for embedded newlines. Any malformed file
//! decodes to `None` and is treated as a cache miss, never an error.

/// A flat, schema-less list of string fields holding one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    fields: Vec<String>,
}

impl Record {
    /// Empty record; chain `push_*` calls to fill it.
    pub fn new() -> Self {
        Record { fields: Vec::new() }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Append a raw string field.
    pub fn push_str(&mut self, s: &str) {
        self.fields.push(s.to_string());
    }

    /// Append an `f64` as its exact bit pattern (16 hex digits).
    pub fn push_f64(&mut self, v: f64) {
        self.fields.push(format!("{:016x}", v.to_bits()));
    }

    /// Append an optional `f64` (`-` marks `None`).
    pub fn push_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.fields.push("-".to_string()),
            Some(v) => self.push_f64(v),
        }
    }

    /// Append a `usize` in decimal.
    pub fn push_usize(&mut self, v: usize) {
        self.fields.push(v.to_string());
    }

    /// Append an optional `usize` (`-` marks `None`).
    pub fn push_opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.fields.push("-".to_string()),
            Some(v) => self.push_usize(v),
        }
    }

    /// Append a bool (`1`/`0`).
    pub fn push_bool(&mut self, v: bool) {
        self.fields.push(if v { "1" } else { "0" }.to_string());
    }

    /// Cursor for reading fields back in order.
    pub fn reader(&self) -> RecordReader<'_> {
        RecordReader {
            fields: &self.fields,
            next: 0,
        }
    }

    /// Serialize to the line-oriented on-disk form.
    pub fn encode(&self) -> String {
        let mut out = format!("{}\n", self.fields.len());
        for f in &self.fields {
            let escaped = f.replace('\\', "\\\\").replace('\n', "\\n");
            out.push_str(&escaped);
            out.push('\n');
        }
        out
    }

    /// Parse the on-disk form; `None` on any malformation (truncated
    /// write, wrong count, bad escape) — callers treat that as a miss.
    pub fn decode(text: &str) -> Option<Record> {
        let mut lines = text.split('\n');
        let count: usize = lines.next()?.parse().ok()?;
        let mut fields = Vec::with_capacity(count);
        for _ in 0..count {
            fields.push(unescape(lines.next()?)?);
        }
        // Exactly one trailing empty segment must remain (final '\n').
        if lines.next() != Some("") || lines.next().is_some() {
            return None;
        }
        Some(Record { fields })
    }
}

/// Reverse the `encode` escaping; `None` on a dangling backslash or an
/// unknown escape.
fn unescape(s: &str) -> Option<String> {
    if !s.contains('\\') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// In-order field cursor over a [`Record`]. Every accessor returns
/// `None` on type mismatch or exhaustion, making `from_record`
/// implementations short-circuit cleanly with `?`.
#[derive(Debug)]
pub struct RecordReader<'a> {
    fields: &'a [String],
    next: usize,
}

impl<'a> RecordReader<'a> {
    fn take(&mut self) -> Option<&'a str> {
        let f = self.fields.get(self.next)?;
        self.next += 1;
        Some(f)
    }

    /// Next field as a raw string.
    pub fn str(&mut self) -> Option<&'a str> {
        self.take()
    }

    /// Next field as an exact-bits `f64`.
    pub fn f64(&mut self) -> Option<f64> {
        let f = self.take()?;
        if f.len() != 16 {
            return None;
        }
        u64::from_str_radix(f, 16).ok().map(f64::from_bits)
    }

    /// Next field as an optional `f64`.
    pub fn opt_f64(&mut self) -> Option<Option<f64>> {
        if self.fields.get(self.next).map(String::as_str) == Some("-") {
            self.next += 1;
            return Some(None);
        }
        self.f64().map(Some)
    }

    /// Next field as a `usize`.
    pub fn usize(&mut self) -> Option<usize> {
        self.take()?.parse().ok()
    }

    /// Next field as an optional `usize`.
    pub fn opt_usize(&mut self) -> Option<Option<usize>> {
        if self.fields.get(self.next).map(String::as_str) == Some("-") {
            self.next += 1;
            return Some(None);
        }
        self.usize().map(Some)
    }

    /// Next field as a bool.
    pub fn bool(&mut self) -> Option<bool> {
        match self.take()? {
            "1" => Some(true),
            "0" => Some(false),
            _ => None,
        }
    }

    /// Whether every field has been consumed (call last in
    /// `from_record` to reject records with trailing garbage).
    pub fn exhausted(&self) -> bool {
        self.next == self.fields.len()
    }
}

/// A result type the cache can store: converts to a [`Record`] and back
/// *losslessly* (bit-exact for floats). `from_record` must be the exact
/// inverse of `to_record` and return `None` for anything else.
pub trait Cacheable: Sized {
    /// Encode this value as a flat record.
    fn to_record(&self) -> Record;
    /// Decode; `None` on any mismatch (treated as a cache miss).
    fn from_record(record: &Record) -> Option<Self>;
}

impl Cacheable for f64 {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push_f64(*self);
        r
    }
    fn from_record(record: &Record) -> Option<Self> {
        let mut rd = record.reader();
        let v = rd.f64()?;
        rd.exhausted().then_some(v)
    }
}

impl Cacheable for (f64, f64) {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push_f64(self.0);
        r.push_f64(self.1);
        r
    }
    fn from_record(record: &Record) -> Option<Self> {
        let mut rd = record.reader();
        let v = (rd.f64()?, rd.f64()?);
        rd.exhausted().then_some(v)
    }
}

impl Cacheable for (f64, f64, f64) {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push_f64(self.0);
        r.push_f64(self.1);
        r.push_f64(self.2);
        r
    }
    fn from_record(record: &Record) -> Option<Self> {
        let mut rd = record.reader();
        let v = (rd.f64()?, rd.f64()?, rd.f64()?);
        rd.exhausted().then_some(v)
    }
}

impl Cacheable for Vec<f64> {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push_usize(self.len());
        for &v in self {
            r.push_f64(v);
        }
        r
    }
    fn from_record(record: &Record) -> Option<Self> {
        let mut rd = record.reader();
        let n = rd.usize()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(rd.f64()?);
        }
        rd.exhausted().then_some(out)
    }
}

impl Cacheable for axcc_core::AxiomScores {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push_f64(self.efficiency);
        r.push_f64(self.fast_utilization);
        r.push_f64(self.loss_bound);
        r.push_f64(self.fairness);
        r.push_f64(self.convergence);
        r.push_f64(self.robustness);
        r.push_f64(self.tcp_friendliness);
        r.push_f64(self.latency_inflation);
        r
    }
    fn from_record(record: &Record) -> Option<Self> {
        let mut rd = record.reader();
        let v = axcc_core::AxiomScores {
            efficiency: rd.f64()?,
            fast_utilization: rd.f64()?,
            loss_bound: rd.f64()?,
            fairness: rd.f64()?,
            convergence: rd.f64()?,
            robustness: rd.f64()?,
            tcp_friendliness: rd.f64()?,
            latency_inflation: rd.f64()?,
        };
        rd.exhausted().then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_bits() {
        let values = vec![
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
        ];
        let rec = values.to_record();
        let back = Vec::<f64>::from_record(&Record::decode(&rec.encode()).unwrap()).unwrap();
        assert_eq!(values.len(), back.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strings_with_newlines_round_trip() {
        let mut r = Record::new();
        r.push_str("multi\nline \\ field");
        r.push_str("");
        r.push_bool(true);
        let decoded = Record::decode(&r.encode()).unwrap();
        let mut rd = decoded.reader();
        assert_eq!(rd.str(), Some("multi\nline \\ field"));
        assert_eq!(rd.str(), Some(""));
        assert_eq!(rd.bool(), Some(true));
        assert!(rd.exhausted());
    }

    #[test]
    fn malformed_text_decodes_to_none() {
        assert!(Record::decode("").is_none());
        assert!(Record::decode("2\nonly-one\n").is_none());
        assert!(Record::decode("1\nfield\nextra\n").is_none());
        assert!(Record::decode("1\nbad\\escape\n").is_none());
        assert!(Record::decode("not-a-count\n").is_none());
    }

    #[test]
    fn truncated_record_is_rejected_not_misread() {
        let mut r = Record::new();
        r.push_f64(1.0);
        r.push_f64(2.0);
        let text = r.encode();
        let truncated = &text[..text.len() - 5];
        assert!(Record::decode(truncated).is_none());
    }

    #[test]
    fn trailing_fields_fail_typed_decode() {
        let mut r = Record::new();
        r.push_f64(1.0);
        r.push_f64(2.0);
        assert!(f64::from_record(&r).is_none());
        assert!(<(f64, f64)>::from_record(&r).is_some());
    }

    #[test]
    fn axiom_scores_round_trip() {
        let s = axcc_core::AxiomScores {
            efficiency: 0.97,
            fast_utilization: f64::INFINITY,
            loss_bound: 0.25,
            fairness: 1.0,
            convergence: f64::INFINITY,
            robustness: 0.5,
            tcp_friendliness: 1.25,
            latency_inflation: 1.0,
        };
        let back = axcc_core::AxiomScores::from_record(&s.to_record()).unwrap();
        assert_eq!(back.fast_utilization, f64::INFINITY);
        assert_eq!(back.efficiency.to_bits(), s.efficiency.to_bits());
    }
}
