//! The sweep runner: jobs in, memoized ordered results out.
//!
//! A [`SweepRunner`] ties the three mechanisms together: it derives each
//! job's content address (fingerprint of the job plus an engine-version
//! tag plus a per-sweep scope label), answers what it can from the
//! [`ResultCache`], and fans the rest out over the ordered worker pool.
//! The returned `Vec` is always in submission order and bit-identical
//! whether `workers` is 1 or 100, cold cache or warm.

use crate::cache::ResultCache;
use crate::pool::run_ordered;
use crate::record::Cacheable;
use axcc_core::fingerprint::{Digest, Fingerprint, Fingerprinter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump when an engine change (simulator semantics, metric definitions,
/// protocol dynamics) invalidates previously cached results. The
/// revision is mixed into every job digest, so old cache entries are
/// simply never addressed again.
pub const ENGINE_REVISION: u32 = 1;

/// Default engine tag: crate version + engine revision.
fn default_engine_tag() -> String {
    format!("axcc-{}+r{}", env!("CARGO_PKG_VERSION"), ENGINE_REVISION)
}

/// How an experiment evaluates its scenarios: the streaming fast path
/// folds each engine step straight into the axiom accumulators (no trace
/// columns are ever allocated), while the traced path records a full
/// [`RunTrace`](axcc_core::RunTrace) and scores it afterwards. The two
/// are bit-identical in their metric outputs; the mode still participates
/// in every job fingerprint so a cache populated under one mode is never
/// answered under the other (the *path taken* is part of what a cached
/// result attests to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Single-pass accumulator evaluation (the default fast path).
    #[default]
    Streaming,
    /// Record a full trace, then score it (`--record-traces`).
    Traced,
}

impl Fingerprint for EvalMode {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("EvalMode");
        fp.write_u8(match self {
            EvalMode::Streaming => 0,
            EvalMode::Traced => 1,
        });
    }
}

/// One unit of sweep work: a fingerprintable input (scenario + protocol
/// + metric budget) that evaluates to a cacheable scored result.
///
/// The fingerprint must cover *everything* `run` depends on; anything
/// left out becomes a stale-cache bug. Conversely `run` must be
/// deterministic — equal fingerprints are assumed to mean equal results.
pub trait SweepJob: Fingerprint + Sync {
    /// The scored result this job produces.
    type Output: Cacheable + Send;

    /// Evaluate the job. Must be deterministic and must not read
    /// ambient state (wall-clock, environment, global RNGs).
    fn run(&self) -> Self::Output;
}

/// Cumulative job statistics for one runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Jobs actually evaluated.
    pub executed: u64,
}

impl SweepStats {
    /// Total jobs submitted.
    pub fn jobs(&self) -> u64 {
        self.cache_hits + self.executed
    }

    /// Fraction of jobs answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs() > 0 {
            self.cache_hits as f64 / self.jobs() as f64
        } else {
            0.0
        }
    }
}

/// Orchestrates sweeps: content addressing + cache + ordered pool.
#[derive(Debug)]
pub struct SweepRunner {
    workers: usize,
    cache: Option<ResultCache>,
    engine_tag: String,
    eval_mode: EvalMode,
    hits: AtomicU64,
    executed: AtomicU64,
}

impl SweepRunner {
    /// Runner with `workers` threads and an in-memory cache.
    /// `workers == 0` selects the host's available parallelism.
    pub fn new(workers: usize) -> Self {
        SweepRunner {
            workers: resolve_workers(workers),
            cache: Some(ResultCache::in_memory()),
            engine_tag: default_engine_tag(),
            eval_mode: EvalMode::default(),
            hits: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    /// The serial reference runner: one worker, in-memory cache. This is
    /// what the experiments' plain entry points use, so existing callers
    /// see unchanged behaviour.
    pub fn serial() -> Self {
        SweepRunner::new(1)
    }

    /// Runner whose cache persists under `dir` (one file per digest).
    pub fn with_disk_cache(workers: usize, dir: PathBuf) -> Self {
        SweepRunner {
            workers: resolve_workers(workers),
            cache: Some(ResultCache::with_disk(dir)),
            engine_tag: default_engine_tag(),
            eval_mode: EvalMode::default(),
            hits: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    /// Runner with caching disabled entirely (`--no-cache`).
    pub fn without_cache(workers: usize) -> Self {
        SweepRunner {
            workers: resolve_workers(workers),
            cache: None,
            engine_tag: default_engine_tag(),
            eval_mode: EvalMode::default(),
            hits: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    /// Override the engine tag (tests use this to prove that an
    /// engine-parameter change re-addresses every job).
    pub fn with_engine_tag(mut self, tag: &str) -> Self {
        self.engine_tag = tag.to_string();
        self
    }

    /// Select the evaluation mode experiments driven by this runner
    /// should use (default [`EvalMode::Streaming`]). Experiments read it
    /// via [`eval_mode`](Self::eval_mode) and must mix it into their job
    /// fingerprints.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// The evaluation mode experiments should run under.
    pub fn eval_mode(&self) -> EvalMode {
        self.eval_mode
    }

    /// Number of worker threads this runner fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether a result cache is attached.
    pub fn caching(&self) -> bool {
        self.cache.is_some()
    }

    /// Cumulative statistics since construction (or the last
    /// [`take_stats`](Self::take_stats)).
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
        }
    }

    /// Read and reset the statistics — lets a driver report per-phase
    /// numbers from one shared runner.
    pub fn take_stats(&self) -> SweepStats {
        SweepStats {
            cache_hits: self.hits.swap(0, Ordering::Relaxed),
            executed: self.executed.swap(0, Ordering::Relaxed),
        }
    }

    /// The content address the runner will use for `input` in `scope`.
    /// Exposed so tests can assert fingerprint sensitivity.
    pub fn job_digest<I: Fingerprint>(&self, scope: &str, input: &I) -> Digest {
        let mut fp = Fingerprinter::new();
        fp.write_str(&self.engine_tag);
        fp.write_str(scope);
        input.fingerprint(&mut fp);
        fp.finish()
    }

    /// Run `eval` over every input, in parallel, answering repeated
    /// inputs from the cache. Results come back in input order and are
    /// bit-identical to a serial, uncached run.
    ///
    /// `scope` namespaces the digests (two experiments hashing the same
    /// tuple type must not share addresses unless they share semantics).
    pub fn sweep<I, T, F>(&self, scope: &str, inputs: &[I], eval: F) -> Vec<T>
    where
        I: Fingerprint + Sync,
        T: Cacheable + Send,
        F: Fn(&I) -> T + Sync,
    {
        let digests: Vec<Digest> = inputs.iter().map(|i| self.job_digest(scope, i)).collect();
        run_ordered(self.workers, inputs, |idx, input| {
            let digest = digests[idx];
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(&digest).and_then(|r| T::from_record(&r)) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return hit;
                }
            }
            let out = eval(input);
            self.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(cache) = &self.cache {
                cache.put(digest, out.to_record());
            }
            out
        })
    }

    /// Run a slice of self-contained [`SweepJob`]s.
    pub fn run_jobs<J: SweepJob>(&self, scope: &str, jobs: &[J]) -> Vec<J::Output> {
        self.sweep(scope, jobs, J::run)
    }
}

/// `0` means "ask the host"; anything else is taken literally.
fn resolve_workers(workers: usize) -> usize {
    if workers > 0 {
        return workers;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Square(f64);

    impl Fingerprint for Square {
        fn fingerprint(&self, fp: &mut Fingerprinter) {
            fp.write_str("Square");
            fp.write_f64(self.0);
        }
    }

    impl SweepJob for Square {
        type Output = f64;
        fn run(&self) -> f64 {
            self.0 * self.0
        }
    }

    #[test]
    fn run_jobs_returns_input_order() {
        let runner = SweepRunner::new(4);
        let jobs: Vec<Square> = (0..20).map(|i| Square(i as f64)).collect();
        let out = runner.run_jobs("square", &jobs);
        assert_eq!(out, (0..20).map(|i| (i * i) as f64).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_inputs_hit_the_cache() {
        let runner = SweepRunner::serial();
        let evals = AtomicUsize::new(0);
        let inputs = vec![1.0f64, 2.0, 1.0, 2.0, 1.0];
        let out = runner.sweep("double", &inputs, |&x| {
            evals.fetch_add(1, Ordering::Relaxed);
            x * 2.0
        });
        assert_eq!(out, vec![2.0, 4.0, 2.0, 4.0, 2.0]);
        assert_eq!(evals.load(Ordering::Relaxed), 2);
        let stats = runner.stats();
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn without_cache_always_evaluates() {
        let runner = SweepRunner::without_cache(1);
        let evals = AtomicUsize::new(0);
        let inputs = vec![1.0f64, 1.0, 1.0];
        runner.sweep("noop", &inputs, |&x| {
            evals.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(evals.load(Ordering::Relaxed), 3);
        assert_eq!(runner.stats().cache_hits, 0);
    }

    #[test]
    fn scope_and_engine_tag_separate_addresses() {
        let runner = SweepRunner::serial();
        let a = runner.job_digest("scope-a", &1.0f64);
        let b = runner.job_digest("scope-b", &1.0f64);
        assert_ne!(a, b);
        let retagged = SweepRunner::serial().with_engine_tag("axcc-0.1.0+r999");
        assert_ne!(retagged.job_digest("scope-a", &1.0f64), a);
    }

    #[test]
    fn take_stats_resets() {
        let runner = SweepRunner::serial();
        runner.sweep("x", &[1.0f64, 1.0], |&x| x);
        let first = runner.take_stats();
        assert_eq!(first.jobs(), 2);
        assert_eq!(runner.stats().jobs(), 0);
    }

    #[test]
    fn auto_workers_is_at_least_one() {
        assert!(SweepRunner::new(0).workers() >= 1);
    }

    #[test]
    fn eval_mode_defaults_to_streaming_and_is_overridable() {
        assert_eq!(SweepRunner::serial().eval_mode(), EvalMode::Streaming);
        let traced = SweepRunner::serial().with_eval_mode(EvalMode::Traced);
        assert_eq!(traced.eval_mode(), EvalMode::Traced);
    }

    #[test]
    fn eval_mode_changes_the_job_digest() {
        // A job that fingerprints the runner's mode (as every mode-aware
        // experiment must) gets a different address per mode, so cached
        // streaming results are never served to a traced run.
        struct ModedJob(EvalMode);
        impl Fingerprint for ModedJob {
            fn fingerprint(&self, fp: &mut Fingerprinter) {
                fp.write_str("ModedJob");
                self.0.fingerprint(fp);
            }
        }
        let runner = SweepRunner::serial();
        let streaming = runner.job_digest("moded", &ModedJob(EvalMode::Streaming));
        let traced = runner.job_digest("moded", &ModedJob(EvalMode::Traced));
        assert_ne!(streaming, traced);
    }
}
