//! The sweep runner: jobs in, memoized ordered results out.
//!
//! A [`SweepRunner`] ties the three mechanisms together: it derives each
//! job's content address (fingerprint of the job plus an engine-version
//! tag plus a per-sweep scope label), answers what it can from the
//! [`ResultCache`], and fans the rest out over the ordered worker pool.
//! The returned `Vec` is always in submission order and bit-identical
//! whether `workers` is 1 or 100, cold cache or warm.

use crate::cache::ResultCache;
use crate::cancel::{interrupt_unwind, CancelSignal, Interrupted};
use crate::pool::{default_chunk_size, run_chunked_cancellable};
use crate::progress::SweepProgress;
use crate::record::{Cacheable, Record};
use axcc_core::fingerprint::{Digest, Fingerprint, Fingerprinter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bump when an engine change (simulator semantics, metric definitions,
/// protocol dynamics) invalidates previously cached results. The
/// revision is mixed into every job digest, so old cache entries are
/// simply never addressed again.
pub const ENGINE_REVISION: u32 = 2;

/// Default engine tag: crate version + engine revision.
fn default_engine_tag() -> String {
    format!("axcc-{}+r{}", env!("CARGO_PKG_VERSION"), ENGINE_REVISION)
}

/// How an experiment evaluates its scenarios: the streaming fast path
/// folds each engine step straight into the axiom accumulators (no trace
/// columns are ever allocated), while the traced path records a full
/// [`RunTrace`](axcc_core::RunTrace) and scores it afterwards. The two
/// are bit-identical in their metric outputs; the mode still participates
/// in every job fingerprint so a cache populated under one mode is never
/// answered under the other (the *path taken* is part of what a cached
/// result attests to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Single-pass accumulator evaluation (the default fast path).
    #[default]
    Streaming,
    /// Record a full trace, then score it (`--record-traces`).
    Traced,
}

impl Fingerprint for EvalMode {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("EvalMode");
        fp.write_u8(match self {
            EvalMode::Streaming => 0,
            EvalMode::Traced => 1,
        });
    }
}

/// One unit of sweep work: a fingerprintable input (scenario + protocol
/// + metric budget) that evaluates to a cacheable scored result.
///
/// The fingerprint must cover *everything* `run` depends on; anything
/// left out becomes a stale-cache bug. Conversely `run` must be
/// deterministic — equal fingerprints are assumed to mean equal results.
pub trait SweepJob: Fingerprint + Sync {
    /// The scored result this job produces.
    type Output: Cacheable + Send;

    /// Evaluate the job. Must be deterministic and must not read
    /// ambient state (wall-clock, environment, global RNGs).
    fn run(&self) -> Self::Output;
}

/// Cumulative job statistics for one runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Jobs actually evaluated.
    pub executed: u64,
}

impl SweepStats {
    /// Total jobs submitted.
    pub fn jobs(&self) -> u64 {
        self.cache_hits + self.executed
    }

    /// Fraction of jobs answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs() > 0 {
            self.cache_hits as f64 / self.jobs() as f64
        } else {
            0.0
        }
    }
}

/// Callback invoked on the sweeping thread after a cancellation drains,
/// before the sweep unwinds (see [`SweepRunner::with_interrupt_hook`]).
pub type InterruptHook = Box<dyn Fn(&Interrupted) + Send + Sync>;

/// Orchestrates sweeps: content addressing + cache + ordered pool.
pub struct SweepRunner {
    workers: usize,
    cache: Option<Arc<ResultCache>>,
    engine_tag: String,
    eval_mode: EvalMode,
    cancel: Option<CancelSignal>,
    interrupt_hook: Option<InterruptHook>,
    chunk_size: Option<usize>,
    progress: Option<Arc<SweepProgress>>,
    hits: AtomicU64,
    executed: AtomicU64,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("workers", &self.workers)
            .field("caching", &self.cache.is_some())
            .field("engine_tag", &self.engine_tag)
            .field("eval_mode", &self.eval_mode)
            .field("cancellable", &self.cancel.is_some())
            .finish()
    }
}

impl SweepRunner {
    fn with_cache_opt(workers: usize, cache: Option<Arc<ResultCache>>) -> Self {
        SweepRunner {
            workers: resolve_workers(workers),
            cache,
            engine_tag: default_engine_tag(),
            eval_mode: EvalMode::default(),
            cancel: None,
            interrupt_hook: None,
            chunk_size: None,
            progress: None,
            hits: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    /// Runner with `workers` threads and an in-memory cache.
    /// `workers == 0` selects the host's available parallelism.
    pub fn new(workers: usize) -> Self {
        Self::with_cache_opt(workers, Some(Arc::new(ResultCache::in_memory())))
    }

    /// The serial reference runner: one worker, in-memory cache. This is
    /// what the experiments' plain entry points use, so existing callers
    /// see unchanged behaviour.
    pub fn serial() -> Self {
        SweepRunner::new(1)
    }

    /// Runner whose cache persists under `dir` (one file per digest).
    pub fn with_disk_cache(workers: usize, dir: PathBuf) -> Self {
        Self::with_cache_opt(workers, Some(Arc::new(ResultCache::with_disk(dir))))
    }

    /// Runner over an existing shared cache. This is how a long-running
    /// service gives every request its own runner (own cancellation
    /// signal, own statistics) while all requests share one
    /// content-addressed store.
    pub fn with_cache_handle(workers: usize, cache: Arc<ResultCache>) -> Self {
        Self::with_cache_opt(workers, Some(cache))
    }

    /// Runner with caching disabled entirely (`--no-cache`).
    pub fn without_cache(workers: usize) -> Self {
        Self::with_cache_opt(workers, None)
    }

    /// Override the engine tag (tests use this to prove that an
    /// engine-parameter change re-addresses every job).
    pub fn with_engine_tag(mut self, tag: &str) -> Self {
        self.engine_tag = tag.to_string();
        self
    }

    /// Select the evaluation mode experiments driven by this runner
    /// should use (default [`EvalMode::Streaming`]). Experiments read it
    /// via [`eval_mode`](Self::eval_mode) and must mix it into their job
    /// fingerprints.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// The evaluation mode experiments should run under.
    pub fn eval_mode(&self) -> EvalMode {
        self.eval_mode
    }

    /// Attach a cancellation signal. The runner polls it before every job
    /// claim; when it is raised, in-flight jobs finish (and their results
    /// reach the cache), no further jobs start, and the sweep unwinds
    /// with an [`Interrupted`] payload — see [`crate::cancel`] for the
    /// contract and the sanctioned unwind boundaries.
    pub fn with_cancel(mut self, signal: CancelSignal) -> Self {
        self.cancel = Some(signal);
        self
    }

    /// Install a hook that runs (on the sweeping thread) after a
    /// cancellation drains but before the sweep unwinds. The CLI uses it
    /// to print a partial report and exit the process cleanly; a hook
    /// that returns lets the unwind proceed to a `catch_unwind` boundary.
    pub fn with_interrupt_hook(mut self, hook: InterruptHook) -> Self {
        self.interrupt_hook = Some(hook);
        self
    }

    /// Override the dispatch chunk size (`--chunk-size`). `0` restores
    /// the automatic choice, `max(1, jobs / (8·workers))` clamped — see
    /// [`default_chunk_size`]. The chunk size never affects results
    /// (that is the pool's ordering invariant), only how claim and flush
    /// traffic amortizes.
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = if chunk == 0 { None } else { Some(chunk) };
        self
    }

    /// Attach a completed-jobs counter that sweeps update once per
    /// flushed chunk (relaxed atomic adds — off the dispatch hot path).
    /// The caller keeps a clone of the `Arc` to read it.
    pub fn with_progress(mut self, progress: Arc<SweepProgress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The shared cache handle, for wiring further runners to the same
    /// store (see [`with_cache_handle`](Self::with_cache_handle)).
    pub fn cache_handle(&self) -> Option<Arc<ResultCache>> {
        self.cache.clone()
    }

    /// Number of worker threads this runner fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether a result cache is attached.
    pub fn caching(&self) -> bool {
        self.cache.is_some()
    }

    /// Cumulative statistics since construction (or the last
    /// [`take_stats`](Self::take_stats)).
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
        }
    }

    /// Read and reset the statistics — lets a driver report per-phase
    /// numbers from one shared runner.
    pub fn take_stats(&self) -> SweepStats {
        SweepStats {
            cache_hits: self.hits.swap(0, Ordering::Relaxed),
            executed: self.executed.swap(0, Ordering::Relaxed),
        }
    }

    /// The content address the runner will use for `input` in `scope`.
    /// Exposed so tests can assert fingerprint sensitivity.
    pub fn job_digest<I: Fingerprint>(&self, scope: &str, input: &I) -> Digest {
        let mut fp = Fingerprinter::new();
        fp.write_str(&self.engine_tag);
        fp.write_str(scope);
        input.fingerprint(&mut fp);
        fp.finish()
    }

    /// Worker count actually used for a batch of `jobs` jobs. Two
    /// fallbacks, neither of which can affect results (that is the
    /// pool's ordering invariant):
    ///
    /// * the configured count is clamped to the host's available
    ///   parallelism — oversubscribing a smaller host buys nothing but
    ///   scheduling overhead (the pre-clamp BENCH_sweep.json measured
    ///   0.95x total "speedup" at 4 workers on a 1-core container);
    /// * batches too small to amortize thread spawn + claim traffic run
    ///   inline on the calling thread (0.93–0.96x for table1/table2-sized
    ///   batches before this fallback).
    fn effective_workers(&self, jobs: usize) -> usize {
        let workers = self.workers.min(host_parallelism());
        if jobs < 2 * workers {
            1
        } else {
            workers
        }
    }

    /// Chunk size used for a sweep of `jobs` jobs over `workers` workers:
    /// the explicit override if one was set, otherwise the automatic
    /// choice.
    fn chunk_size_for(&self, jobs: usize, workers: usize) -> usize {
        self.chunk_size
            .unwrap_or_else(|| default_chunk_size(jobs, workers))
    }

    /// Run `eval` over every input, in parallel, answering repeated
    /// inputs from the cache. Results come back in input order and are
    /// bit-identical to a serial, uncached run.
    ///
    /// `scope` namespaces the digests (two experiments hashing the same
    /// tuple type must not share addresses unless they share semantics).
    pub fn sweep<I, T, F>(&self, scope: &str, inputs: &[I], eval: F) -> Vec<T>
    where
        I: Fingerprint + Sync,
        T: Cacheable + Send,
        F: Fn(&I) -> T + Sync,
    {
        let workers = self.effective_workers(inputs.len());
        let chunk = self.chunk_size_for(inputs.len(), workers);
        // Everything per-job lives inside the chunk processor, on the
        // worker: digests are fingerprinted off the submission thread,
        // cache writes and hit/executed counters batch up per chunk and
        // flush once, and the progress counter advances once per chunk.
        let outcome = run_chunked_cancellable(
            workers,
            inputs.len(),
            chunk,
            |range, out| {
                let mut writes: Vec<(Digest, Record)> = Vec::new();
                let mut hits = 0u64;
                let mut executed = 0u64;
                for idx in range {
                    if self.cancel.as_ref().is_some_and(CancelSignal::is_raised) {
                        break;
                    }
                    let input = &inputs[idx];
                    let digest = self.job_digest(scope, input);
                    if let Some(cache) = &self.cache {
                        if let Some(hit) = cache.get(&digest).and_then(|r| T::from_record(&r)) {
                            hits += 1;
                            out.push(hit);
                            continue;
                        }
                    }
                    let result = eval(input);
                    executed += 1;
                    if self.cache.is_some() {
                        writes.push((digest, result.to_record()));
                    }
                    out.push(result);
                }
                if let Some(cache) = &self.cache {
                    cache.put_batch(writes);
                }
                self.hits.fetch_add(hits, Ordering::Relaxed);
                self.executed.fetch_add(executed, Ordering::Relaxed);
                if let Some(progress) = &self.progress {
                    progress.add(hits + executed);
                }
            },
            self.cancel.as_ref(),
        );
        match outcome {
            Ok(results) => results,
            Err(completed) => {
                let info = Interrupted {
                    completed,
                    total: inputs.len(),
                };
                if let Some(hook) = &self.interrupt_hook {
                    hook(&info);
                }
                interrupt_unwind(info)
            }
        }
    }

    /// Evaluate one job on the calling thread, answering it from the
    /// cache when possible. This is the service fast path: a request that
    /// maps to a single evaluation needs content addressing and the
    /// shared store, not a worker fan-out, and `FnOnce` lets the caller
    /// move non-`Sync` state (e.g. a freshly resolved `Box<dyn Protocol>`)
    /// into the evaluation.
    pub fn run_cached<I, T, F>(&self, scope: &str, input: &I, eval: F) -> T
    where
        I: Fingerprint,
        T: Cacheable,
        F: FnOnce() -> T,
    {
        let digest = self.job_digest(scope, input);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&digest).and_then(|r| T::from_record(&r)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        let out = eval();
        self.executed.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.put(digest, out.to_record());
        }
        out
    }

    /// Run a slice of self-contained [`SweepJob`]s.
    pub fn run_jobs<J: SweepJob>(&self, scope: &str, jobs: &[J]) -> Vec<J::Output> {
        self.sweep(scope, jobs, J::run)
    }
}

/// `0` means "ask the host"; anything else is taken literally.
fn resolve_workers(workers: usize) -> usize {
    if workers > 0 {
        return workers;
    }
    host_parallelism()
}

/// The host's available parallelism (1 if the host won't say). Public so
/// benchmarks and capacity reports can record the hardware context a
/// speedup was measured under.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Square(f64);

    impl Fingerprint for Square {
        fn fingerprint(&self, fp: &mut Fingerprinter) {
            fp.write_str("Square");
            fp.write_f64(self.0);
        }
    }

    impl SweepJob for Square {
        type Output = f64;
        fn run(&self) -> f64 {
            self.0 * self.0
        }
    }

    #[test]
    fn run_jobs_returns_input_order() {
        let runner = SweepRunner::new(4);
        let jobs: Vec<Square> = (0..20).map(|i| Square(i as f64)).collect();
        let out = runner.run_jobs("square", &jobs);
        assert_eq!(out, (0..20).map(|i| (i * i) as f64).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_inputs_hit_the_cache() {
        let runner = SweepRunner::serial();
        let evals = AtomicUsize::new(0);
        let inputs = vec![1.0f64, 2.0, 1.0, 2.0, 1.0];
        let out = runner.sweep("double", &inputs, |&x| {
            evals.fetch_add(1, Ordering::Relaxed);
            x * 2.0
        });
        assert_eq!(out, vec![2.0, 4.0, 2.0, 4.0, 2.0]);
        assert_eq!(evals.load(Ordering::Relaxed), 2);
        let stats = runner.stats();
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn without_cache_always_evaluates() {
        let runner = SweepRunner::without_cache(1);
        let evals = AtomicUsize::new(0);
        let inputs = vec![1.0f64, 1.0, 1.0];
        runner.sweep("noop", &inputs, |&x| {
            evals.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(evals.load(Ordering::Relaxed), 3);
        assert_eq!(runner.stats().cache_hits, 0);
    }

    #[test]
    fn scope_and_engine_tag_separate_addresses() {
        let runner = SweepRunner::serial();
        let a = runner.job_digest("scope-a", &1.0f64);
        let b = runner.job_digest("scope-b", &1.0f64);
        assert_ne!(a, b);
        let retagged = SweepRunner::serial().with_engine_tag("axcc-0.1.0+r999");
        assert_ne!(retagged.job_digest("scope-a", &1.0f64), a);
    }

    #[test]
    fn take_stats_resets() {
        let runner = SweepRunner::serial();
        runner.sweep("x", &[1.0f64, 1.0], |&x| x);
        let first = runner.take_stats();
        assert_eq!(first.jobs(), 2);
        assert_eq!(runner.stats().jobs(), 0);
    }

    #[test]
    fn auto_workers_is_at_least_one() {
        assert!(SweepRunner::new(0).workers() >= 1);
    }

    #[test]
    fn eval_mode_defaults_to_streaming_and_is_overridable() {
        assert_eq!(SweepRunner::serial().eval_mode(), EvalMode::Streaming);
        let traced = SweepRunner::serial().with_eval_mode(EvalMode::Traced);
        assert_eq!(traced.eval_mode(), EvalMode::Traced);
    }

    #[test]
    fn tiny_batches_fall_back_to_serial() {
        let runner = SweepRunner::new(4);
        // The configured count is clamped to the host, so compute the
        // thresholds against what this machine can actually do.
        let w = 4.min(host_parallelism());
        // Fewer than 2×w jobs: run inline.
        assert_eq!(runner.effective_workers((2 * w).saturating_sub(1)), 1);
        // 2×w jobs or more: fan out to the clamped count.
        assert_eq!(runner.effective_workers(2 * w), w);
        // A serial runner is unaffected.
        assert_eq!(SweepRunner::serial().effective_workers(1000), 1);
        // …and the fallback never changes results.
        let jobs: Vec<Square> = (0..7).map(|i| Square(i as f64)).collect();
        assert_eq!(
            runner.run_jobs("square", &jobs),
            SweepRunner::serial().run_jobs("square", &jobs)
        );
    }

    #[test]
    fn chunk_size_override_never_changes_results() {
        let jobs: Vec<Square> = (0..40).map(|i| Square(i as f64)).collect();
        let reference = SweepRunner::serial().run_jobs("square", &jobs);
        // Chunk 1, a ragged chunk, and one chunk bigger than the sweep.
        for chunk in [1, 7, 1000] {
            let runner = SweepRunner::new(4).with_chunk_size(chunk);
            assert_eq!(runner.run_jobs("square", &jobs), reference, "chunk={chunk}");
        }
        // `0` restores the automatic choice.
        let auto = SweepRunner::new(4).with_chunk_size(3).with_chunk_size(0);
        assert_eq!(auto.run_jobs("square", &jobs), reference);
    }

    #[test]
    fn progress_counts_every_job_once() {
        let progress = Arc::new(SweepProgress::new());
        let runner = SweepRunner::new(4)
            .with_chunk_size(3)
            .with_progress(progress.clone());
        let jobs: Vec<Square> = (0..25).map(|i| Square(i as f64)).collect();
        runner.run_jobs("square", &jobs);
        assert_eq!(progress.done(), 25);
        // Cache hits count as completed jobs too.
        progress.reset();
        runner.run_jobs("square", &jobs);
        assert_eq!(progress.done(), 25);
        assert_eq!(runner.stats().cache_hits, 25);
    }

    #[test]
    fn progress_total_matches_completed_under_cancellation() {
        use crate::cancel::interrupted_payload;
        use std::sync::atomic::AtomicBool;

        let flag = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(SweepProgress::new());
        let runner = SweepRunner::serial()
            .with_chunk_size(4)
            .with_cancel(CancelSignal::from_flag(flag.clone()))
            .with_progress(progress.clone());
        let inputs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.sweep("cancelprog", &inputs, |&x| {
                if x == 5.0 {
                    flag.store(true, Ordering::SeqCst);
                }
                x
            })
        }))
        .unwrap_err();
        let info = interrupted_payload(payload.as_ref()).expect("typed Interrupted payload");
        // The partial chunk was flushed: the counter agrees exactly with
        // the completed count the unwind reported.
        assert_eq!(progress.done(), info.completed as u64);
        assert!(info.completed < inputs.len());
    }

    #[test]
    fn shared_cache_handle_is_shared_across_runners() {
        let a = SweepRunner::serial();
        let cache = a.cache_handle().unwrap();
        a.sweep("shared", &[1.0f64, 2.0], |&x| x * 3.0);
        let b = SweepRunner::with_cache_handle(1, cache);
        let evals = AtomicUsize::new(0);
        let out = b.sweep("shared", &[1.0f64, 2.0], |&x| {
            evals.fetch_add(1, Ordering::Relaxed);
            x * 3.0
        });
        assert_eq!(out, vec![3.0, 6.0]);
        assert_eq!(evals.load(Ordering::Relaxed), 0, "all answered from cache");
        assert_eq!(b.stats().cache_hits, 2);
    }

    #[test]
    fn run_cached_hits_like_sweep() {
        let runner = SweepRunner::serial();
        let first = runner.run_cached("single", &2.0f64, || 4.0);
        assert_eq!(first, 4.0);
        // Same address: answered from cache, eval not called.
        let second = runner.run_cached("single", &2.0f64, || -> f64 { unreachable!() });
        assert_eq!(second, 4.0);
        let stats = runner.stats();
        assert_eq!((stats.cache_hits, stats.executed), (1, 1));
        // And the sweep path shares the address space.
        let via_sweep = runner.sweep("single", &[2.0f64], |_| -> f64 { unreachable!() });
        assert_eq!(via_sweep, vec![4.0]);
    }

    #[test]
    fn cancelled_sweep_unwinds_with_typed_payload_after_hook() {
        use crate::cancel::interrupted_payload;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let flag = Arc::new(AtomicBool::new(false));
        let hook_ran = Arc::new(AtomicBool::new(false));
        let hook_flag = hook_ran.clone();
        let runner = SweepRunner::serial()
            .with_cancel(CancelSignal::from_flag(flag.clone()))
            .with_interrupt_hook(Box::new(move |info| {
                assert_eq!(info.total, 6);
                hook_flag.store(true, Ordering::SeqCst);
            }));
        let inputs = vec![0.0f64, 1.0, 2.0, 3.0, 4.0, 5.0];
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.sweep("cancelme", &inputs, |&x| {
                if x == 1.0 {
                    flag.store(true, Ordering::SeqCst);
                }
                x * 10.0
            })
        }))
        .unwrap_err();
        let info = interrupted_payload(payload.as_ref()).expect("typed Interrupted payload");
        assert_eq!((info.completed, info.total), (2, 6));
        assert!(hook_ran.load(Ordering::SeqCst), "hook runs before unwind");
        // Completed jobs were written through to the cache: with the
        // signal lowered, the same runner re-executes only the remaining
        // four.
        flag.store(false, Ordering::SeqCst);
        let evals = AtomicUsize::new(0);
        let out = runner.sweep("cancelme", &inputs, |&x| {
            evals.fetch_add(1, Ordering::Relaxed);
            x * 10.0
        });
        assert_eq!(out, vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(evals.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn eval_mode_changes_the_job_digest() {
        // A job that fingerprints the runner's mode (as every mode-aware
        // experiment must) gets a different address per mode, so cached
        // streaming results are never served to a traced run.
        struct ModedJob(EvalMode);
        impl Fingerprint for ModedJob {
            fn fingerprint(&self, fp: &mut Fingerprinter) {
                fp.write_str("ModedJob");
                self.0.fingerprint(fp);
            }
        }
        let runner = SweepRunner::serial();
        let streaming = runner.job_digest("moded", &ModedJob(EvalMode::Streaming));
        let traced = runner.job_digest("moded", &ModedJob(EvalMode::Traced));
        assert_ne!(streaming, traced);
    }
}
