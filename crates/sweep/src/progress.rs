//! Wall-clock and throughput reporting for sweeps.
//!
//! Everything in this module is *reporting only*: elapsed times are
//! printed or serialized for humans and benchmark snapshots, and are
//! never fed back into a scenario, a score, or a cache key. That is the
//! contract under which the `Instant::now` suppressions below are
//! justified — the workspace determinism rules otherwise ban wall-clock
//! reads outright.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotone completed-job counter for a live sweep, updated **once per
/// chunk** (not per job) with a relaxed atomic add — progress reporting
/// stays off the dispatch hot path. Readers (a status thread, a test)
/// observe a count that lags at most one in-flight chunk per worker and
/// lands exactly on the completed-job total when the sweep finishes or
/// is cancelled.
#[derive(Debug, Default)]
pub struct SweepProgress {
    done: AtomicU64,
}

impl SweepProgress {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `jobs` more completed jobs (one call per flushed chunk).
    pub fn add(&self, jobs: u64) {
        self.done.fetch_add(jobs, Ordering::Relaxed);
    }

    /// Jobs completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Reset to zero (between sweeps sharing one counter).
    pub fn reset(&self) {
        self.done.store(0, Ordering::Relaxed);
    }
}

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            // tidy-allow: determinism — wall-clock read is reporting-only; elapsed time never feeds results or cache keys.
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Timing + cache statistics for one experiment run, as reported by the
/// `run-all` driver and the sweep benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Registry name of the experiment (e.g. `"table2"`).
    pub name: String,
    /// Wall-clock for the whole experiment, in seconds.
    pub wall_secs: f64,
    /// Total sweep jobs the experiment submitted.
    pub jobs: u64,
    /// Jobs answered from the cache.
    pub cache_hits: u64,
}

impl ExperimentTiming {
    /// Jobs executed (submitted minus cache hits).
    pub fn executed(&self) -> u64 {
        self.jobs.saturating_sub(self.cache_hits)
    }

    /// Throughput over the wall-clock interval (0 for an instant run).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.jobs as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Fraction of jobs answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs > 0 {
            self.cache_hits as f64 / self.jobs as f64
        } else {
            0.0
        }
    }
}

/// Render a timing table (fixed-width, deterministic layout) with a
/// totals row — the summary `axcc run-all` prints after the suite.
pub fn render_timings(timings: &[ExperimentTiming]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>7} {:>7} {:>9} {:>9}\n",
        "experiment", "wall [s]", "jobs", "hits", "hit rate", "jobs/s"
    ));
    let mut total_wall = 0.0;
    let mut total_jobs = 0u64;
    let mut total_hits = 0u64;
    for t in timings {
        total_wall += t.wall_secs;
        total_jobs += t.jobs;
        total_hits += t.cache_hits;
        out.push_str(&format!(
            "{:<14} {:>9.2} {:>7} {:>7} {:>8.1}% {:>9.1}\n",
            t.name,
            t.wall_secs,
            t.jobs,
            t.cache_hits,
            100.0 * t.hit_rate(),
            t.jobs_per_sec()
        ));
    }
    let total = ExperimentTiming {
        name: "total".to_string(),
        wall_secs: total_wall,
        jobs: total_jobs,
        cache_hits: total_hits,
    };
    out.push_str(&format!(
        "{:<14} {:>9.2} {:>7} {:>7} {:>8.1}% {:>9.1}\n",
        total.name,
        total.wall_secs,
        total.jobs,
        total.cache_hits,
        100.0 * total.hit_rate(),
        total.jobs_per_sec()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let t = ExperimentTiming {
            name: "x".into(),
            wall_secs: 0.0,
            jobs: 0,
            cache_hits: 0,
        };
        assert_eq!(t.jobs_per_sec(), 0.0);
        assert_eq!(t.hit_rate(), 0.0);
        assert_eq!(t.executed(), 0);
    }

    #[test]
    fn timing_table_has_totals_row() {
        let rows = vec![
            ExperimentTiming {
                name: "table1".into(),
                wall_secs: 1.0,
                jobs: 10,
                cache_hits: 5,
            },
            ExperimentTiming {
                name: "table2".into(),
                wall_secs: 3.0,
                jobs: 30,
                cache_hits: 15,
            },
        ];
        let table = render_timings(&rows);
        assert!(table.contains("table1"));
        assert!(table.lines().last().unwrap().starts_with("total"));
        assert!(table.contains("50.0%"));
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
