//! The ordered worker pool.
//!
//! Workers *claim* jobs dynamically (an atomic cursor over the input
//! slice) but every result is tagged with its submission index and the
//! pool reassembles the output strictly in that order. Scheduling is
//! therefore free to be nondeterministic — which worker runs which job,
//! and in what order jobs finish, varies run to run — while the returned
//! `Vec` is a pure function of the inputs. Combined with the workspace
//! invariant that every job body is itself deterministic (no wall-clock,
//! no ambient randomness — enforced by `axcc-tidy`), a parallel sweep is
//! bit-identical to a serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Run `f` over every input and return the outputs in input order.
///
/// With `workers <= 1` (or fewer than two inputs) no thread is spawned
/// and the jobs run inline on the caller's thread — the serial reference
/// path that the parallel path must reproduce bit-for-bit.
///
/// If a job panics, the panic is re-raised on the caller's thread after
/// the remaining workers drain.
pub fn run_ordered<I, T, F>(workers: usize, inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if workers <= 1 || inputs.len() <= 1 {
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let n_workers = workers.min(inputs.len());
    // Each worker returns its locally collected (index, result) pairs;
    // after the scope joins, a sort by unique submission index restores
    // deterministic order regardless of how the claims interleaved.
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(inputs.len());
    let panicked = thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            // tidy-allow: determinism — worker threads only *claim* jobs; results are reordered by submission index below, so output is schedule-independent.
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(idx) else {
                            break;
                        };
                        local.push((idx, f(idx, input)));
                    }
                    local
                })
            })
            .collect();
        let mut panic_payload = None;
        for handle in handles {
            match handle.join() {
                Ok(local) => tagged.extend(local),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        panic_payload
    });
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }

    tagged.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert_eq!(tagged.len(), inputs.len());
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order() {
        let inputs: Vec<usize> = (0..97).collect();
        let serial = run_ordered(1, &inputs, |i, &x| (i, x * x));
        let parallel = run_ordered(8, &inputs, |i, &x| (i, x * x));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered::<u32, u32, _>(4, &empty, |_, &x| x).is_empty());
        assert_eq!(run_ordered(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = run_ordered(16, &[1u32, 2, 3], |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panic_propagates() {
        let inputs: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_ordered(4, &inputs, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
