//! The ordered worker pool.
//!
//! Workers *claim* work dynamically — an atomic cursor over the job
//! index space — but every result lands in a preallocated slot keyed by
//! its submission index, so the returned `Vec` is a pure function of the
//! inputs. Scheduling is therefore free to be nondeterministic (which
//! worker runs which job, and in what order chunks finish, varies run to
//! run) while the output is not. Combined with the workspace invariant
//! that every job body is itself deterministic (no wall-clock, no
//! ambient randomness — enforced by `axcc-tidy`), a parallel sweep is
//! bit-identical to a serial one.
//!
//! Claims are **chunked**: the cursor steps by a whole contiguous chunk
//! of jobs, so for a sweep of `n` jobs the claim traffic is `n / chunk`
//! atomic operations and `n / chunk` slot-vector lock acquisitions, not
//! `n` of each. Per-job locks or channel round-trips in these dispatch
//! loops are a flagged regression (`axcc-tidy`'s lock-discipline family);
//! results are flushed once per chunk via [`store_chunk`].
//!
//! Cancellation follows the same discipline: a raised
//! [`CancelSignal`](crate::cancel::CancelSignal) stops workers from
//! *claiming* further chunks (and the chunk processor from starting
//! further jobs within a claimed chunk), but started jobs always run to
//! completion, so an interrupted pool reports "n of m completed" rather
//! than tearing down mid-result.

use crate::cancel::CancelSignal;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;

/// Upper clamp on automatic chunk sizes: past this, bigger chunks no
/// longer reduce measurable claim traffic but do worsen tail imbalance.
const MAX_AUTO_CHUNK: usize = 8192;

/// Chunks-per-worker factor for automatic sizing: eight claims per
/// worker amortizes the cursor + flush cost to noise while leaving
/// enough chunks for the fastest worker to steal the tail.
const CHUNKS_PER_WORKER: usize = 8;

/// The default chunk size for `jobs` jobs over `workers` workers:
/// `max(1, jobs / (8·workers))`, clamped to [`1, 8192`].
pub fn default_chunk_size(jobs: usize, workers: usize) -> usize {
    (jobs / (CHUNKS_PER_WORKER * workers.max(1))).clamp(1, MAX_AUTO_CHUNK)
}

/// Run `f` over every input and return the outputs in input order.
///
/// With `workers <= 1` (or fewer than two inputs) no thread is spawned
/// and the jobs run inline on the caller's thread — the serial reference
/// path that the parallel path must reproduce bit-for-bit.
///
/// If a job panics, the panic is re-raised on the caller's thread after
/// the remaining workers drain.
pub fn run_ordered<I, T, F>(workers: usize, inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    // The Err arm is unreachable without a signal; satisfy the type
    // without panicking.
    run_ordered_cancellable(workers, inputs, f, None).unwrap_or_default()
}

/// [`run_ordered`] with an optional cancellation signal.
///
/// The signal is polled before every claim. When it is raised, workers
/// finish the jobs they already claimed, stop claiming, and the call
/// returns `Err(completed_count)` — never a partial `Vec`.
///
/// This is the per-job (chunk size 1) entry point, for callers whose
/// closure wants the input reference handed to it; sweeps with their own
/// chunk processing go through [`run_chunked_cancellable`] directly.
pub fn run_ordered_cancellable<I, T, F>(
    workers: usize,
    inputs: &[I],
    f: F,
    cancel: Option<&CancelSignal>,
) -> Result<Vec<T>, usize>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_chunked_cancellable(
        workers,
        inputs.len(),
        1,
        |range, out| {
            for idx in range {
                out.push(f(idx, &inputs[idx]));
            }
        },
        cancel,
    )
}

/// Run `process` over the job index space `0..jobs` in contiguous chunks
/// of `chunk_size`, returning all results in submission order.
///
/// `process(range, out)` must evaluate the jobs in `range` in ascending
/// index order, pushing exactly one result per job onto `out` (handed in
/// empty); it may stop early — pushing fewer — only once the cancel
/// signal is raised, and the jobs it did push must be the leading prefix
/// of the range. Results land in a preallocated slot vector, flushed
/// once per chunk, so the parallel output is bit-identical to the serial
/// one for any worker count and any chunk size.
///
/// Returns `Err(completed_count)` if the signal stopped the sweep short.
pub fn run_chunked_cancellable<T, F>(
    workers: usize,
    jobs: usize,
    chunk_size: usize,
    process: F,
    cancel: Option<&CancelSignal>,
) -> Result<Vec<T>, usize>
where
    T: Send,
    F: Fn(Range<usize>, &mut Vec<T>) + Sync,
{
    let chunk = chunk_size.max(1);

    if workers <= 1 || jobs <= 1 {
        // Serial reference path: no threads, no slot vector, no locks.
        let mut out = Vec::with_capacity(jobs);
        let mut start = 0;
        while start < jobs {
            if cancel.is_some_and(CancelSignal::is_raised) {
                return Err(out.len());
            }
            let end = (start + chunk).min(jobs);
            let before = out.len();
            process(start..end, &mut out);
            if out.len() - before < end - start {
                // The processor stopped mid-chunk (cancel raised inside).
                return Err(out.len());
            }
            start = end;
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let short_flag = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    let n_workers = workers.min(jobs.div_ceil(chunk));
    let panicked = thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<T> = Vec::new();
                    loop {
                        if cancel.is_some_and(CancelSignal::is_raised) {
                            break;
                        }
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs {
                            break;
                        }
                        let end = (start + chunk).min(jobs);
                        local.clear();
                        process(start..end, &mut local);
                        let short = local.len() < end - start;
                        store_chunk(&slots, start, &mut local);
                        if short {
                            // Cancelled mid-chunk: the flushed prefix
                            // counts as completed, nothing further starts.
                            short_flag.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                })
            })
            .collect();
        let mut panic_payload = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic_payload = Some(payload);
            }
        }
        panic_payload
    });
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }

    let filled = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
    // A sweep can only come up short if a chunk was cut mid-flight or the
    // signal stopped claims; otherwise every slot is provably filled and
    // the O(jobs) completion scan is skipped.
    if short_flag.load(Ordering::Relaxed) || cancel.is_some_and(CancelSignal::is_raised) {
        let completed = filled.iter().filter(|s| s.is_some()).count();
        if completed < jobs {
            return Err(completed);
        }
    }
    let mut out = Vec::with_capacity(jobs);
    out.extend(filled.into_iter().flatten());
    Ok(out)
}

/// Flush one chunk's results into their submission-order slots: a single
/// lock acquisition per *chunk*. This helper is deliberately outside the
/// claim loop — locking per job in a dispatch loop is the regression the
/// lock-discipline tidy family flags.
fn store_chunk<T>(slots: &Mutex<Vec<Option<T>>>, start: usize, results: &mut Vec<T>) {
    let mut guard: MutexGuard<'_, Vec<Option<T>>> =
        slots.lock().unwrap_or_else(PoisonError::into_inner);
    // One slice bounds check for the whole chunk, not one per job.
    let lane = &mut guard[start..start + results.len()];
    for (slot, value) in lane.iter_mut().zip(results.drain(..)) {
        *slot = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn parallel_matches_serial_order() {
        let inputs: Vec<usize> = (0..97).collect();
        let serial = run_ordered(1, &inputs, |i, &x| (i, x * x));
        let parallel = run_ordered(8, &inputs, |i, &x| (i, x * x));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered::<u32, u32, _>(4, &empty, |_, &x| x).is_empty());
        assert_eq!(run_ordered(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = run_ordered(16, &[1u32, 2, 3], |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panic_propagates() {
        let inputs: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_ordered(4, &inputs, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn raised_signal_stops_serial_claims() {
        let inputs: Vec<usize> = (0..10).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let sig = CancelSignal::from_flag(flag.clone());
        let completed = run_ordered_cancellable(
            1,
            &inputs,
            |_, &x| {
                if x == 2 {
                    flag.store(true, Ordering::SeqCst);
                }
                x
            },
            Some(&sig),
        )
        .unwrap_err();
        // Jobs 0..=2 ran (the flag went up inside job 2); job 3 was never claimed.
        assert_eq!(completed, 3);
    }

    #[test]
    fn raised_signal_stops_parallel_claims_without_partial_output() {
        let inputs: Vec<usize> = (0..64).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let sig = CancelSignal::from_flag(flag.clone());
        let result = run_ordered_cancellable(
            4,
            &inputs,
            |_, &x| {
                if x == 8 {
                    flag.store(true, Ordering::SeqCst);
                }
                x
            },
            Some(&sig),
        );
        let completed = result.unwrap_err();
        assert!(completed < inputs.len());
        // In-flight jobs finished: the job that raised the flag completed.
        assert!(completed >= 1);
    }

    #[test]
    fn unraised_signal_changes_nothing() {
        let inputs: Vec<usize> = (0..20).collect();
        let sig = CancelSignal::from_fn(|| false);
        let out = run_ordered_cancellable(4, &inputs, |_, &x| x * 2, Some(&sig)).unwrap();
        assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn signal_raised_before_start_completes_zero() {
        let inputs: Vec<usize> = (0..5).collect();
        let sig = CancelSignal::from_fn(|| true);
        assert_eq!(
            run_ordered_cancellable(1, &inputs, |_, &x| x, Some(&sig)).unwrap_err(),
            0
        );
    }

    /// Reference chunk processor: push each job's value in range order.
    fn square_range(range: Range<usize>, out: &mut Vec<usize>) {
        for idx in range {
            out.push(idx * idx);
        }
    }

    #[test]
    fn chunked_output_is_identical_across_worker_and_chunk_counts() {
        let jobs = 103;
        let reference = run_chunked_cancellable(1, jobs, 1, square_range, None).unwrap();
        for workers in [1, 2, 3, 8] {
            // Chunk 1, chunk larger than jobs, and ragged tails in between.
            for chunk in [1, 2, 7, 64, 103, 1000] {
                let out =
                    run_chunked_cancellable(workers, jobs, chunk, square_range, None).unwrap();
                assert_eq!(out, reference, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunk_size_zero_is_clamped_to_one() {
        let out = run_chunked_cancellable(4, 10, 0, square_range, None).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn mid_chunk_cancellation_flushes_the_prefix() {
        // One worker, one chunk of 8: the processor stops after 3 jobs.
        let flag = Arc::new(AtomicBool::new(false));
        let sig = CancelSignal::from_flag(flag.clone());
        let completed = run_chunked_cancellable(
            2,
            8,
            8,
            |range, out: &mut Vec<usize>| {
                for idx in range {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if idx == 2 {
                        flag.store(true, Ordering::SeqCst);
                    }
                    out.push(idx);
                }
            },
            Some(&sig),
        )
        .unwrap_err();
        // Jobs 0..=2 completed and were flushed despite the mid-chunk stop.
        assert_eq!(completed, 3);
    }

    #[test]
    fn default_chunk_size_tracks_jobs_and_workers() {
        assert_eq!(default_chunk_size(0, 4), 1);
        assert_eq!(default_chunk_size(24, 4), 1);
        assert_eq!(default_chunk_size(3200, 4), 100);
        assert_eq!(default_chunk_size(100_000, 4), 3125);
        // Clamped above…
        assert_eq!(default_chunk_size(10_000_000, 4), MAX_AUTO_CHUNK);
        // …and `workers == 0` does not divide by zero.
        assert_eq!(default_chunk_size(80, 0), 10);
    }
}
