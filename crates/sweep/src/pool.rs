//! The ordered worker pool.
//!
//! Workers *claim* jobs dynamically (an atomic cursor over the input
//! slice) but every result is tagged with its submission index and the
//! pool reassembles the output strictly in that order. Scheduling is
//! therefore free to be nondeterministic — which worker runs which job,
//! and in what order jobs finish, varies run to run — while the returned
//! `Vec` is a pure function of the inputs. Combined with the workspace
//! invariant that every job body is itself deterministic (no wall-clock,
//! no ambient randomness — enforced by `axcc-tidy`), a parallel sweep is
//! bit-identical to a serial one.
//!
//! Cancellation follows the same discipline: a raised
//! [`CancelSignal`](crate::cancel::CancelSignal) stops workers from
//! *claiming* further jobs, but claimed jobs always run to completion, so
//! an interrupted pool reports "n of m completed" rather than tearing
//! down mid-result.

use crate::cancel::CancelSignal;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Run `f` over every input and return the outputs in input order.
///
/// With `workers <= 1` (or fewer than two inputs) no thread is spawned
/// and the jobs run inline on the caller's thread — the serial reference
/// path that the parallel path must reproduce bit-for-bit.
///
/// If a job panics, the panic is re-raised on the caller's thread after
/// the remaining workers drain.
pub fn run_ordered<I, T, F>(workers: usize, inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    // The Err arm is unreachable without a signal; satisfy the type
    // without panicking.
    run_ordered_cancellable(workers, inputs, f, None).unwrap_or_default()
}

/// [`run_ordered`] with an optional cancellation signal.
///
/// The signal is polled before every job claim (on the serial path,
/// before every job). When it is raised, workers finish the jobs they
/// already claimed, stop claiming, and the call returns
/// `Err(completed_count)` — never a partial `Vec`.
pub fn run_ordered_cancellable<I, T, F>(
    workers: usize,
    inputs: &[I],
    f: F,
    cancel: Option<&CancelSignal>,
) -> Result<Vec<T>, usize>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let stopped = |done: usize| -> bool {
        done < inputs.len() && cancel.is_some_and(CancelSignal::is_raised)
    };

    if workers <= 1 || inputs.len() <= 1 {
        let mut out = Vec::with_capacity(inputs.len());
        for (i, x) in inputs.iter().enumerate() {
            if stopped(i) {
                return Err(i);
            }
            out.push(f(i, x));
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let n_workers = workers.min(inputs.len());
    // Each worker returns its locally collected (index, result) pairs;
    // after the scope joins, a sort by unique submission index restores
    // deterministic order regardless of how the claims interleaved.
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(inputs.len());
    let panicked = thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if cancel.is_some_and(CancelSignal::is_raised) {
                            break;
                        }
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(idx) else {
                            break;
                        };
                        local.push((idx, f(idx, input)));
                    }
                    local
                })
            })
            .collect();
        let mut panic_payload = None;
        for handle in handles {
            match handle.join() {
                Ok(local) => tagged.extend(local),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        panic_payload
    });
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }

    if tagged.len() < inputs.len() {
        return Err(tagged.len());
    }
    tagged.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert_eq!(tagged.len(), inputs.len());
    Ok(tagged.into_iter().map(|(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn parallel_matches_serial_order() {
        let inputs: Vec<usize> = (0..97).collect();
        let serial = run_ordered(1, &inputs, |i, &x| (i, x * x));
        let parallel = run_ordered(8, &inputs, |i, &x| (i, x * x));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered::<u32, u32, _>(4, &empty, |_, &x| x).is_empty());
        assert_eq!(run_ordered(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = run_ordered(16, &[1u32, 2, 3], |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panic_propagates() {
        let inputs: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_ordered(4, &inputs, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn raised_signal_stops_serial_claims() {
        let inputs: Vec<usize> = (0..10).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let sig = CancelSignal::from_flag(flag.clone());
        let completed = run_ordered_cancellable(
            1,
            &inputs,
            |_, &x| {
                if x == 2 {
                    flag.store(true, Ordering::SeqCst);
                }
                x
            },
            Some(&sig),
        )
        .unwrap_err();
        // Jobs 0..=2 ran (the flag went up inside job 2); job 3 was never claimed.
        assert_eq!(completed, 3);
    }

    #[test]
    fn raised_signal_stops_parallel_claims_without_partial_output() {
        let inputs: Vec<usize> = (0..64).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let sig = CancelSignal::from_flag(flag.clone());
        let result = run_ordered_cancellable(
            4,
            &inputs,
            |_, &x| {
                if x == 8 {
                    flag.store(true, Ordering::SeqCst);
                }
                x
            },
            Some(&sig),
        );
        let completed = result.unwrap_err();
        assert!(completed < inputs.len());
        // In-flight jobs finished: the job that raised the flag completed.
        assert!(completed >= 1);
    }

    #[test]
    fn unraised_signal_changes_nothing() {
        let inputs: Vec<usize> = (0..20).collect();
        let sig = CancelSignal::from_fn(|| false);
        let out = run_ordered_cancellable(4, &inputs, |_, &x| x * 2, Some(&sig)).unwrap();
        assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn signal_raised_before_start_completes_zero() {
        let inputs: Vec<usize> = (0..5).collect();
        let sig = CancelSignal::from_fn(|| true);
        assert_eq!(
            run_ordered_cancellable(1, &inputs, |_, &x| x, Some(&sig)).unwrap_err(),
            0
        );
    }
}
