//! # axcc-sweep — deterministic parallel experiment orchestration
//!
//! Every artifact this workspace reproduces from *An Axiomatic Approach to
//! Congestion Control* (HotNets-XVI 2017) — Table 1, the Table 2 n × BW
//! grid, Figure 1's Pareto frontier, the theorem checks, and the
//! shootout/gauntlet/ablation sweeps — is an embarrassingly parallel grid
//! of independent scenario evaluations. This crate is the one engine that
//! fans those evaluations out across cores *without giving up the
//! workspace determinism invariant*: results are collected in submission
//! order, so a parallel run is bit-identical to a serial one, and a
//! content-addressed cache never re-runs a scenario it has already scored.
//!
//! The moving parts:
//!
//! * [`SweepJob`] — one unit of work: scenario + protocol + metric budget
//!   in, a [`Cacheable`](record::Cacheable) scored result out. Jobs
//!   fingerprint themselves ([`axcc_core::fingerprint`]) so equal inputs
//!   share a cache address.
//! * [`pool`] — a fixed-size `std::thread` worker pool. Workers claim
//!   contiguous *chunks* of jobs off one atomic cursor (no per-job locks
//!   or channel round-trips) and flush each chunk into a preallocated
//!   slot vector, so results are reassembled by submission index — which
//!   is why parallel output is byte-identical to serial output (see
//!   DESIGN.md, "The sweep subsystem" and §9).
//! * [`cache`] — content-addressed in-memory + optional on-disk result
//!   store keyed by the 128-bit job digest. The on-disk layout is
//!   sharded and log-structured: [`cache::SHARD_COUNT`] append-only
//!   segment files indexed in memory on open, so a 10⁵-job sweep creates
//!   O(shards) files, not O(jobs). Record bodies use the exact
//!   bit-pattern [`record::Record`] codec, not JSON, so ±∞ and NaN
//!   scores round-trip losslessly.
//! * [`progress`] — wall-clock / jobs-per-second / hit-rate reporting.
//!   Timing is *reporting only*; it never feeds back into results, which
//!   is the contract under which this crate's `Instant::now` suppressions
//!   are justified.
//! * [`cancel`] — cooperative cancellation. A [`CancelSignal`] stops a
//!   runner from claiming further jobs (in-flight jobs finish and reach
//!   the cache); the sweep then unwinds with a typed [`Interrupted`]
//!   payload rather than returning a partial `Vec`. Cancellation affects
//!   *whether* a sweep completes, never *what* a completed sweep returns.
//!
//! This is the only crate in the workspace where spawning threads is
//! policy-allowed by `axcc-tidy`; everywhere else thread use remains a
//! determinism violation.

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub mod cache;
pub mod cancel;
pub mod pool;
pub mod progress;
pub mod record;
pub mod runner;

pub use cache::{CacheStats, ResultCache, ShardStats, SHARD_COUNT};
pub use cancel::{interrupted_payload, CancelSignal, Interrupted};
pub use pool::default_chunk_size;
pub use progress::{ExperimentTiming, Stopwatch, SweepProgress};
pub use record::{Cacheable, Record, RecordReader};
pub use runner::{
    host_parallelism, EvalMode, InterruptHook, SweepJob, SweepRunner, SweepStats, ENGINE_REVISION,
};
