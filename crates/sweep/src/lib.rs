//! # axcc-sweep — deterministic parallel experiment orchestration
//!
//! Every artifact this workspace reproduces from *An Axiomatic Approach to
//! Congestion Control* (HotNets-XVI 2017) — Table 1, the Table 2 n × BW
//! grid, Figure 1's Pareto frontier, the theorem checks, and the
//! shootout/gauntlet/ablation sweeps — is an embarrassingly parallel grid
//! of independent scenario evaluations. This crate is the one engine that
//! fans those evaluations out across cores *without giving up the
//! workspace determinism invariant*: results are collected in submission
//! order, so a parallel run is bit-identical to a serial one, and a
//! content-addressed cache never re-runs a scenario it has already scored.
//!
//! The moving parts:
//!
//! * [`SweepJob`] — one unit of work: scenario + protocol + metric budget
//!   in, a [`Cacheable`](record::Cacheable) scored result out. Jobs
//!   fingerprint themselves ([`axcc_core::fingerprint`]) so equal inputs
//!   share a cache address.
//! * [`pool`] — a fixed-size `std::thread` worker pool. Workers race to
//!   *claim* jobs but results are reassembled by submission index, which
//!   is why parallel output is byte-identical to serial output (see
//!   DESIGN.md, "The sweep subsystem").
//! * [`cache`] — content-addressed in-memory + optional on-disk result
//!   store keyed by the 128-bit job digest. The on-disk format is the
//!   exact bit-pattern [`record::Record`] codec, not JSON, so ±∞ and NaN
//!   scores round-trip losslessly.
//! * [`progress`] — wall-clock / jobs-per-second / hit-rate reporting.
//!   Timing is *reporting only*; it never feeds back into results, which
//!   is the contract under which this crate's `Instant::now` suppressions
//!   are justified.
//! * [`cancel`] — cooperative cancellation. A [`CancelSignal`] stops a
//!   runner from claiming further jobs (in-flight jobs finish and reach
//!   the cache); the sweep then unwinds with a typed [`Interrupted`]
//!   payload rather than returning a partial `Vec`. Cancellation affects
//!   *whether* a sweep completes, never *what* a completed sweep returns.
//!
//! This is the only crate in the workspace where spawning threads is
//! policy-allowed by `axcc-tidy`; everywhere else thread use remains a
//! determinism violation.

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub mod cache;
pub mod cancel;
pub mod pool;
pub mod progress;
pub mod record;
pub mod runner;

pub use cache::ResultCache;
pub use cancel::{interrupted_payload, CancelSignal, Interrupted};
pub use progress::{ExperimentTiming, Stopwatch};
pub use record::{Cacheable, Record, RecordReader};
pub use runner::{EvalMode, InterruptHook, SweepJob, SweepRunner, SweepStats, ENGINE_REVISION};
