//! Cooperative sweep cancellation.
//!
//! A [`CancelSignal`] is a cheap, thread-safe predicate ("should this
//! sweep stop claiming new jobs?") that a [`SweepRunner`] polls before
//! every job claim. Raising it never corrupts results: in-flight jobs run
//! to completion (and their results are written through to the cache, so
//! nothing computed is lost), no further jobs start, and the sweep then
//! *unwinds* with an [`Interrupted`] payload instead of returning — a
//! cancelled sweep can never hand back a partial `Vec` that a caller
//! might mistake for a full one. The two sanctioned recipients of that
//! unwind are:
//!
//! * the CLI's SIGINT path, whose interrupt hook prints a partial report
//!   and exits the process before the unwind propagates; and
//! * the `axcc-serve` worker's job boundary, whose `catch_unwind`
//!   downcasts the payload back to [`Interrupted`] and turns it into a
//!   typed `timeout` response.
//!
//! Determinism contract: cancellation affects *whether* a sweep
//! completes, never *what* a completed sweep returns. Completed sweeps
//! remain bit-identical to serial uncached runs.
//!
//! [`SweepRunner`]: crate::SweepRunner

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation predicate polled between job claims.
#[derive(Clone)]
pub struct CancelSignal {
    probe: Arc<dyn Fn() -> bool + Send + Sync>,
}

impl CancelSignal {
    /// A signal backed by an arbitrary predicate (e.g. "the SIGINT latch
    /// fired" or "this request's deadline has passed"). The predicate is
    /// polled once per job claim, so it should be cheap — an atomic load
    /// or a clock read.
    pub fn from_fn<F: Fn() -> bool + Send + Sync + 'static>(probe: F) -> Self {
        CancelSignal {
            probe: Arc::new(probe),
        }
    }

    /// A signal backed by a shared boolean flag.
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        CancelSignal::from_fn(move || flag.load(Ordering::SeqCst))
    }

    /// Whether cancellation has been requested.
    pub fn is_raised(&self) -> bool {
        (self.probe)()
    }
}

impl fmt::Debug for CancelSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelSignal")
            .field("raised", &self.is_raised())
            .finish()
    }
}

/// A sweep was cancelled after `completed` of `total` jobs. Everything
/// completed (and everything answered from the cache) was already written
/// through to the result cache before this value was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Jobs that finished (executed or answered from cache) before the
    /// sweep stopped claiming.
    pub completed: usize,
    /// Jobs the sweep was asked to run.
    pub total: usize,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep interrupted after {} of {} jobs (completed results are in the cache; \
             re-running resumes from there)",
            self.completed, self.total
        )
    }
}

impl std::error::Error for Interrupted {}

/// Unwind out of a cancelled sweep with a typed [`Interrupted`] payload.
///
/// This is the one place the sweep engine deliberately unwinds: the
/// payload is *data*, not a bug report, and the workspace's two unwind
/// boundaries (the CLI's process-exit hook having already run, or the
/// serve worker's `catch_unwind`) both know to look for it via
/// [`interrupted_payload`].
pub(crate) fn interrupt_unwind(info: Interrupted) -> ! {
    std::panic::panic_any(info)
}

/// Recover the [`Interrupted`] payload from a caught unwind, if the
/// unwind came from a cancelled sweep rather than a genuine panic.
pub fn interrupted_payload(payload: &(dyn Any + Send)) -> Option<Interrupted> {
    payload.downcast_ref::<Interrupted>().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_signal_raises() {
        let flag = Arc::new(AtomicBool::new(false));
        let sig = CancelSignal::from_flag(flag.clone());
        assert!(!sig.is_raised());
        flag.store(true, Ordering::SeqCst);
        assert!(sig.is_raised());
    }

    #[test]
    fn predicate_signal_polls() {
        let sig = CancelSignal::from_fn(|| true);
        assert!(sig.is_raised());
    }

    #[test]
    fn unwind_payload_round_trips() {
        let info = Interrupted {
            completed: 3,
            total: 10,
        };
        let caught = std::panic::catch_unwind(|| interrupt_unwind(info)).unwrap_err();
        assert_eq!(interrupted_payload(caught.as_ref()), Some(info));
        let other = std::panic::catch_unwind(|| panic!("real bug")).unwrap_err();
        assert_eq!(interrupted_payload(other.as_ref()), None);
    }

    #[test]
    fn display_names_progress() {
        let msg = Interrupted {
            completed: 3,
            total: 10,
        }
        .to_string();
        assert!(msg.contains("3 of 10"), "{msg}");
        assert!(msg.contains("cache"), "{msg}");
    }
}
