//! The link graph: a list of links plus per-flow paths (link-index sets).

use axcc_core::{Fingerprint, Fingerprinter, LinkParams, ScenarioError};

/// A network of links. Flows reference links by index (their *path*); a
/// single-link topology reduces exactly to the paper's model.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    links: Vec<LinkParams>,
}

impl Topology {
    /// A topology over the given links.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn new(links: Vec<LinkParams>) -> Self {
        assert!(!links.is_empty(), "topology needs at least one link");
        Topology { links }
    }

    /// The degenerate single-bottleneck topology of the paper's model.
    pub fn single(link: LinkParams) -> Self {
        Topology { links: vec![link] }
    }

    /// The classic parking lot: `k` identical links in a row. The long
    /// flow crosses all of them (`path = 0..k`); each short flow crosses
    /// one.
    pub fn parking_lot(k: usize, link: LinkParams) -> Self {
        assert!(k > 0, "parking lot needs at least one hop");
        Topology {
            links: vec![link; k],
        }
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The links.
    pub fn links(&self) -> &[LinkParams] {
        &self.links
    }

    /// Link `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range (validate paths first).
    pub fn link(&self, l: usize) -> &LinkParams {
        &self.links[l]
    }

    /// Check that a flow path is non-empty and references only links this
    /// topology has.
    pub fn validate_path(&self, path: &[usize]) -> Result<(), ScenarioError> {
        if path.is_empty() {
            return Err(ScenarioError::InvalidParameter {
                field: "path",
                value: 0.0,
                constraint: "at least one link",
            });
        }
        for &l in path {
            if l >= self.links.len() {
                return Err(ScenarioError::InvalidParameter {
                    field: "path",
                    value: l as f64,
                    constraint: "an index into the topology's link list",
                });
            }
        }
        Ok(())
    }

    /// A path's base (zero-queue) RTT: the sum of the per-link propagation
    /// floors. Out-of-range links contribute nothing — validate first.
    pub fn path_min_rtt(&self, path: &[usize]) -> f64 {
        path.iter()
            .filter_map(|&l| self.links.get(l))
            .map(LinkParams::min_rtt)
            .sum()
    }
}

impl Fingerprint for Topology {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("Topology");
        self.links.fingerprint(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop() -> LinkParams {
        LinkParams::new(1000.0, 0.05, 20.0)
    }

    #[test]
    fn parking_lot_replicates_the_hop() {
        let t = Topology::parking_lot(3, hop());
        assert_eq!(t.num_links(), 3);
        for l in 0..3 {
            assert_eq!(t.link(l), &hop());
        }
    }

    #[test]
    fn single_is_one_link() {
        assert_eq!(Topology::single(hop()).num_links(), 1);
    }

    #[test]
    fn path_validation() {
        let t = Topology::parking_lot(2, hop());
        assert_eq!(t.validate_path(&[0, 1]), Ok(()));
        assert!(t.validate_path(&[]).is_err());
        assert!(t.validate_path(&[2]).is_err());
    }

    #[test]
    fn path_min_rtt_sums_over_hops() {
        let t = Topology::parking_lot(3, hop());
        // Each hop's floor is 2Θ = 0.1 s.
        assert!((t.path_min_rtt(&[0, 1, 2]) - 0.3).abs() < 1e-12);
        assert!((t.path_min_rtt(&[1]) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_topology_rejected() {
        Topology::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hop_parking_lot_rejected() {
        Topology::parking_lot(0, hop());
    }

    #[test]
    fn fingerprint_covers_every_link() {
        let a = Topology::parking_lot(2, hop()).digest();
        let b = Topology::parking_lot(3, hop()).digest();
        let c = Topology::new(vec![hop(), LinkParams::new(500.0, 0.05, 20.0)]).digest();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Topology::parking_lot(2, hop()).digest());
    }
}
