//! Dynamic flow populations: seeded Poisson arrivals, exponential
//! lifetimes, and on/off traffic phases, expanded into plain step
//! intervals both engines consume.

use axcc_core::{Fingerprint, Fingerprinter, ScenarioError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One churned flow's activity window, in engine steps: the flow is
/// active for steps `t` with `start <= t < stop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowInterval {
    /// First active step.
    pub start: u64,
    /// First step after the flow has departed (exclusive).
    pub stop: u64,
}

impl FlowInterval {
    /// Whether the flow is active at step `t`.
    pub fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.stop
    }

    /// Number of active steps.
    pub fn len(&self) -> u64 {
        self.stop.saturating_sub(self.start)
    }

    /// Whether the interval is empty (never the case for expanded plans).
    pub fn is_empty(&self) -> bool {
        self.stop <= self.start
    }
}

/// On/off traffic phases: an arriving flow alternates `on_steps` of
/// activity with `off_steps` of silence until its lifetime is spent. Each
/// on-phase becomes its own [`FlowInterval`] (fresh-connection semantics —
/// the protocol restarts from its initial window, like a web user's
/// successive transfers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnOffPhases {
    /// Steps of each active phase (at least 1).
    pub on_steps: u64,
    /// Steps of silence between active phases (at least 1).
    pub off_steps: u64,
}

/// A deterministic plan of flow arrivals and departures.
///
/// Arrivals form a Poisson process of rate `arrival_rate` (expected
/// arrivals per step); each arrival's lifetime is exponential with mean
/// `mean_lifetime` steps. A concurrency cap drops arrivals that would
/// exceed `max_concurrent` simultaneously-planned flows (the RNG draws
/// are consumed either way, so the cap never shifts later arrivals). An
/// optional [`OnOffPhases`] splits each lifetime into on/off bursts.
///
/// All randomness flows through one `ChaCha8Rng` seeded from `seed`:
/// expansion is a pure function of the plan's fields, and every field is
/// fingerprinted so the sweep cache distinguishes any change.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPlan {
    /// RNG seed for the arrival/lifetime stream.
    pub seed: u64,
    /// Expected arrivals per step (> 0, finite).
    pub arrival_rate: f64,
    /// Mean flow lifetime in steps (> 0, finite).
    pub mean_lifetime: f64,
    /// Maximum simultaneously-planned churned flows (>= 1).
    pub max_concurrent: usize,
    /// Optional on/off phase split of each lifetime.
    pub on_off: Option<OnOffPhases>,
}

impl ChurnPlan {
    /// A plan with the given Poisson arrival rate (arrivals/step) and mean
    /// exponential lifetime (steps); seed 0, cap 8, no on/off phases.
    pub fn poisson(arrival_rate: f64, mean_lifetime: f64) -> Self {
        ChurnPlan {
            seed: 0,
            arrival_rate,
            mean_lifetime,
            max_concurrent: 8,
            on_off: None,
        }
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the concurrency cap.
    pub fn max_concurrent(mut self, cap: usize) -> Self {
        self.max_concurrent = cap;
        self
    }

    /// Split each flow's lifetime into on/off phases.
    pub fn on_off(mut self, on_steps: u64, off_steps: u64) -> Self {
        self.on_off = Some(OnOffPhases {
            on_steps,
            off_steps,
        });
        self
    }

    /// Check the plan's parameters.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(ScenarioError::InvalidParameter {
                field: "arrival_rate",
                value: self.arrival_rate,
                constraint: "positive and finite",
            });
        }
        if !(self.mean_lifetime.is_finite() && self.mean_lifetime > 0.0) {
            return Err(ScenarioError::InvalidParameter {
                field: "mean_lifetime",
                value: self.mean_lifetime,
                constraint: "positive and finite",
            });
        }
        if self.max_concurrent == 0 {
            return Err(ScenarioError::InvalidParameter {
                field: "max_concurrent",
                value: 0.0,
                constraint: "at least 1",
            });
        }
        if let Some(p) = self.on_off {
            if p.on_steps == 0 || p.off_steps == 0 {
                return Err(ScenarioError::InvalidParameter {
                    field: "on_off",
                    value: 0.0,
                    constraint: "on and off phases of at least one step",
                });
            }
        }
        Ok(())
    }

    /// Expand the plan over a run of `horizon` steps into concrete flow
    /// intervals, sorted by start step. Every interval is non-empty and
    /// clipped to `[0, horizon)`.
    pub fn try_expand(&self, horizon: u64) -> Result<Vec<FlowInterval>, ScenarioError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut intervals: Vec<FlowInterval> = Vec::new();
        let mut t = 0.0_f64;
        loop {
            // Exponential inter-arrival and lifetime draws. Both draws are
            // always consumed — even for arrivals the concurrency cap then
            // drops — so the cap cannot shift later arrivals.
            let u1: f64 = rng.gen::<f64>();
            t += -(1.0 - u1).ln() / self.arrival_rate;
            if t >= horizon as f64 {
                break;
            }
            let u2: f64 = rng.gen::<f64>();
            let life = -(1.0 - u2).ln() * self.mean_lifetime;

            let start = t.floor() as u64;
            let stop = ((t + life).ceil() as u64).clamp(start + 1, horizon.max(start + 1));
            let lifetime = FlowInterval {
                start,
                stop: stop.min(horizon),
            };
            if lifetime.is_empty() {
                continue;
            }
            let active = intervals
                .iter()
                .filter(|iv| iv.stop > lifetime.start)
                .count();
            if active >= self.max_concurrent {
                continue;
            }
            match self.on_off {
                None => intervals.push(lifetime),
                Some(p) => {
                    // Walk the lifetime in on/off strides; each on-phase is
                    // its own (clipped, non-empty) interval.
                    let mut s = lifetime.start;
                    while s < lifetime.stop {
                        let phase = FlowInterval {
                            start: s,
                            stop: (s + p.on_steps).min(lifetime.stop),
                        };
                        if !phase.is_empty() {
                            intervals.push(phase);
                        }
                        s = s.saturating_add(p.on_steps).saturating_add(p.off_steps);
                    }
                }
            }
        }
        intervals.sort_by_key(|iv| (iv.start, iv.stop));
        Ok(intervals)
    }

    /// Expand the plan (panicking façade over [`ChurnPlan::try_expand`]).
    ///
    /// # Panics
    ///
    /// Panics (with the [`ScenarioError`] message) on invalid parameters.
    pub fn expand(&self, horizon: u64) -> Vec<FlowInterval> {
        // tidy-allow: panic-freedom — documented panicking façade over try_expand; fallible callers use the try_ path
        self.try_expand(horizon).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Fingerprint for OnOffPhases {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("OnOffPhases");
        fp.write_u64(self.on_steps);
        fp.write_u64(self.off_steps);
    }
}

impl Fingerprint for FlowInterval {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("FlowInterval");
        fp.write_u64(self.start);
        fp.write_u64(self.stop);
    }
}

impl Fingerprint for ChurnPlan {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("ChurnPlan");
        fp.write_u64(self.seed);
        fp.write_f64(self.arrival_rate);
        fp.write_f64(self.mean_lifetime);
        fp.write_usize(self.max_concurrent);
        self.on_off.fingerprint(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChurnPlan {
        ChurnPlan::poisson(0.01, 300.0).seed(7)
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        assert_eq!(plan().try_expand(4000), plan().try_expand(4000));
        assert_ne!(
            plan().try_expand(4000).unwrap(),
            plan().seed(8).try_expand(4000).unwrap()
        );
    }

    #[test]
    fn expansion_produces_arrivals_at_the_expected_scale() {
        // rate 0.01 over 4000 steps => ~40 arrivals before the cap.
        let ivs = plan().max_concurrent(usize::MAX).try_expand(4000).unwrap();
        assert!(ivs.len() > 15 && ivs.len() < 90, "arrivals: {}", ivs.len());
    }

    #[test]
    fn intervals_are_clipped_nonempty_and_sorted() {
        let ivs = plan().try_expand(2000).unwrap();
        assert!(!ivs.is_empty());
        for w in ivs.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for iv in &ivs {
            assert!(iv.start < iv.stop, "{iv:?}");
            assert!(iv.stop <= 2000, "{iv:?}");
        }
    }

    #[test]
    fn concurrency_cap_bounds_simultaneous_flows() {
        let ivs = ChurnPlan::poisson(0.5, 500.0)
            .seed(3)
            .max_concurrent(4)
            .try_expand(1000)
            .unwrap();
        for t in 0..1000 {
            let active = ivs.iter().filter(|iv| iv.contains(t)).count();
            assert!(active <= 4, "step {t}: {active} active");
        }
    }

    #[test]
    fn cap_skips_do_not_shift_later_arrivals() {
        // The capped expansion's surviving arrivals must be a subset of
        // the uncapped expansion's lifetimes (same start steps): the RNG
        // stream is identical, the cap only drops.
        let free = plan().max_concurrent(usize::MAX).try_expand(4000).unwrap();
        let capped = plan().max_concurrent(2).try_expand(4000).unwrap();
        for iv in &capped {
            assert!(free.contains(iv), "{iv:?} not in uncapped expansion");
        }
        assert!(capped.len() <= free.len());
    }

    #[test]
    fn on_off_splits_lifetimes_into_phases() {
        let base = plan().max_concurrent(usize::MAX).try_expand(4000).unwrap();
        let split = plan()
            .max_concurrent(usize::MAX)
            .on_off(50, 50)
            .try_expand(4000)
            .unwrap();
        assert!(split.len() >= base.len());
        for iv in &split {
            assert!(iv.len() <= 50, "{iv:?}");
        }
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(ChurnPlan::poisson(0.0, 300.0).try_expand(100).is_err());
        assert!(ChurnPlan::poisson(0.01, -1.0).try_expand(100).is_err());
        assert!(ChurnPlan::poisson(0.01, 300.0)
            .max_concurrent(0)
            .try_expand(100)
            .is_err());
        assert!(ChurnPlan::poisson(0.01, 300.0)
            .on_off(0, 5)
            .try_expand(100)
            .is_err());
        assert!(ChurnPlan::poisson(f64::NAN, 300.0).try_expand(100).is_err());
    }

    #[test]
    #[should_panic(expected = "arrival_rate")]
    fn expand_panics_with_the_error_message() {
        ChurnPlan::poisson(-1.0, 300.0).expand(100);
    }

    #[test]
    fn fingerprint_covers_every_field() {
        let base = plan().digest();
        assert_ne!(plan().seed(99).digest(), base);
        assert_ne!(ChurnPlan::poisson(0.02, 300.0).seed(7).digest(), base);
        assert_ne!(ChurnPlan::poisson(0.01, 301.0).seed(7).digest(), base);
        assert_ne!(plan().max_concurrent(9).digest(), base);
        assert_ne!(plan().on_off(10, 10).digest(), base);
        assert_ne!(
            plan().on_off(10, 10).digest(),
            plan().on_off(10, 11).digest()
        );
        assert_eq!(plan().digest(), plan().digest());
    }

    #[test]
    fn flow_interval_queries() {
        let iv = FlowInterval { start: 5, stop: 8 };
        assert!(!iv.contains(4));
        assert!(iv.contains(5));
        assert!(iv.contains(7));
        assert!(!iv.contains(8));
        assert_eq!(iv.len(), 3);
        assert!(!iv.is_empty());
    }
}
