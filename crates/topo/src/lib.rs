//! # axcc-topo — topologies and dynamic flow populations
//!
//! The paper evaluates every axiom on a single static FIFO bottleneck with
//! a fixed sender set. This crate supplies the two scenario dimensions the
//! repro adds on top (ROADMAP item 3):
//!
//! * [`Topology`] — a set of links and per-flow paths: a single link, the
//!   classic N-hop *parking lot* with per-hop capacity/buffer, or any
//!   heterogeneous link list. Path assignment gives senders genuinely
//!   different base RTTs and loss exposure.
//! * [`ChurnPlan`] — a dynamic flow population: deterministic seeded
//!   Poisson arrivals with exponential lifetimes, an optional on/off
//!   traffic phase split, and a concurrency cap. [`ChurnPlan::try_expand`]
//!   turns the plan into a plain list of [`FlowInterval`]s, which both
//!   engines (`axcc-fluidsim` staggered entry/exit, `axcc-packetsim`
//!   `FlowStart`/`FlowStop` events) consume without knowing anything about
//!   the stochastic model.
//!
//! Everything is deterministic per seed: all randomness flows through one
//! `ChaCha8Rng::seed_from_u64(seed)` stream, and every field of both types
//! is covered by [`Fingerprint`](axcc_core::Fingerprint) so the sweep
//! cache can key on churn scenarios.

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

mod churn;
mod topology;

pub use churn::{ChurnPlan, FlowInterval, OnOffPhases};
pub use topology::Topology;
