//! The daemon: listener, connection readers, worker pool, timekeeper,
//! and the graceful-drain state machine.
//!
//! Thread layout (all plain `std::thread`, no async runtime):
//!
//! * **accept loop** (the server thread): non-blocking `accept` polled on
//!   a short tick so a raised shutdown flag is noticed promptly; enforces
//!   the connection cap.
//! * **connection readers** (one per client): line-framed reads under a
//!   read-timeout tick (enforces the idle timeout and notices shutdown);
//!   parse, validate, answer control ops inline, and push work onto the
//!   bounded queue — shedding `overloaded` / `shutting-down` at admission.
//! * **workers** (fixed pool): pop jobs, run them under the panic
//!   boundary ([`crate::worker`]), send the response.
//! * **timekeeper**: scans in-flight deadlines; a request whose deadline
//!   passes gets a typed `timeout` response *at the deadline* and its
//!   cancellation flag raised so a multi-job experiment stops claiming
//!   between jobs. A single long evaluation cannot be preempted — the
//!   client still hears `timeout` on time; the worker's eventual result
//!   is suppressed by the per-request send-once latch.
//!
//! Every response path goes through a [`Responder`] whose atomic latch
//! guarantees exactly one response per request no matter how worker and
//! timekeeper race.
//!
//! **Drain semantics** (`shutdown` op, [`ServerHandle::trigger_shutdown`],
//! or the CLI's SIGINT hook): stop accepting, close the queue (new pushes
//! answer `shutting-down`), let workers finish the backlog, join
//! everything, report. The result cache is write-through, so "flush the
//! cache" is a property of normal operation, not a shutdown step.

use crate::protocol::{err_line, ok_line, parse_request, ErrorKind, Op, Request};
use crate::queue::{BoundedQueue, Popped, PushError};
use crate::worker::{execute, request_runner};
use axcc_sweep::ResultCache;
use serde_json::{Map, Value};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How often blocking loops wake to poll flags.
const TICK: Duration = Duration::from_millis(25);
/// How often the non-blocking accept loop polls. Much shorter than
/// [`TICK`]: this sleep is the worst-case latency a new connection's
/// first request pays, and it shows up directly in client p99.
const ACCEPT_TICK: Duration = Duration::from_millis(2);
/// How often the timekeeper scans deadlines.
const DEADLINE_SCAN: Duration = Duration::from_millis(10);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it are shed with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Maximum simultaneously connected clients; further connections are
    /// refused with an `overloaded` error line.
    pub max_connections: usize,
    /// Default per-request deadline (ms), overridable per request by
    /// `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Idle-connection timeout (ms): a connection with no complete
    /// request for this long is closed.
    pub idle_timeout_ms: u64,
    /// Persist the result cache under this directory (in-memory if
    /// `None`).
    pub cache_dir: Option<PathBuf>,
    /// Enable the `debug-panic` / `debug-sleep` test operations.
    pub debug_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_connections: 64,
            default_deadline_ms: 30_000,
            idle_timeout_ms: 60_000,
            cache_dir: None,
            debug_ops: false,
        }
    }
}

/// Counters shared across the daemon's threads (reported by the `stats`
/// op and in the final [`ServeReport`]).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    bad_requests: AtomicU64,
    invalid_scenarios: AtomicU64,
    panicked: AtomicU64,
    timed_out: AtomicU64,
    overloaded: AtomicU64,
    shed_shutdown: AtomicU64,
}

impl Counters {
    fn bump_error(&self, kind: ErrorKind) {
        match kind {
            ErrorKind::BadRequest => &self.bad_requests,
            ErrorKind::InvalidScenario => &self.invalid_scenarios,
            ErrorKind::JobPanicked => &self.panicked,
            ErrorKind::Timeout => &self.timed_out,
            ErrorKind::Overloaded => &self.overloaded,
            ErrorKind::ShuttingDown => &self.shed_shutdown,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// What the daemon did over its lifetime; returned by
/// [`ServerHandle::join`] after a drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Client connections accepted.
    pub connections: u64,
    /// Requests parsed (including ones later shed or failed).
    pub requests: u64,
    /// Jobs answered with `ok: true`.
    pub completed: u64,
    /// `bad-request` responses.
    pub bad_requests: u64,
    /// `invalid-scenario` responses.
    pub invalid_scenarios: u64,
    /// `job-panicked` responses (the daemon survived each one).
    pub panicked: u64,
    /// `timeout` responses.
    pub timed_out: u64,
    /// `overloaded` sheds.
    pub overloaded: u64,
    /// `shutting-down` sheds during the drain.
    pub shed_shutdown: u64,
    /// Evaluations answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Evaluations actually executed.
    pub executed: u64,
}

impl ServeReport {
    /// Render the post-drain summary the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "served {} request(s) over {} connection(s): {} ok, {} bad-request, \
             {} invalid-scenario, {} panicked, {} timed out, {} overloaded, \
             {} shed in drain; cache {} hit(s) / {} executed",
            self.requests,
            self.connections,
            self.completed,
            self.bad_requests,
            self.invalid_scenarios,
            self.panicked,
            self.timed_out,
            self.overloaded,
            self.shed_shutdown,
            self.cache_hits,
            self.executed,
        )
    }
}

/// Exactly-once response channel for one request. Worker and timekeeper
/// may race to answer; the atomic latch lets the first win and the loser
/// discard silently.
#[derive(Clone)]
pub(crate) struct Responder {
    out: Arc<Mutex<TcpStream>>,
    sent: Arc<AtomicBool>,
}

impl Responder {
    fn new(out: Arc<Mutex<TcpStream>>) -> Self {
        Responder {
            out,
            sent: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Send `line` unless a response for this request already went out.
    /// Returns whether this call won the latch.
    fn send_once(&self, line: &str) -> bool {
        if self.sent.swap(true, Ordering::SeqCst) {
            return false;
        }
        let mut stream = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // A dead client is not a server error; the write result only
        // matters to the client that hung up.
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
        true
    }

    fn already_sent(&self) -> bool {
        self.sent.load(Ordering::SeqCst)
    }
}

/// One queued unit of work.
pub(crate) struct Job {
    id: Value,
    op: Op,
    responder: Responder,
    cancel: Arc<AtomicBool>,
}

/// A request the timekeeper is watching.
struct Pending {
    deadline: Instant,
    cancel: Arc<AtomicBool>,
    responder: Responder,
    id: Value,
}

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: Arc<ResultCache>,
    counters: Counters,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    pending: Mutex<Vec<Pending>>,
    cache_hits: AtomicU64,
    executed: AtomicU64,
}

impl Shared {
    fn lock_pending(&self) -> std::sync::MutexGuard<'_, Vec<Pending>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stats_value(&self) -> Value {
        let mut m = Map::new();
        let c = &self.counters;
        for (key, v) in [
            ("connections", c.connections.load(Ordering::Relaxed)),
            ("requests", c.requests.load(Ordering::Relaxed)),
            ("completed", c.completed.load(Ordering::Relaxed)),
            ("bad_requests", c.bad_requests.load(Ordering::Relaxed)),
            (
                "invalid_scenarios",
                c.invalid_scenarios.load(Ordering::Relaxed),
            ),
            ("panicked", c.panicked.load(Ordering::Relaxed)),
            ("timed_out", c.timed_out.load(Ordering::Relaxed)),
            ("overloaded", c.overloaded.load(Ordering::Relaxed)),
            ("cache_hits", self.cache_hits.load(Ordering::Relaxed)),
            ("executed", self.executed.load(Ordering::Relaxed)),
            ("queued", self.queue.len() as u64),
        ] {
            m.insert(key.to_string(), Value::Number(v as f64));
        }
        m.insert(
            "draining".to_string(),
            Value::Bool(self.shutdown.load(Ordering::SeqCst)),
        );
        Value::Object(m)
    }

    fn report(&self) -> ServeReport {
        let c = &self.counters;
        ServeReport {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            bad_requests: c.bad_requests.load(Ordering::Relaxed),
            invalid_scenarios: c.invalid_scenarios.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            overloaded: c.overloaded.load(Ordering::Relaxed),
            shed_shutdown: c.shed_shutdown.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
        }
    }
}

/// A running daemon: its bound address plus shutdown/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: stop accepting, shed new work with
    /// `shutting-down`, finish queued and in-flight jobs.
    pub fn trigger_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// Whether a drain has been triggered (by signal, op, or handle).
    pub fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Wait for the drain to complete and collect the lifetime report.
    /// Call [`trigger_shutdown`](Self::trigger_shutdown) first (or rely
    /// on a client's `shutdown` op).
    pub fn join(self) -> ServeReport {
        // A panic on the accept thread would be a daemon bug; surface the
        // report regardless so the caller's drain path stays total.
        let _ = self.accept_thread.join();
        self.shared.report()
    }
}

/// Bind and start the daemon; returns once the listener is live.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cache = match &config.cache_dir {
        Some(dir) => Arc::new(ResultCache::with_disk(dir.clone())),
        None => Arc::new(ResultCache::in_memory()),
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_capacity),
        cache,
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
        open_connections: AtomicUsize::new(0),
        pending: Mutex::new(Vec::new()),
        cache_hits: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        config,
    });

    let workers: Vec<thread::JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|_| {
            let sh = shared.clone();
            thread::spawn(move || worker_loop(&sh))
        })
        .collect();
    let timekeeper = {
        let sh = shared.clone();
        thread::spawn(move || timekeeper_loop(&sh))
    };

    let accept_shared = shared.clone();
    let accept_thread = thread::spawn(move || {
        accept_loop(&listener, &accept_shared);
        // Past here the drain has begun: no new connections, queue
        // closed. Wait for the backlog to finish.
        accept_shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        let _ = timekeeper.join();
    });

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread,
    })
}

/// Drive a started daemon to completion: poll `should_stop` (the CLI's
/// SIGINT latch) on a short tick, trigger the drain when it fires — or
/// when a client's `shutdown` op already did — then join and report.
///
/// Lives here rather than in the CLI so the polling loop stays inside
/// the crate whose thread/wall-clock tidy waiver covers it.
pub fn run_until(handle: ServerHandle, should_stop: &dyn Fn() -> bool) -> ServeReport {
    loop {
        if handle.draining() {
            break;
        }
        if should_stop() {
            handle.trigger_shutdown();
            break;
        }
        thread::sleep(TICK);
    }
    handle.join()
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.open_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
                    // Refuse at the door with a typed error, then close.
                    let mut s = stream;
                    let _ = s.write_all(
                        err_line(
                            &Value::Null,
                            ErrorKind::Overloaded,
                            "connection limit reached; retry with backoff",
                        )
                        .as_bytes(),
                    );
                    continue;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                shared.open_connections.fetch_add(1, Ordering::SeqCst);
                let sh = shared.clone();
                thread::spawn(move || {
                    connection_loop(stream, &sh);
                    sh.open_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
}

/// Read newline-delimited requests off one client connection.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; force blocking-with-timeout reads. Disable Nagle:
    // responses are single small writes, and batching them behind an ACK
    // adds tens of milliseconds to every request's tail latency.
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut read_half = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let idle_limit = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let mut last_activity = Instant::now();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Stop reading; in-flight responses go out via write_half
            // clones held by workers/timekeeper.
            return;
        }
        if last_activity.elapsed() >= idle_limit {
            return;
        }
        match read_half.read(&mut chunk) {
            Ok(0) => return, // client hung up
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let text = String::from_utf8_lossy(&line);
                    let text = text.trim();
                    if text.is_empty() {
                        continue;
                    }
                    last_activity = Instant::now();
                    handle_line(text, &write_half, shared);
                }
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, out: &Arc<Mutex<TcpStream>>, shared: &Arc<Shared>) {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bump_error(e.kind);
            let responder = Responder::new(out.clone());
            responder.send_once(&err_line(&e.id, e.kind, &e.message));
            return;
        }
    };
    let responder = Responder::new(out.clone());
    match &request.op {
        Op::Ping => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            responder.send_once(&ok_line(&request.id, serde_json::json!({"pong": true})));
        }
        Op::Stats => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            responder.send_once(&ok_line(&request.id, shared.stats_value()));
        }
        Op::Shutdown => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            responder.send_once(&ok_line(&request.id, serde_json::json!({"draining": true})));
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
        }
        Op::DebugPanic | Op::DebugSleep(_) if !shared.config.debug_ops => {
            shared.counters.bump_error(ErrorKind::BadRequest);
            responder.send_once(&err_line(
                &request.id,
                ErrorKind::BadRequest,
                "debug ops are disabled (start the daemon with --debug-ops)",
            ));
        }
        Op::Eval(_) | Op::Experiment(_) | Op::DebugPanic | Op::DebugSleep(_) => {
            enqueue(request, responder, shared);
        }
    }
}

fn enqueue(request: Request, responder: Responder, shared: &Arc<Shared>) {
    let deadline_ms = request
        .deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .max(1);
    let cancel = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    shared.lock_pending().push(Pending {
        deadline,
        cancel: cancel.clone(),
        responder: responder.clone(),
        id: request.id.clone(),
    });
    let job = Job {
        id: request.id,
        op: request.op,
        responder,
        cancel,
    };
    if let Err((why, job)) = shared.queue.push(job) {
        let (kind, msg) = match why {
            PushError::Full => (
                ErrorKind::Overloaded,
                "admission queue full; retry with backoff",
            ),
            PushError::Closed => (ErrorKind::ShuttingDown, "daemon is draining"),
        };
        shared.counters.bump_error(kind);
        job.responder.send_once(&err_line(&job.id, kind, msg));
        // The timekeeper drops the pending entry on its next scan (the
        // responder's latch is already closed).
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop(TICK) {
            Popped::Closed => return,
            Popped::Empty => continue,
            Popped::Job(job) => run_job(job, shared),
        }
    }
}

fn run_job(job: Job, shared: &Arc<Shared>) {
    if job.responder.already_sent() {
        // The timekeeper answered (deadline passed while queued); don't
        // burn a worker on a request nobody is waiting for.
        return;
    }
    let runner = request_runner(&shared.cache, &job.cancel);
    let outcome = execute(&job.op, &runner, &job.cancel);
    let stats = runner.stats();
    shared
        .cache_hits
        .fetch_add(stats.cache_hits, Ordering::Relaxed);
    shared.executed.fetch_add(stats.executed, Ordering::Relaxed);
    match outcome {
        Ok(result) => {
            if job.responder.send_once(&ok_line(&job.id, result)) {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err((kind, msg)) => {
            if job.responder.send_once(&err_line(&job.id, kind, &msg)) {
                shared.counters.bump_error(kind);
            }
        }
    }
}

fn timekeeper_loop(shared: &Arc<Shared>) {
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let now = Instant::now();
        {
            let mut pending = shared.lock_pending();
            pending.retain(|p| {
                if p.responder.already_sent() {
                    return false;
                }
                if now >= p.deadline {
                    // Raise the flag first so an in-flight sweep stops
                    // claiming, then answer the client on time.
                    p.cancel.store(true, Ordering::SeqCst);
                    if p.responder.send_once(&err_line(
                        &p.id,
                        ErrorKind::Timeout,
                        "deadline passed; the job was cancelled (completed sweep jobs \
                         are cached, so a retry resumes)",
                    )) {
                        shared.counters.bump_error(ErrorKind::Timeout);
                    }
                    return false;
                }
                true
            });
            if draining && pending.is_empty() && shared.queue.len() == 0 {
                return;
            }
        }
        thread::sleep(DEADLINE_SCAN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_capacity >= 1);
        assert!(c.default_deadline_ms >= 1);
        assert!(!c.debug_ops);
    }

    #[test]
    fn report_renders_every_counter() {
        let r = ServeReport {
            connections: 1,
            requests: 2,
            completed: 3,
            bad_requests: 4,
            invalid_scenarios: 5,
            panicked: 6,
            timed_out: 7,
            overloaded: 8,
            shed_shutdown: 9,
            cache_hits: 10,
            executed: 11,
        };
        let text = r.render();
        for needle in ["1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11"] {
            assert!(text.contains(needle), "{text}");
        }
    }
}
