//! The bounded admission queue.
//!
//! Load shedding is the queue's whole reason to exist: a burst beyond
//! `capacity` is rejected *at admission time* with a typed `overloaded`
//! error rather than buffered into unbounded memory, so a hot daemon
//! degrades by refusing work it cannot finish, never by growing until the
//! OS kills it. `close` flips the queue into drain mode: queued jobs are
//! still handed out, new pushes are refused with `Closed` (the wire's
//! `shutting-down`), and poppers see `Closed` once the backlog is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why a push was refused. The rejected job rides along so the caller can
/// still answer its client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity: shed the job with `overloaded`.
    Full,
    /// The queue is draining: refuse the job with `shutting-down`.
    Closed,
}

/// What a worker got back from a timed pop.
#[derive(Debug)]
pub(crate) enum Popped<T> {
    /// A job to run.
    Job(T),
    /// Timed out with the queue still open — poll shutdown state and retry.
    Empty,
    /// The queue is closed and fully drained — the worker can exit.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC job queue with close-and-drain semantics.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit a job, or hand it back with the reason it was refused.
    pub(crate) fn push(&self, job: T) -> Result<(), (PushError, T)> {
        let mut st = self.lock();
        if st.closed {
            return Err((PushError::Closed, job));
        }
        if st.items.len() >= self.capacity {
            return Err((PushError::Full, job));
        }
        st.items.push_back(job);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Wait up to `timeout` for a job. `Empty` means "still open, nothing
    /// arrived" — workers use the tick to poll for shutdown.
    pub(crate) fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.items.pop_front() {
                return Popped::Job(job);
            }
            if st.closed {
                return Popped::Closed;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(st, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if wait.timed_out() {
                return if st.items.is_empty() && !st.closed {
                    Popped::Empty
                } else {
                    continue;
                };
            }
        }
    }

    /// Stop admitting; queued jobs still drain. Idempotent.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub(crate) fn len(&self) -> usize {
        self.lock().items.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A pusher can only panic between its own operations, never
        // mid-mutation of the VecDeque, so a poisoned lock is still sound.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(matches!(q.pop(TICK), Popped::Job(1)));
        assert!(matches!(q.pop(TICK), Popped::Job(2)));
        assert!(matches!(q.pop(TICK), Popped::Empty));
    }

    #[test]
    fn overflow_is_shed_with_the_job_returned() {
        let q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        let (err, job) = q.push("c").unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(job, "c");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert!(matches!(q.push(2), Err((PushError::Closed, 2))));
        assert!(matches!(q.pop(TICK), Popped::Job(1)));
        assert!(matches!(q.pop(TICK), Popped::Closed));
        assert!(matches!(q.pop(TICK), Popped::Closed));
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert!(matches!(h.join().unwrap(), Popped::Job(42)));
    }
}
