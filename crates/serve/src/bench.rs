//! The closed-loop bench client (`axcc bench-serve`).
//!
//! Closed-loop means each client thread keeps exactly one request in
//! flight: send, wait for the response, record the latency, send the
//! next. Offered load therefore scales with the concurrency level, and
//! saturation shows up as rising latency percentiles rather than client
//! queue growth — the natural harness for a daemon whose overload
//! behavior (typed `overloaded` shedding) is itself under test.
//!
//! Per level the client reports completed/error counts, `overloaded`
//! retries (retried with exponential backoff until `max_retries`),
//! wall-clock throughput, nearest-rank p50/p95/p99 latencies, and the
//! min/max throughput over fixed windows (a drop to zero in a window
//! would expose a stall the aggregate rate hides).
//!
//! Workload comparability: every level issues the same deterministic
//! cycle of eval specs (a small set of seeds over one scenario), and a
//! warmup pass populates the daemon's content-addressed cache before the
//! first measured level, so all levels measure the same cache-warm
//! service path rather than the first level paying the simulations.

use crate::protocol::{parse_response, ErrorKind};
use axcc_core::units::{ms_to_sec, sec_to_ms};
use serde_json::{Map, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Bench-client configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Daemon address to connect to.
    pub addr: String,
    /// Concurrency levels to sweep (client threads per level).
    pub levels: Vec<usize>,
    /// Requests per client thread per level.
    pub requests_per_client: usize,
    /// Distinct eval seeds cycled through (the cacheable working set).
    pub distinct_specs: usize,
    /// Fluid-model steps per eval (the per-request work unit).
    pub steps: usize,
    /// Per-request deadline forwarded to the daemon (ms).
    pub deadline_ms: u64,
    /// Base backoff after an `overloaded` response (ms, doubled per
    /// consecutive retry).
    pub backoff_ms: u64,
    /// Retries per request before counting it as an error.
    pub max_retries: usize,
    /// Throughput-window length (ms) for the min/max window rates.
    pub window_ms: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: "127.0.0.1:7878".to_string(),
            levels: vec![1, 4, 16],
            requests_per_client: 50,
            distinct_specs: 8,
            steps: 600,
            deadline_ms: 10_000,
            backoff_ms: 5,
            max_retries: 8,
            window_ms: 250,
        }
    }
}

/// Measurements for one concurrency level.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Client threads run at this level.
    pub concurrency: usize,
    /// Requests answered `ok`.
    pub completed: u64,
    /// Requests that exhausted retries or got a non-retryable error.
    pub errors: u64,
    /// `overloaded` responses absorbed by retry-with-backoff.
    pub overloaded_retries: u64,
    /// Wall-clock time for the whole level (ms).
    pub wall_ms: f64,
    /// Completed requests per second over the level.
    pub throughput_rps: f64,
    /// Median latency (ms, nearest-rank).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms, nearest-rank).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms, nearest-rank).
    pub p99_ms: f64,
    /// Slowest fixed window's completion rate (rps).
    pub min_window_rps: f64,
    /// Fastest fixed window's completion rate (rps).
    pub max_window_rps: f64,
}

/// The full bench run: one report per level, in run order.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Per-level measurements.
    pub levels: Vec<LevelReport>,
    /// Config echo for the artifact.
    pub config: BenchConfig,
}

/// Nearest-rank percentile over an unsorted latency sample (ms).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The deterministic request body for request `i` of thread `t`.
fn request_line(cfg: &BenchConfig, thread: usize, i: usize, id: u64) -> String {
    let seed = (thread * 31 + i) % cfg.distinct_specs.max(1);
    format!(
        "{{\"id\":{id},\"op\":\"eval\",\"deadline_ms\":{},\"protocols\":[\"reno\",\"cubic\"],\
         \"steps\":{},\"seed\":{seed}}}\n",
        cfg.deadline_ms, cfg.steps
    )
}

/// One closed-loop client: connect once, issue `n` requests in sequence,
/// retrying `overloaded` with exponential backoff.
#[allow(clippy::cast_precision_loss)]
fn client_thread(
    cfg: &BenchConfig,
    thread_idx: usize,
    level_start: Instant,
    retries: &AtomicU64,
) -> Result<Vec<(f64, f64)>, String> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    // Closed-loop clients send one small request per round trip; Nagle
    // would batch them behind ACKs and pollute the latency percentiles.
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut samples = Vec::with_capacity(cfg.requests_per_client);
    let mut line = String::new();
    // One unmeasured ping so connection establishment (accept-loop poll
    // latency, TCP handshake) never pollutes the request percentiles.
    writer
        .write_all(b"{\"id\":\"setup\",\"op\":\"ping\"}\n")
        .map_err(|e| format!("send: {e}"))?;
    reader
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    for i in 0..cfg.requests_per_client {
        let id = (thread_idx * cfg.requests_per_client + i) as u64;
        let mut attempt = 0usize;
        loop {
            let request = request_line(cfg, thread_idx, i, id);
            let begin = Instant::now();
            writer
                .write_all(request.as_bytes())
                .map_err(|e| format!("send: {e}"))?;
            line.clear();
            reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if line.is_empty() {
                return Err("server closed the connection".to_string());
            }
            let response = parse_response(&line)?;
            match response.outcome {
                Ok(_) => {
                    let latency_ms = sec_to_ms(begin.elapsed().as_secs_f64());
                    let done_at_ms = sec_to_ms(level_start.elapsed().as_secs_f64());
                    samples.push((latency_ms, done_at_ms));
                    break;
                }
                Err((ErrorKind::Overloaded, _)) if attempt < cfg.max_retries => {
                    retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = cfg.backoff_ms.max(1) << attempt.min(8);
                    thread::sleep(Duration::from_millis(backoff));
                    attempt += 1;
                }
                Err((kind, msg)) => {
                    return Err(format!("request {id}: {} — {msg}", kind.wire_id()))
                }
            }
        }
    }
    Ok(samples)
}

/// Run one concurrency level against a live daemon.
fn run_level(cfg: &BenchConfig, concurrency: usize) -> LevelReport {
    let retries = Arc::new(AtomicU64::new(0));
    let level_start = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|t| {
            let cfg = cfg.clone();
            let retries = retries.clone();
            thread::spawn(move || client_thread(&cfg, t, level_start, &retries))
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut completions: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        match h.join() {
            Ok(Ok(samples)) => {
                for (lat, done) in samples {
                    latencies.push(lat);
                    completions.push(done);
                }
            }
            Ok(Err(_)) | Err(_) => errors += 1,
        }
    }
    let wall_ms = sec_to_ms(level_start.elapsed().as_secs_f64());
    latencies.sort_unstable_by(f64::total_cmp);

    // Fixed-window completion rates.
    let window_ms = cfg.window_ms.max(1) as f64;
    let n_windows = ((wall_ms / window_ms).ceil() as usize).max(1);
    let mut buckets = vec![0u64; n_windows];
    for &done in &completions {
        let idx = ((done / window_ms) as usize).min(n_windows - 1);
        buckets[idx] += 1;
    }
    // The trailing partial window under-counts by construction; only
    // full windows inform min/max.
    let full = if n_windows > 1 {
        &buckets[..n_windows - 1]
    } else {
        &buckets[..]
    };
    let to_rps = |count: u64| count as f64 / ms_to_sec(window_ms);
    let min_window_rps = full.iter().copied().min().map(to_rps).unwrap_or(0.0);
    let max_window_rps = full.iter().copied().max().map(to_rps).unwrap_or(0.0);

    LevelReport {
        concurrency,
        completed: latencies.len() as u64,
        errors,
        overloaded_retries: retries.load(Ordering::Relaxed),
        wall_ms,
        throughput_rps: if wall_ms > 0.0 {
            latencies.len() as f64 / ms_to_sec(wall_ms)
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        min_window_rps,
        max_window_rps,
    }
}

/// Warm the daemon's cache: evaluate every distinct spec once so every
/// measured level sees the same cache-warm service path.
fn warmup(cfg: &BenchConfig) -> Result<(), String> {
    let warm_cfg = BenchConfig {
        requests_per_client: cfg.distinct_specs.max(1),
        ..cfg.clone()
    };
    let retries = AtomicU64::new(0);
    client_thread(&warm_cfg, 0, Instant::now(), &retries).map(|_| ())
}

/// Run the bench against an in-process daemon on an ephemeral port (the
/// CLI's `--spawn` mode): start, bench, drain, return both reports.
pub fn run_bench_spawned(
    cfg: &BenchConfig,
    serve: crate::server::ServeConfig,
) -> Result<(BenchReport, crate::server::ServeReport), String> {
    let serve = crate::server::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..serve
    };
    let handle = crate::server::start(serve).map_err(|e| format!("spawn daemon: {e}"))?;
    let cfg = BenchConfig {
        addr: handle.addr().to_string(),
        ..cfg.clone()
    };
    let bench = run_bench(&cfg);
    handle.trigger_shutdown();
    let served = handle.join();
    bench.map(|b| (b, served))
}

/// Run the full sweep: warmup, then each level in order.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, String> {
    warmup(cfg)?;
    let levels = cfg.levels.iter().map(|&c| run_level(cfg, c)).collect();
    Ok(BenchReport {
        levels,
        config: cfg.clone(),
    })
}

fn num(v: f64) -> Value {
    Value::Number(v)
}

impl LevelReport {
    /// JSON form for the `BENCH_service.json` artifact.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("concurrency".to_string(), num(self.concurrency as f64));
        m.insert("completed".to_string(), num(self.completed as f64));
        m.insert("errors".to_string(), num(self.errors as f64));
        m.insert(
            "overloaded_retries".to_string(),
            num(self.overloaded_retries as f64),
        );
        m.insert("wall_ms".to_string(), num(self.wall_ms));
        m.insert("throughput_rps".to_string(), num(self.throughput_rps));
        m.insert("p50_ms".to_string(), num(self.p50_ms));
        m.insert("p95_ms".to_string(), num(self.p95_ms));
        m.insert("p99_ms".to_string(), num(self.p99_ms));
        m.insert("min_window_rps".to_string(), num(self.min_window_rps));
        m.insert("max_window_rps".to_string(), num(self.max_window_rps));
        Value::Object(m)
    }

    /// One human-readable summary row.
    pub fn render(&self) -> String {
        format!(
            "c={:<3} {:>7.1} req/s  p50 {:>7.2} ms  p95 {:>7.2} ms  p99 {:>7.2} ms  \
             ({} ok, {} err, {} overload-retries, windows {:.1}–{:.1} req/s)",
            self.concurrency,
            self.throughput_rps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.completed,
            self.errors,
            self.overloaded_retries,
            self.min_window_rps,
            self.max_window_rps,
        )
    }
}

impl BenchReport {
    /// The `BENCH_service.json` document.
    pub fn to_value(&self) -> Value {
        let mut cfg = Map::new();
        cfg.insert(
            "requests_per_client".to_string(),
            num(self.config.requests_per_client as f64),
        );
        cfg.insert(
            "distinct_specs".to_string(),
            num(self.config.distinct_specs as f64),
        );
        cfg.insert("steps".to_string(), num(self.config.steps as f64));
        cfg.insert(
            "deadline_ms".to_string(),
            num(self.config.deadline_ms as f64),
        );
        cfg.insert("window_ms".to_string(), num(self.config.window_ms as f64));
        let mut m = Map::new();
        m.insert(
            "artifact".to_string(),
            Value::String("BENCH_service".to_string()),
        );
        m.insert(
            "workload".to_string(),
            Value::String(
                "closed-loop eval requests (reno+cubic shared link), cache warmed before \
                 the first level"
                    .to_string(),
            ),
        );
        m.insert("config".to_string(), Value::Object(cfg));
        m.insert(
            "levels".to_string(),
            Value::Array(self.levels.iter().map(LevelReport::to_value).collect()),
        );
        Value::Object(m)
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::from("bench-serve (closed-loop, cache-warm):\n");
        for level in &self.levels {
            out.push_str("  ");
            out.push_str(&level.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        v.sort_unstable_by(f64::total_cmp);
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn request_lines_cycle_a_bounded_spec_set() {
        let cfg = BenchConfig::default();
        let a = request_line(&cfg, 0, 0, 1);
        assert!(a.contains("\"op\":\"eval\""));
        assert!(a.ends_with('\n'));
        let seeds: std::collections::BTreeSet<String> = (0..64)
            .map(|i| {
                let line = request_line(&cfg, 3, i, i as u64);
                line.split("\"seed\":")
                    .nth(1)
                    .unwrap()
                    .trim_end()
                    .to_string()
            })
            .collect();
        assert!(seeds.len() <= cfg.distinct_specs);
    }

    #[test]
    fn report_json_names_the_artifact() {
        let report = BenchReport {
            levels: vec![],
            config: BenchConfig::default(),
        };
        let v = report.to_value();
        assert_eq!(
            v.get("artifact").and_then(Value::as_str),
            Some("BENCH_service")
        );
        assert!(v.get("levels").and_then(Value::as_array).is_some());
    }
}
