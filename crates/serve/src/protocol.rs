//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per request (responses to pipelined
//! requests on a single connection may interleave; match them up by the
//! echoed `id`). Requests name an operation:
//!
//! ```json
//! {"id": 1, "op": "eval", "protocols": ["reno", "cubic"], "steps": 2000}
//! {"id": 2, "op": "experiment", "name": "table1", "smoke": true}
//! {"id": 3, "op": "ping"}
//! {"id": 4, "op": "stats"}
//! {"id": 5, "op": "shutdown"}
//! ```
//!
//! and every response is either `{"id": …, "ok": true, "result": {…}}` or
//! `{"id": …, "ok": false, "error": {"kind": …, "message": …}}` with a
//! closed error taxonomy ([`ErrorKind`]): clients can branch on `kind`
//! alone — `overloaded` means "back off and retry", `timeout` means "the
//! deadline passed", `bad-request`/`invalid-scenario` mean "don't retry",
//! `job-panicked` means "this input is poisoned, report it upstream",
//! `shutting-down` means "reconnect elsewhere".

use axcc_core::fingerprint::{Fingerprint, Fingerprinter};
use serde_json::{Map, Value};

/// Default fluid-model step count for `eval` (matches `axcc run`).
pub const DEFAULT_STEPS: usize = 2000;
/// Default link bandwidth in Mbps (matches `axcc run`).
pub const DEFAULT_MBPS: f64 = 20.0;
/// Default link RTT in milliseconds (matches `axcc run`).
pub const DEFAULT_RTT_MS: f64 = 42.0;
/// Default buffer size in MSS (matches `axcc run`).
pub const DEFAULT_BUFFER_MSS: f64 = 100.0;

/// The closed error taxonomy. `kind` strings are a wire contract: clients
/// branch on them, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON, or named no known operation,
    /// or was missing/mistyping a field. Never retried.
    BadRequest,
    /// The request was well-formed but describes a scenario outside the
    /// simulator's domain (unknown protocol, non-positive bandwidth, …).
    /// Never retried.
    InvalidScenario,
    /// The job panicked while evaluating. The daemon caught it at the job
    /// boundary and keeps serving; the input is poisoned, not the server.
    JobPanicked,
    /// The per-request deadline passed before the job finished.
    Timeout,
    /// The admission queue is full: the daemon shed this request instead
    /// of buffering it. Retry with backoff.
    Overloaded,
    /// The daemon is draining for shutdown and admits no new work.
    ShuttingDown,
}

impl ErrorKind {
    /// The stable wire identifier for this kind.
    pub fn wire_id(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::InvalidScenario => "invalid-scenario",
            ErrorKind::JobPanicked => "job-panicked",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting-down",
        }
    }

    /// Parse a wire identifier back into a kind (client side).
    pub fn from_wire(id: &str) -> Option<ErrorKind> {
        match id {
            "bad-request" => Some(ErrorKind::BadRequest),
            "invalid-scenario" => Some(ErrorKind::InvalidScenario),
            "job-panicked" => Some(ErrorKind::JobPanicked),
            "timeout" => Some(ErrorKind::Timeout),
            "overloaded" => Some(ErrorKind::Overloaded),
            "shutting-down" => Some(ErrorKind::ShuttingDown),
            _ => None,
        }
    }
}

/// An inline single-scenario evaluation: a shared fluid-model link, one
/// sender per named protocol, scored with the solo axiom metrics.
///
/// The spec is [`Fingerprint`]able — equal specs share a content address
/// in the daemon's result cache, so repeated evaluations are answered
/// without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// Protocol names/specs, resolved through the protocol registry.
    pub protocols: Vec<String>,
    /// Link bandwidth in Mbps.
    pub mbps: f64,
    /// Link round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Link buffer in MSS.
    pub buffer: f64,
    /// Fluid-model steps to simulate.
    pub steps: usize,
    /// Scenario seed (drives the wire-loss process, if any).
    pub seed: u64,
    /// Bernoulli wire-loss rate in `[0, 1)`; `0` disables wire loss.
    pub wire_loss: f64,
}

impl Fingerprint for EvalSpec {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("serve::EvalSpec");
        fp.write_usize(self.protocols.len());
        for p in &self.protocols {
            fp.write_str(p);
        }
        fp.write_f64(self.mbps);
        fp.write_f64(self.rtt_ms);
        fp.write_f64(self.buffer);
        fp.write_usize(self.steps);
        fp.write_u64(self.seed);
        fp.write_f64(self.wire_loss);
    }
}

/// A registry-experiment run request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSpec {
    /// Experiment name as listed by `axcc run-all`.
    pub name: String,
    /// Run at smoke (CI) scale instead of paper scale.
    pub smoke: bool,
}

/// A parsed request operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server statistics; answered inline, never queued.
    Stats,
    /// Begin a graceful drain; answered inline.
    Shutdown,
    /// Evaluate an inline scenario.
    Eval(EvalSpec),
    /// Run a registry experiment.
    Experiment(ExperimentSpec),
    /// Test-only: a job that panics (enabled by `debug_ops`).
    DebugPanic,
    /// Test-only: a job that sleeps for the given milliseconds (enabled
    /// by `debug_ops`); used to exercise deadlines and overload.
    DebugSleep(u64),
}

/// A fully parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's correlation id, echoed verbatim in the response
    /// (`null` when absent).
    pub id: Value,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// What to do.
    pub op: Op,
}

/// A request that could not be parsed: the error to send back, plus
/// whatever id could be salvaged for correlation.
#[derive(Debug, Clone)]
pub struct WireError {
    /// Salvaged correlation id (`null` if the line was not even JSON).
    pub id: Value,
    /// Always a client error: `bad-request`.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
}

fn bad(id: &Value, message: String) -> WireError {
    WireError {
        id: id.clone(),
        kind: ErrorKind::BadRequest,
        message,
    }
}

fn field_f64(obj: &Value, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn field_u64(obj: &Value, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

/// Parse one request line. Malformed input yields a [`WireError`] that
/// the connection turns into a `bad-request` response — a garbage line
/// costs one error reply, never the connection and never the daemon.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let null = Value::Null;
    let v = serde_json::from_str(line).map_err(|e| bad(&null, format!("invalid JSON: {e}")))?;
    if v.as_object().is_none() {
        return Err(bad(&null, "request must be a JSON object".to_string()));
    }
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let op_name = match v.get("op").and_then(Value::as_str) {
        Some(s) => s,
        None => return Err(bad(&id, "missing string field `op`".to_string())),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            bad(
                &id,
                "field `deadline_ms` must be a non-negative integer".to_string(),
            )
        })?),
    };
    let op = match op_name {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "debug-panic" => Op::DebugPanic,
        "debug-sleep" => Op::DebugSleep(field_u64(&v, "ms", 100).map_err(|m| bad(&id, m))?),
        "eval" => {
            let protocols = match v.get("protocols").and_then(Value::as_array) {
                Some(arr) if !arr.is_empty() => {
                    let mut names = Vec::with_capacity(arr.len());
                    for p in arr {
                        match p.as_str() {
                            Some(s) => names.push(s.to_string()),
                            None => {
                                return Err(bad(
                                    &id,
                                    "`protocols` entries must be strings".to_string(),
                                ))
                            }
                        }
                    }
                    names
                }
                _ => {
                    return Err(bad(
                        &id,
                        "eval needs a non-empty `protocols` string array".to_string(),
                    ))
                }
            };
            let link = v.get("link").cloned().unwrap_or(Value::Null);
            let spec = EvalSpec {
                protocols,
                mbps: field_f64(&link, "mbps", DEFAULT_MBPS).map_err(|m| bad(&id, m))?,
                rtt_ms: field_f64(&link, "rtt_ms", DEFAULT_RTT_MS).map_err(|m| bad(&id, m))?,
                buffer: field_f64(&link, "buffer", DEFAULT_BUFFER_MSS).map_err(|m| bad(&id, m))?,
                steps: field_u64(&v, "steps", DEFAULT_STEPS as u64).map_err(|m| bad(&id, m))?
                    as usize,
                seed: field_u64(&v, "seed", 0).map_err(|m| bad(&id, m))?,
                wire_loss: field_f64(&v, "wire_loss", 0.0).map_err(|m| bad(&id, m))?,
            };
            Op::Eval(spec)
        }
        "experiment" => {
            let name = match v.get("name").and_then(Value::as_str) {
                Some(s) => s.to_string(),
                None => {
                    return Err(bad(
                        &id,
                        "experiment needs a string field `name`".to_string(),
                    ))
                }
            };
            let smoke = v
                .get("smoke")
                .map(|b| {
                    b.as_bool()
                        .ok_or_else(|| bad(&id, "field `smoke` must be a boolean".to_string()))
                })
                .transpose()?
                .unwrap_or(true);
            Op::Experiment(ExperimentSpec { name, smoke })
        }
        other => return Err(bad(&id, format!("unknown op `{other}`"))),
    };
    Ok(Request {
        id,
        deadline_ms,
        op,
    })
}

/// Render a success response line (newline included).
pub fn ok_line(id: &Value, result: Value) -> String {
    let mut m = Map::new();
    m.insert("id".to_string(), id.clone());
    m.insert("ok".to_string(), Value::Bool(true));
    m.insert("result".to_string(), result);
    let mut line = Value::Object(m).render_compact();
    line.push('\n');
    line
}

/// Render an error response line (newline included).
pub fn err_line(id: &Value, kind: ErrorKind, message: &str) -> String {
    let mut e = Map::new();
    e.insert(
        "kind".to_string(),
        Value::String(kind.wire_id().to_string()),
    );
    e.insert("message".to_string(), Value::String(message.to_string()));
    let mut m = Map::new();
    m.insert("id".to_string(), id.clone());
    m.insert("ok".to_string(), Value::Bool(false));
    m.insert("error".to_string(), Value::Object(e));
    let mut line = Value::Object(m).render_compact();
    line.push('\n');
    line
}

/// Client-side view of one response line.
#[derive(Debug, Clone)]
pub struct ParsedResponse {
    /// The echoed correlation id.
    pub id: Value,
    /// `result` on success, `Err((kind, message))` on error.
    pub outcome: Result<Value, (ErrorKind, String)>,
}

/// Parse a response line (the bench client and tests use this).
pub fn parse_response(line: &str) -> Result<ParsedResponse, String> {
    let v = serde_json::from_str(line.trim()).map_err(|e| format!("invalid response JSON: {e}"))?;
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    match v.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(ParsedResponse {
            id,
            outcome: Ok(v.get("result").cloned().unwrap_or(Value::Null)),
        }),
        Some(false) => {
            let err = v.get("error").cloned().unwrap_or(Value::Null);
            let kind = err
                .get("kind")
                .and_then(Value::as_str)
                .and_then(ErrorKind::from_wire)
                .ok_or_else(|| "error response without a known `kind`".to_string())?;
            let message = err
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            Ok(ParsedResponse {
                id,
                outcome: Err((kind, message)),
            })
        }
        None => Err("response missing boolean `ok`".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_the_wire() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::InvalidScenario,
            ErrorKind::JobPanicked,
            ErrorKind::Timeout,
            ErrorKind::Overloaded,
            ErrorKind::ShuttingDown,
        ] {
            assert_eq!(ErrorKind::from_wire(kind.wire_id()), Some(kind));
        }
        assert_eq!(ErrorKind::from_wire("nope"), None);
    }

    #[test]
    fn garbage_is_bad_request_with_null_id() {
        let e = parse_request("not json at all").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.id.is_null());
        let e = parse_request("[1,2,3]").unwrap_err();
        assert!(e.message.contains("object"));
    }

    #[test]
    fn id_is_salvaged_from_malformed_requests() {
        let e = parse_request(r#"{"id": 7, "op": "no-such-op"}"#).unwrap_err();
        assert_eq!(e.id.as_u64(), Some(7));
        let e = parse_request(r#"{"id": "abc"}"#).unwrap_err();
        assert_eq!(e.id.as_str(), Some("abc"));
    }

    #[test]
    fn eval_defaults_match_the_cli() {
        let r = parse_request(r#"{"id": 1, "op": "eval", "protocols": ["reno"]}"#).unwrap();
        match r.op {
            Op::Eval(spec) => {
                assert_eq!(spec.protocols, vec!["reno".to_string()]);
                assert_eq!(spec.steps, DEFAULT_STEPS);
                assert_eq!(spec.mbps, DEFAULT_MBPS);
                assert_eq!(spec.rtt_ms, DEFAULT_RTT_MS);
                assert_eq!(spec.seed, 0);
            }
            other => panic!("expected Eval, got {other:?}"),
        }
    }

    #[test]
    fn eval_spec_fingerprints_are_input_sensitive() {
        let base = EvalSpec {
            protocols: vec!["reno".to_string()],
            mbps: DEFAULT_MBPS,
            rtt_ms: DEFAULT_RTT_MS,
            buffer: DEFAULT_BUFFER_MSS,
            steps: DEFAULT_STEPS,
            seed: 0,
            wire_loss: 0.0,
        };
        let same = base.clone();
        assert_eq!(base.digest(), same.digest());
        let mut other = base.clone();
        other.seed = 1;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.protocols = vec!["cubic".to_string()];
        assert_ne!(base.digest(), other.digest());
    }

    #[test]
    fn experiment_parses_with_smoke_default() {
        let r = parse_request(r#"{"op": "experiment", "name": "table1"}"#).unwrap();
        assert_eq!(
            r.op,
            Op::Experiment(ExperimentSpec {
                name: "table1".to_string(),
                smoke: true,
            })
        );
        assert!(r.id.is_null());
    }

    #[test]
    fn deadline_override_is_parsed() {
        let r = parse_request(r#"{"op": "ping", "deadline_ms": 250}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(250));
        assert!(parse_request(r#"{"op": "ping", "deadline_ms": "soon"}"#).is_err());
    }

    #[test]
    fn response_lines_round_trip() {
        let ok = ok_line(
            &serde_json::to_value(&3u64),
            serde_json::json!({"pong": true}),
        );
        assert!(ok.ends_with('\n'));
        let parsed = parse_response(&ok).unwrap();
        assert_eq!(parsed.id.as_u64(), Some(3));
        assert!(parsed.outcome.is_ok());

        let err = err_line(&Value::Null, ErrorKind::Overloaded, "queue full");
        let parsed = parse_response(&err).unwrap();
        match parsed.outcome {
            Err((kind, msg)) => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert_eq!(msg, "queue full");
            }
            other => panic!("expected error outcome, got {other:?}"),
        }
    }
}
