//! axcc-serve: a fault-tolerant evaluation daemon for the axiomatic
//! congestion-control testbed, plus its closed-loop bench client.
//!
//! The daemon (`axcc serve`) listens on a TCP socket for
//! newline-delimited JSON requests — an inline scenario spec (`eval`) or
//! a registry experiment by name (`experiment`) — and streams back one
//! JSON response line per request. It is built to keep serving through
//! every failure mode a long-running evaluator meets:
//!
//! - **Malformed input** never reaches a worker: requests are validated
//!   at parse time and refused with a typed `bad-request`/`invalid-scenario`.
//! - **Poisoned jobs** are isolated: each job runs under `catch_unwind`,
//!   so a panicking scenario yields a `job-panicked` response and the
//!   daemon keeps serving.
//! - **Deadlines** are enforced by a timekeeper thread that cancels the
//!   job's sweep runner and answers with a typed `timeout`; completed
//!   sweep jobs are already cached, so a retry resumes.
//! - **Overload** is shed at admission: a bounded queue refuses work
//!   beyond capacity with a typed `overloaded` instead of buffering
//!   without bound.
//! - **Shutdown** (SIGINT or the `shutdown` op) drains: queued jobs
//!   finish, new work is refused with `shutting-down`, and the cache is
//!   write-through so nothing needs flushing.
//!
//! [`bench`] holds the closed-loop client behind `axcc bench-serve`,
//! which sweeps concurrency levels and reports throughput and latency
//! percentiles (the committed `BENCH_service.json` artifact).

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub mod bench;
pub mod protocol;
pub mod server;

mod queue;
mod worker;

pub use bench::{BenchConfig, BenchReport, LevelReport};
pub use protocol::{parse_response, ErrorKind, ParsedResponse};
pub use server::{start, ServeConfig, ServeReport, ServerHandle};
