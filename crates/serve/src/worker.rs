//! Job execution and the daemon's one panic boundary.
//!
//! [`execute`] runs a queued operation inside `catch_unwind` — the single
//! place in the workspace (outside the protocol registry's constructor
//! guard) where a panic is deliberately caught. The contract: a poisoned
//! scenario takes down *its own request* with a typed `job-panicked`
//! error, never the worker thread and never the daemon. Two unwind
//! payloads are special-cased:
//!
//! * [`Interrupted`](axcc_sweep::Interrupted) — a deadline-cancelled
//!   sweep; reported as `timeout`, with completed-job counts attached
//!   (the completed work is already in the shared cache, so a retry
//!   resumes rather than restarts).
//! * everything else — a genuine panic; reported as `job-panicked` with
//!   the panic message.
//!
//! Evaluations reuse the sweep engine: inline scenarios go through
//! [`SweepRunner::run_cached`] (content-addressed, one evaluation per
//! distinct spec per cache lifetime) and registry experiments run on a
//! per-request runner wired to the shared store and the request's
//! cancellation signal.

use crate::protocol::{ErrorKind, EvalSpec, ExperimentSpec, Op};
use axcc_analysis::estimators::solo_metrics_of_trace;
use axcc_analysis::experiments::{find_experiment, RunBudget};
use axcc_core::units::Bandwidth;
use axcc_core::{LinkParams, RunTrace};
use axcc_fluidsim::{LossModel, Scenario, SenderConfig};
use axcc_protocols::registry::resolve;
use axcc_sweep::{interrupted_payload, Cacheable, CancelSignal, Record, SweepRunner};
use serde_json::{Map, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What a job produced: a result value, or a typed error.
pub(crate) type JobResult = Result<Value, (ErrorKind, String)>;

/// Run one queued operation to completion under the panic boundary.
///
/// `runner` is this request's sweep runner (shared cache, per-request
/// cancellation); `cancel` is the request's deadline/shutdown flag.
pub(crate) fn execute(op: &Op, runner: &SweepRunner, cancel: &Arc<AtomicBool>) -> JobResult {
    // Pre-claim check: if the deadline already passed while the job sat
    // in the queue, don't burn a worker on it.
    if cancel.load(Ordering::SeqCst) {
        return Err((
            ErrorKind::Timeout,
            "deadline passed before the job started".to_string(),
        ));
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| run_op(op, runner)));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            if let Some(info) = interrupted_payload(payload.as_ref()) {
                Err((
                    ErrorKind::Timeout,
                    format!(
                        "deadline passed after {} of {} jobs (completed results are cached; \
                         a retry resumes from them)",
                        info.completed, info.total
                    ),
                ))
            } else {
                Err((ErrorKind::JobPanicked, panic_text(payload.as_ref())))
            }
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked (non-string payload)".to_string()
    }
}

fn run_op(op: &Op, runner: &SweepRunner) -> JobResult {
    match op {
        Op::Eval(spec) => run_eval(spec, runner),
        Op::Experiment(spec) => run_experiment(spec, runner),
        Op::DebugPanic => {
            // tidy-allow: panic-freedom — test-only op whose entire purpose is to exercise the catch_unwind boundary above.
            panic!("debug-panic requested")
        }
        Op::DebugSleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            Ok(serde_json::json!({"slept_ms": *ms}))
        }
        // Ping/Stats/Shutdown are answered at the connection, not queued.
        Op::Ping | Op::Stats | Op::Shutdown => Ok(Value::Null),
    }
}

/// The cacheable outcome of one inline evaluation: per-sender tail means
/// plus the solo axiom metrics of the shared trace.
#[derive(Debug, Clone, PartialEq)]
struct EvalOutcome {
    protocols: Vec<String>,
    mean_window: Vec<f64>,
    mean_goodput: Vec<f64>,
    efficiency: f64,
    loss_bound: f64,
    fairness: f64,
    convergence: f64,
    fast_utilization: Option<f64>,
    latency_inflation: f64,
    mean_utilization: f64,
}

impl EvalOutcome {
    fn encode_into(&self, r: &mut Record) {
        r.push_usize(self.protocols.len());
        for p in &self.protocols {
            r.push_str(p);
        }
        for &w in &self.mean_window {
            r.push_f64(w);
        }
        for &g in &self.mean_goodput {
            r.push_f64(g);
        }
        r.push_f64(self.efficiency);
        r.push_f64(self.loss_bound);
        r.push_f64(self.fairness);
        r.push_f64(self.convergence);
        r.push_opt_f64(self.fast_utilization);
        r.push_f64(self.latency_inflation);
        r.push_f64(self.mean_utilization);
    }

    fn decode_from(rd: &mut axcc_sweep::RecordReader<'_>) -> Option<Self> {
        let n = rd.usize()?;
        let mut protocols = Vec::with_capacity(n);
        for _ in 0..n {
            protocols.push(rd.str()?.to_string());
        }
        let mut mean_window = Vec::with_capacity(n);
        for _ in 0..n {
            mean_window.push(rd.f64()?);
        }
        let mut mean_goodput = Vec::with_capacity(n);
        for _ in 0..n {
            mean_goodput.push(rd.f64()?);
        }
        Some(EvalOutcome {
            protocols,
            mean_window,
            mean_goodput,
            efficiency: rd.f64()?,
            loss_bound: rd.f64()?,
            fairness: rd.f64()?,
            convergence: rd.f64()?,
            fast_utilization: rd.opt_f64()?,
            latency_inflation: rd.f64()?,
            mean_utilization: rd.f64()?,
        })
    }
}

fn json_f64(v: f64) -> Value {
    Value::Number(v)
}

impl EvalOutcome {
    fn to_value(&self) -> Value {
        let senders: Vec<Value> = self
            .protocols
            .iter()
            .zip(self.mean_window.iter().zip(self.mean_goodput.iter()))
            .map(|(p, (&w, &g))| {
                let mut m = Map::new();
                m.insert("protocol".to_string(), Value::String(p.clone()));
                m.insert("mean_window".to_string(), json_f64(w));
                m.insert("mean_goodput".to_string(), json_f64(g));
                Value::Object(m)
            })
            .collect();
        let mut metrics = Map::new();
        metrics.insert("efficiency".to_string(), json_f64(self.efficiency));
        metrics.insert("loss_bound".to_string(), json_f64(self.loss_bound));
        metrics.insert("fairness".to_string(), json_f64(self.fairness));
        metrics.insert("convergence".to_string(), json_f64(self.convergence));
        metrics.insert(
            "fast_utilization".to_string(),
            match self.fast_utilization {
                Some(v) => json_f64(v),
                None => Value::Null,
            },
        );
        metrics.insert(
            "latency_inflation".to_string(),
            json_f64(self.latency_inflation),
        );
        metrics.insert(
            "mean_utilization".to_string(),
            json_f64(self.mean_utilization),
        );
        let mut m = Map::new();
        m.insert("senders".to_string(), Value::Array(senders));
        m.insert("metrics".to_string(), Value::Object(metrics));
        Value::Object(m)
    }
}

/// Pre-validate the link fields [`LinkParams::new`] would otherwise
/// assert on (its panic contract is for programmer error; a wire spec is
/// user input and gets a typed refusal instead).
fn validate_link(spec: &EvalSpec) -> Result<(), (ErrorKind, String)> {
    let bad = |field: &str, value: f64| {
        Err((
            ErrorKind::InvalidScenario,
            format!("invalid link: {field} = {value} is out of domain"),
        ))
    };
    if !(spec.mbps.is_finite() && spec.mbps > 0.0) {
        return bad("mbps", spec.mbps);
    }
    if !(spec.rtt_ms.is_finite() && spec.rtt_ms > 0.0) {
        return bad("rtt_ms", spec.rtt_ms);
    }
    if !(spec.buffer.is_finite() && spec.buffer >= 0.0) {
        return bad("buffer", spec.buffer);
    }
    if !(spec.wire_loss.is_finite() && (0.0..1.0).contains(&spec.wire_loss)) {
        return bad("wire_loss", spec.wire_loss);
    }
    Ok(())
}

fn build_and_run(spec: &EvalSpec) -> Result<RunTrace, (ErrorKind, String)> {
    validate_link(spec)?;
    let link = LinkParams::from_experiment(Bandwidth::Mbps(spec.mbps), spec.rtt_ms, spec.buffer);
    let mut sc = Scenario::new(link).steps(spec.steps).seed(spec.seed);
    if spec.wire_loss > 0.0 {
        sc = sc.wire_loss(LossModel::Bernoulli {
            rate: spec.wire_loss,
        });
    }
    for name in &spec.protocols {
        let proto = resolve(name).map_err(|e| (ErrorKind::InvalidScenario, e.to_string()))?;
        sc = sc.sender(SenderConfig::new(proto).initial_window(1.0));
    }
    sc.try_run()
        .map_err(|e| (ErrorKind::InvalidScenario, e.to_string()))
}

/// `Result` wrapper so *validation outcomes* are cacheable alongside
/// scores: a spec that fails scenario validation fails deterministically,
/// so the typed error is as cache-worthy as a score (and a hot client
/// retrying a bad spec costs the daemon a lookup, not a simulation).
#[derive(Debug, Clone, PartialEq)]
struct CachedEval(Result<EvalOutcome, String>);

impl Cacheable for CachedEval {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        match &self.0 {
            Ok(out) => {
                r.push_bool(true);
                out.encode_into(&mut r);
            }
            Err(msg) => {
                r.push_bool(false);
                r.push_str(msg);
            }
        }
        r
    }

    fn from_record(record: &Record) -> Option<Self> {
        let mut rd = record.reader();
        let inner = if rd.bool()? {
            Ok(EvalOutcome::decode_from(&mut rd)?)
        } else {
            Err(rd.str()?.to_string())
        };
        if !rd.exhausted() {
            return None;
        }
        Some(CachedEval(inner))
    }
}

fn run_eval(spec: &EvalSpec, runner: &SweepRunner) -> JobResult {
    let cached = runner.run_cached("serve/eval", spec, || {
        CachedEval(match build_and_run(spec) {
            Ok(trace) => {
                let tail = trace.tail_start(0.5);
                let m = solo_metrics_of_trace(&trace);
                Ok(EvalOutcome {
                    protocols: spec.protocols.clone(),
                    mean_window: trace
                        .senders
                        .iter()
                        .map(|s| s.mean_window_from(tail))
                        .collect(),
                    mean_goodput: trace
                        .senders
                        .iter()
                        .map(|s| s.mean_goodput_from(tail))
                        .collect(),
                    efficiency: m.efficiency,
                    loss_bound: m.loss_bound,
                    fairness: m.fairness,
                    convergence: m.convergence,
                    fast_utilization: m.fast_utilization,
                    latency_inflation: m.latency_inflation,
                    mean_utilization: m.mean_utilization,
                })
            }
            Err((_, msg)) => Err(msg),
        })
    });
    match cached.0 {
        Ok(outcome) => Ok(outcome.to_value()),
        Err(msg) => Err((ErrorKind::InvalidScenario, msg)),
    }
}

fn run_experiment(spec: &ExperimentSpec, runner: &SweepRunner) -> JobResult {
    let exp = find_experiment(&spec.name).ok_or_else(|| {
        (
            ErrorKind::BadRequest,
            format!(
                "unknown experiment `{}` (see `axcc run-all` for names)",
                spec.name
            ),
        )
    })?;
    let budget = if spec.smoke {
        RunBudget::smoke()
    } else {
        RunBudget::paper()
    };
    let outcome = (exp.run)(runner, budget);
    let stats = runner.stats();
    let mut m = Map::new();
    m.insert(
        "experiment".to_string(),
        Value::String(exp.name.to_string()),
    );
    m.insert(
        "artifact".to_string(),
        Value::String(exp.artifact.to_string()),
    );
    m.insert("passed".to_string(), Value::Bool(outcome.passed));
    m.insert("report".to_string(), Value::String(outcome.report));
    m.insert("cache_hits".to_string(), json_f64(stats.cache_hits as f64));
    m.insert("executed".to_string(), json_f64(stats.executed as f64));
    Ok(Value::Object(m))
}

/// Build the per-request sweep runner: shared store, request-scoped
/// cancellation (deadline or drain), serial within the request (requests
/// are the unit of parallelism; the worker pool provides the fan-out).
pub(crate) fn request_runner(
    cache: &Arc<axcc_sweep::ResultCache>,
    cancel: &Arc<AtomicBool>,
) -> SweepRunner {
    let flag = cancel.clone();
    SweepRunner::with_cache_handle(1, cache.clone())
        .with_cancel(CancelSignal::from_fn(move || flag.load(Ordering::SeqCst)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_sweep::ResultCache;

    fn fresh_runner() -> (Arc<ResultCache>, Arc<AtomicBool>, SweepRunner) {
        let cache = Arc::new(ResultCache::in_memory());
        let cancel = Arc::new(AtomicBool::new(false));
        let runner = request_runner(&cache, &cancel);
        (cache, cancel, runner)
    }

    fn eval_spec() -> EvalSpec {
        EvalSpec {
            protocols: vec!["reno".to_string(), "cubic".to_string()],
            mbps: 20.0,
            rtt_ms: 42.0,
            buffer: 100.0,
            steps: 400,
            seed: 0,
            wire_loss: 0.0,
        }
    }

    #[test]
    fn eval_scores_and_caches() {
        let (cache, _cancel, runner) = fresh_runner();
        let v = execute(
            &Op::Eval(eval_spec()),
            &runner,
            &Arc::new(AtomicBool::new(false)),
        )
        .unwrap();
        let senders = v.get("senders").and_then(Value::as_array).unwrap();
        assert_eq!(senders.len(), 2);
        assert!(
            v.get("metrics")
                .unwrap()
                .get("efficiency")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert_eq!(cache.len(), 1);
        // Second request over a fresh runner sharing the cache: a hit.
        let cancel2 = Arc::new(AtomicBool::new(false));
        let runner2 = request_runner(&cache, &cancel2);
        let v2 = execute(&Op::Eval(eval_spec()), &runner2, &cancel2).unwrap();
        assert_eq!(v.render_compact(), v2.render_compact());
        assert_eq!(runner2.stats().cache_hits, 1);
    }

    #[test]
    fn unknown_protocol_is_invalid_scenario() {
        let (_c, cancel, runner) = fresh_runner();
        let mut spec = eval_spec();
        spec.protocols = vec!["warp-drive".to_string()];
        let (kind, msg) = execute(&Op::Eval(spec), &runner, &cancel).unwrap_err();
        assert_eq!(kind, ErrorKind::InvalidScenario);
        assert!(!msg.is_empty());
    }

    #[test]
    fn bad_link_is_invalid_scenario_not_a_crash() {
        let (_c, cancel, runner) = fresh_runner();
        let mut spec = eval_spec();
        spec.mbps = -5.0;
        let (kind, _) = execute(&Op::Eval(spec), &runner, &cancel).unwrap_err();
        assert_eq!(kind, ErrorKind::InvalidScenario);
    }

    #[test]
    fn panicking_job_is_contained() {
        let (_c, cancel, runner) = fresh_runner();
        let (kind, msg) = execute(&Op::DebugPanic, &runner, &cancel).unwrap_err();
        assert_eq!(kind, ErrorKind::JobPanicked);
        assert!(msg.contains("debug-panic"));
    }

    #[test]
    fn pre_raised_cancel_is_a_timeout_without_work() {
        let (_c, _cancel, runner) = fresh_runner();
        let cancel = Arc::new(AtomicBool::new(true));
        let (kind, _) = execute(&Op::Eval(eval_spec()), &runner, &cancel).unwrap_err();
        assert_eq!(kind, ErrorKind::Timeout);
    }

    #[test]
    fn cancelled_experiment_reports_timeout_with_progress() {
        let (cache, cancel, runner) = fresh_runner();
        cancel.store(true, Ordering::SeqCst);
        // Bypass the pre-claim check to exercise the unwind path.
        let fresh = Arc::new(AtomicBool::new(false));
        let spec = ExperimentSpec {
            name: "table1".to_string(),
            smoke: true,
        };
        let (kind, msg) = execute(&Op::Experiment(spec), &runner, &fresh).unwrap_err();
        assert_eq!(kind, ErrorKind::Timeout);
        assert!(msg.contains("deadline"), "{msg}");
        drop(cache);
    }

    #[test]
    fn unknown_experiment_is_bad_request() {
        let (_c, cancel, runner) = fresh_runner();
        let spec = ExperimentSpec {
            name: "no-such-table".to_string(),
            smoke: true,
        };
        let (kind, _) = execute(&Op::Experiment(spec), &runner, &cancel).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
    }
}
