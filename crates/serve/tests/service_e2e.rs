//! End-to-end robustness tests for the `axcc serve` daemon: a real
//! listener on an ephemeral port, real TCP clients, and every failure
//! mode from ISSUE acceptance — malformed input, panicking jobs,
//! deadline overruns, sustained overload, and drain-on-shutdown — all
//! survived by one daemon process per test.
#![allow(clippy::expect_used)] // harness failures should abort the e2e suite loudly

use axcc_serve::protocol::{parse_response, ErrorKind, ParsedResponse};
use axcc_serve::{start, ServeConfig, ServerHandle};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A line-oriented test client with a read timeout so a missing
/// response fails the test instead of hanging it.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &ServerHandle) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv(&mut self) -> ParsedResponse {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "server closed the connection");
        parse_response(&line).expect("well-formed response line")
    }

    fn roundtrip(&mut self, line: &str) -> ParsedResponse {
        self.send_raw(line);
        self.recv()
    }
}

fn debug_server(configure: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        debug_ops: true,
        ..ServeConfig::default()
    };
    configure(&mut config);
    start(config).expect("daemon starts")
}

fn expect_err(response: &ParsedResponse) -> (ErrorKind, &str) {
    match &response.outcome {
        Err((kind, msg)) => (*kind, msg.as_str()),
        Ok(v) => panic!("expected an error response, got ok: {}", v.render_compact()),
    }
}

fn shutdown_and_join(server: ServerHandle) -> axcc_serve::ServeReport {
    server.trigger_shutdown();
    server.join()
}

#[test]
fn malformed_requests_get_bad_request_and_the_daemon_keeps_serving() {
    let server = debug_server(|_| {});
    let mut client = Client::connect(&server);

    // Not JSON at all: typed bad-request with a null id.
    let r = client.roundtrip("certainly not json");
    assert!(r.id.is_null());
    assert_eq!(expect_err(&r).0, ErrorKind::BadRequest);

    // Valid JSON, unknown op: the client's id is echoed for correlation.
    let r = client.roundtrip(r#"{"id": 9, "op": "frobnicate"}"#);
    assert_eq!(r.id.as_u64(), Some(9));
    assert_eq!(expect_err(&r).0, ErrorKind::BadRequest);

    // Valid op, impossible scenario: typed invalid-scenario, not a crash.
    let r =
        client.roundtrip(r#"{"id": 10, "op": "eval", "protocols": ["warp-drive"], "steps": 50}"#);
    assert_eq!(expect_err(&r).0, ErrorKind::InvalidScenario);
    let r = client.roundtrip(
        r#"{"id": 11, "op": "eval", "protocols": ["reno"], "link": {"mbps": -4.0}, "steps": 50}"#,
    );
    assert_eq!(expect_err(&r).0, ErrorKind::InvalidScenario);

    // The same connection still serves real work afterwards.
    let r = client.roundtrip(r#"{"id": 12, "op": "ping"}"#);
    assert_eq!(
        r.outcome.unwrap().get("pong").and_then(Value::as_bool),
        Some(true)
    );

    let report = shutdown_and_join(server);
    assert!(report.bad_requests >= 2, "{report:?}");
    assert!(report.invalid_scenarios >= 2, "{report:?}");
}

#[test]
fn a_panicking_job_is_contained_and_the_daemon_survives() {
    let server = debug_server(|_| {});
    let mut client = Client::connect(&server);

    let r = client.roundtrip(r#"{"id": 1, "op": "debug-panic"}"#);
    let (kind, msg) = expect_err(&r);
    assert_eq!(kind, ErrorKind::JobPanicked);
    assert!(msg.contains("debug-panic"), "{msg}");

    // The worker that caught the panic is still in the pool: real work
    // on a fresh connection succeeds.
    let mut client2 = Client::connect(&server);
    let r = client2
        .roundtrip(r#"{"id": 2, "op": "eval", "protocols": ["reno", "cubic"], "steps": 200}"#);
    let result = r.outcome.expect("eval after panic succeeds");
    assert_eq!(
        result
            .get("senders")
            .and_then(Value::as_array)
            .map(Vec::len),
        Some(2)
    );

    let report = shutdown_and_join(server);
    assert_eq!(report.panicked, 1, "{report:?}");
    assert!(report.completed >= 1, "{report:?}");
}

#[test]
fn a_deadline_overrun_times_out_on_time_and_the_daemon_keeps_serving() {
    let server = debug_server(|_| {});
    let mut client = Client::connect(&server);

    // The job sleeps far past its deadline; the timekeeper answers with
    // a typed timeout at the deadline, not when the job finishes.
    let started = std::time::Instant::now();
    let r = client.roundtrip(r#"{"id": 1, "op": "debug-sleep", "ms": 3000, "deadline_ms": 80}"#);
    let waited = started.elapsed();
    assert_eq!(expect_err(&r).0, ErrorKind::Timeout);
    assert!(
        waited < Duration::from_millis(1500),
        "timeout should beat the 3s job, took {waited:?}"
    );

    // The daemon is still responsive (the default pool has a free worker).
    let r = client.roundtrip(r#"{"id": 2, "op": "ping"}"#);
    assert!(r.outcome.is_ok());

    let report = shutdown_and_join(server);
    assert_eq!(report.timed_out, 1, "{report:?}");
}

#[test]
fn sustained_overload_sheds_with_typed_overloaded_and_recovers() {
    // One worker, a one-slot queue: a burst of slow jobs must shed.
    let server = debug_server(|c| {
        c.workers = 1;
        c.queue_capacity = 1;
    });
    let mut client = Client::connect(&server);

    const BURST: usize = 6;
    let mut batch = String::new();
    for i in 0..BURST {
        batch.push_str(&format!(
            "{{\"id\": {i}, \"op\": \"debug-sleep\", \"ms\": 300, \"deadline_ms\": 10000}}\n"
        ));
    }
    client
        .writer
        .write_all(batch.as_bytes())
        .expect("send burst");

    let mut ok = 0u32;
    let mut overloaded = 0u32;
    for _ in 0..BURST {
        let r = client.recv();
        match r.outcome {
            Ok(_) => ok += 1,
            Err((ErrorKind::Overloaded, msg)) => {
                assert!(msg.contains("retry"), "{msg}");
                overloaded += 1;
            }
            Err(other) => panic!("unexpected outcome under overload: {other:?}"),
        }
    }
    // At most one running plus one queued job can complete; the rest of
    // the burst must have been refused at admission, not buffered.
    assert!(
        overloaded >= (BURST as u32) - 2,
        "{overloaded} shed, {ok} ok"
    );
    assert!(ok >= 1, "the daemon should still finish admitted work");

    // After the burst drains the daemon accepts work again.
    let r = client.roundtrip(r#"{"id": 99, "op": "ping"}"#);
    assert!(r.outcome.is_ok());

    let report = shutdown_and_join(server);
    assert_eq!(report.overloaded, u64::from(overloaded), "{report:?}");
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let server = debug_server(|c| c.workers = 4);
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                // Two clients share seed 0 (exercises the shared cache),
                // two use distinct seeds.
                let seed = if t < 2 { 0 } else { t };
                writeln!(
                    writer,
                    "{{\"id\": {t}, \"op\": \"eval\", \"protocols\": [\"reno\", \"cubic\"], \
                     \"steps\": 300, \"seed\": {seed}}}"
                )
                .expect("send");
                let mut line = String::new();
                reader.read_line(&mut line).expect("recv");
                let r = parse_response(&line).expect("parse");
                assert_eq!(r.id.as_u64(), Some(t as u64));
                let result = r.outcome.expect("eval ok");
                let eff = result
                    .get("metrics")
                    .and_then(|m| m.get("efficiency"))
                    .and_then(Value::as_f64)
                    .expect("efficiency metric");
                assert!(eff > 0.0);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let report = shutdown_and_join(server);
    assert_eq!(report.completed, 4, "{report:?}");
    assert!(report.connections >= 4, "{report:?}");
}

#[test]
fn registry_experiments_run_over_the_wire() {
    let server = debug_server(|_| {});
    let mut client = Client::connect(&server);

    let r = client.roundtrip(
        r#"{"id": 1, "op": "experiment", "name": "table1", "smoke": true, "deadline_ms": 120000}"#,
    );
    let result = r.outcome.expect("table1 smoke succeeds");
    assert_eq!(
        result.get("experiment").and_then(Value::as_str),
        Some("table1")
    );
    assert_eq!(result.get("passed").and_then(Value::as_bool), Some(true));

    // An unknown experiment is a typed bad-request, not a crash.
    let r = client.roundtrip(r#"{"id": 2, "op": "experiment", "name": "no-such-table"}"#);
    assert_eq!(expect_err(&r).0, ErrorKind::BadRequest);

    let _ = shutdown_and_join(server);
}

#[test]
fn shutdown_drains_queued_work_and_sheds_late_arrivals() {
    let server = debug_server(|_| {});
    let mut client = Client::connect(&server);

    // One batch: real work, then the shutdown op, then a late request.
    // The queued eval still completes (drain, not abort); the late eval
    // is refused with the typed shutting-down error.
    let batch = concat!(
        r#"{"id": 1, "op": "eval", "protocols": ["reno"], "steps": 200}"#,
        "\n",
        r#"{"id": 2, "op": "shutdown"}"#,
        "\n",
        r#"{"id": 3, "op": "eval", "protocols": ["reno"], "steps": 200}"#,
        "\n",
    );
    client
        .writer
        .write_all(batch.as_bytes())
        .expect("send batch");

    let mut saw_eval_ok = false;
    let mut saw_draining = false;
    let mut saw_shed = false;
    for _ in 0..3 {
        let r = client.recv();
        match r.id.as_u64() {
            Some(1) => saw_eval_ok = r.outcome.is_ok(),
            Some(2) => {
                saw_draining = r
                    .outcome
                    .as_ref()
                    .ok()
                    .and_then(|v| v.get("draining"))
                    .and_then(Value::as_bool)
                    == Some(true);
            }
            Some(3) => saw_shed = matches!(r.outcome, Err((ErrorKind::ShuttingDown, _))),
            other => panic!("unexpected response id {other:?}"),
        }
    }
    assert!(saw_eval_ok, "queued work must finish during the drain");
    assert!(saw_draining, "the shutdown op must acknowledge");
    assert!(saw_shed, "post-shutdown work must be shed as shutting-down");

    // The shutdown op already triggered the drain; join() must return.
    let report = server.join();
    assert!(report.completed >= 2, "{report:?}");
    assert_eq!(report.shed_shutdown, 1, "{report:?}");
}

#[test]
fn debug_ops_are_refused_unless_enabled() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = start(config).expect("daemon starts");
    let mut client = Client::connect(&server);
    let r = client.roundtrip(r#"{"id": 1, "op": "debug-panic"}"#);
    let (kind, msg) = expect_err(&r);
    assert_eq!(kind, ErrorKind::BadRequest);
    assert!(msg.contains("debug ops"), "{msg}");
    let _ = shutdown_and_join(server);
}
