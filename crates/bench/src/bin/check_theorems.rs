//! Check **Claim 1 and Theorems 1–5** (Section 4) against simulation.
//!
//! Each theorem's hypotheses are instantiated with concrete protocols in
//! the fluid model and the conclusion is verified on measured scores (see
//! `axcc_analysis::experiments::theorems` for what each check asserts).
//! Exits non-zero if any check fails, so the target doubles as a CI gate.
//!
//! Flags: `--json`, and the shared `--jobs N` / `--no-cache`.

use axcc_analysis::experiments::theorems::{check_all_with, render_checks};
use axcc_bench::budget;
use axcc_bench::runner::Bin;

fn main() {
    let mut bin = Bin::new("check-theorems");
    let checks = check_all_with(bin.runner(), budget::THEOREM_STEPS);
    bin.section("theorems", &checks, &render_checks(&checks));
    bin.gate(checks.iter().all(|c| c.passed), "all theorem checks pass");
    std::process::exit(bin.finish());
}
