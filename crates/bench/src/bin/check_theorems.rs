//! Check **Claim 1 and Theorems 1–5** (Section 4) against simulation.
//!
//! Each theorem's hypotheses are instantiated with concrete protocols in
//! the fluid model and the conclusion is verified on measured scores (see
//! `axcc_analysis::experiments::theorems` for what each check asserts).
//! Exits non-zero if any check fails, so the target doubles as a CI gate.
//!
//! Flags: `--json`.

use axcc_analysis::experiments::theorems::{check_all, render_checks};
use axcc_bench::{budget, has_flag};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checks = check_all(budget::THEOREM_STEPS);
    println!("{}", render_checks(&checks));
    if has_flag("--json") {
        println!("{}", serde_json::to_string_pretty(&checks)?);
    }
    if checks.iter().any(|c| !c.passed) {
        std::process::exit(1);
    }
    Ok(())
}
