//! Regenerate the **empirical frontier search**: score a candidate pool
//! spanning every implemented family and extract the Pareto-maximal
//! subsets in the Figure 1 subspace, the +robustness subspace, and the
//! full eight-metric space — the paper's "where architectures fit" claim,
//! by measurement.
//!
//! Flags: `--json`, and the shared `--jobs N` / `--no-cache`.

use axcc_analysis::experiments::frontier::search_frontier_with;
use axcc_bench::budget;
use axcc_bench::runner::Bin;
use axcc_core::LinkParams;

fn main() {
    let mut bin = Bin::new("gen-frontier");
    bin.progress(&format!(
        "scoring the candidate pool ({} steps per run)…",
        budget::THEOREM_STEPS
    ));
    let f = search_frontier_with(bin.runner(), LinkParams::reference(), budget::THEOREM_STEPS);
    bin.section("frontier", &f, &f.render());
    std::process::exit(bin.finish());
}
