//! Regenerate the **empirical frontier search**: score a candidate pool
//! spanning every implemented family and extract the Pareto-maximal
//! subsets in the Figure 1 subspace, the +robustness subspace, and the
//! full eight-metric space — the paper's "where architectures fit" claim,
//! by measurement.
//!
//! Flags: `--json`.

use axcc_analysis::experiments::frontier::search_frontier;
use axcc_bench::{budget, has_flag};
use axcc_core::LinkParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let link = LinkParams::reference();
    eprintln!(
        "scoring the candidate pool ({} steps per run)…",
        budget::THEOREM_STEPS
    );
    let f = search_frontier(link, budget::THEOREM_STEPS);
    println!("{}", f.render());
    if has_flag("--json") {
        println!("{}", serde_json::to_string_pretty(&f)?);
    }
    Ok(())
}
