//! Benchmark the two engine evaluation paths and emit **BENCH_engine.json**.
//!
//! For every streaming-capable experiment in the registry this runs the
//! full experiment through a serial, cache-disabled runner — once in
//! [`EvalMode::Traced`] (record the full trace, evaluate the axioms on it)
//! and once in [`EvalMode::Streaming`] (fold each step straight into the
//! metric accumulators) — asserts the rendered reports are **identical**
//! (they embed every measured score, so equal strings means bit-equal
//! metrics), and records wall-clock for both plus the trace bytes the
//! streaming path never allocated ([`axcc_fluidsim::stats`]).
//!
//! Serial + no cache isolates the engine-path difference: no worker
//! scheduling noise, no cache hits standing in for runs. Each mode is
//! timed [`TIMING_REPEATS`] times and the **minimum** wall-clock is
//! reported: the experiments are deterministic, so the fastest repeat is
//! the one least disturbed by the machine (scheduler preemption, frequency
//! excursions) — the standard noise-robust estimator for the sub-10 ms
//! experiments whose single-shot timings otherwise swing tens of percent.
//!
//! Flags:
//! * `--smoke` — CI-scale run lengths (default: full paper scale);
//! * `--out PATH` — where to write the snapshot (default `BENCH_engine.json`);
//! * `--min-speedup X` — exit non-zero if any experiment's streaming
//!   speedup falls below `X` (the CI smoke gate).

use axcc_analysis::experiments::{registry, RunBudget};
use axcc_bench::has_flag;
use axcc_bench::runner::flag_value;
use axcc_sweep::{EvalMode, Stopwatch, SweepRunner, ENGINE_REVISION};

/// Minimum timed passes per (experiment, mode); the minimum wall-clock is
/// reported.
const TIMING_REPEATS: usize = 3;
/// Keep repeating (up to [`TIMING_MAX_REPEATS`]) until at least this much
/// wall-clock has been measured for the mode: sub-10 ms experiments get
/// many passes, the second-long ones stay at the minimum.
const TIMING_FLOOR_SECS: f64 = 0.5;
/// Hard cap on timed passes per mode.
const TIMING_MAX_REPEATS: usize = 25;

fn main() {
    let budget = if has_flag("--smoke") {
        RunBudget::smoke()
    } else {
        RunBudget::paper()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let min_speedup: Option<f64> = flag_value("--min-speedup").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("[bench-engine] bad --min-speedup {v:?}: {e}");
            std::process::exit(2);
        })
    });

    let mut experiments = Vec::new();
    let mut traced_total = 0.0;
    let mut streaming_total = 0.0;
    let mut eliminated_total = 0u64;
    let mut runs_total = 0u64;
    let mut steps_total = 0u64;
    let mut sender_steps_total = 0u64;
    let mut below_gate: Vec<(String, f64)> = Vec::new();
    for exp in registry().iter().filter(|e| e.supports_streaming) {
        eprintln!("[bench-engine] {} …", exp.name);

        let traced = SweepRunner::without_cache(1).with_eval_mode(EvalMode::Traced);
        let _ = axcc_fluidsim::stats::take();
        let sw = Stopwatch::start();
        let traced_outcome = (exp.run)(&traced, budget);
        let mut traced_secs = sw.elapsed_secs();
        let mut traced_spent = traced_secs;
        let traced_streamed = axcc_fluidsim::stats::take();
        assert_eq!(
            traced_streamed.runs, 0,
            "{}: traced mode must not take the streaming path",
            exp.name
        );

        let streaming = SweepRunner::without_cache(1);
        let sw = Stopwatch::start();
        let streaming_outcome = (exp.run)(&streaming, budget);
        let mut streaming_secs = sw.elapsed_secs();
        let mut streaming_spent = streaming_secs;
        // Deterministic runs: every repeat streams the same steps, so the
        // first pass's counters describe them all.
        let streamed = axcc_fluidsim::stats::take();

        // Repeats interleave the two modes so a noise window (scheduler
        // preemption, frequency excursion) lands on both modes' samples
        // instead of skewing their ratio.
        for rep in 1..TIMING_MAX_REPEATS {
            let traced_done = rep >= TIMING_REPEATS && traced_spent >= TIMING_FLOOR_SECS;
            let streaming_done = rep >= TIMING_REPEATS && streaming_spent >= TIMING_FLOOR_SECS;
            if traced_done && streaming_done {
                break;
            }
            if !traced_done {
                let sw = Stopwatch::start();
                let _ = (exp.run)(&traced, budget);
                let secs = sw.elapsed_secs();
                traced_secs = traced_secs.min(secs);
                traced_spent += secs;
                let _ = axcc_fluidsim::stats::take();
            }
            if !streaming_done {
                let sw = Stopwatch::start();
                let _ = (exp.run)(&streaming, budget);
                let secs = sw.elapsed_secs();
                streaming_secs = streaming_secs.min(secs);
                streaming_spent += secs;
                let _ = axcc_fluidsim::stats::take();
            }
        }

        assert_eq!(
            traced_outcome.report, streaming_outcome.report,
            "{}: streaming report diverged from traced",
            exp.name
        );
        assert_eq!(
            traced_outcome.passed, streaming_outcome.passed,
            "{}: streaming pass/fail diverged from traced",
            exp.name
        );

        traced_total += traced_secs;
        streaming_total += streaming_secs;
        eliminated_total += streamed.eliminated_bytes;
        runs_total += streamed.runs;
        steps_total += streamed.steps;
        sender_steps_total += streamed.sender_steps;
        let speedup = if streaming_secs > 0.0 {
            traced_secs / streaming_secs
        } else {
            0.0
        };
        // Absolute throughput of the streaming path: simulation steps per
        // wall-clock second, and nanoseconds per sender-step (the unit of
        // inner-loop work).
        let steps_per_sec = if streaming_secs > 0.0 {
            streamed.steps as f64 / streaming_secs
        } else {
            0.0
        };
        let ns_per_step = if streamed.sender_steps > 0 {
            streaming_secs * 1e9 / streamed.sender_steps as f64
        } else {
            0.0
        };
        if let Some(gate) = min_speedup {
            if speedup < gate {
                below_gate.push((exp.name.to_string(), speedup));
            }
        }
        experiments.push(serde_json::json!({
            "name": exp.name,
            "traced_secs": traced_secs,
            "streaming_secs": streaming_secs,
            "speedup": speedup,
            "streaming_runs": streamed.runs,
            "streaming_steps": streamed.steps,
            "steps_per_sec": steps_per_sec,
            "ns_per_sender_step": ns_per_step,
            "eliminated_trace_bytes": streamed.eliminated_bytes,
        }));
    }

    let suite_speedup = if streaming_total > 0.0 {
        traced_total / streaming_total
    } else {
        0.0
    };
    let totals = serde_json::json!({
        "traced_secs": traced_total,
        "streaming_secs": streaming_total,
        "speedup": suite_speedup,
        "streaming_runs": runs_total,
        "streaming_steps": steps_total,
        "steps_per_sec": if streaming_total > 0.0 { steps_total as f64 / streaming_total } else { 0.0 },
        "ns_per_sender_step": if sender_steps_total > 0 { streaming_total * 1e9 / sender_steps_total as f64 } else { 0.0 },
        "eliminated_trace_bytes": eliminated_total,
    });
    let scale = if budget.smoke { "smoke" } else { "paper" };
    let snapshot = serde_json::json!({
        "engine_revision": ENGINE_REVISION,
        "scale": scale,
        "experiments": experiments,
        "totals": totals,
    });
    let rendered = match serde_json::to_string_pretty(&snapshot) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[bench-engine] JSON serialization failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{rendered}");
    if let Err(e) = std::fs::write(&out_path, format!("{rendered}\n")) {
        eprintln!("[bench-engine] cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[bench-engine] snapshot written to {out_path} ({suite_speedup:.2}x suite speedup, {:.1} MiB of trace never allocated over {runs_total} runs)",
        eliminated_total as f64 / (1024.0 * 1024.0),
    );
    if !below_gate.is_empty() {
        for (name, speedup) in &below_gate {
            eprintln!(
                "[bench-engine] GATE FAILURE: {name} streaming speedup {speedup:.3}x < {:.3}x",
                min_speedup.unwrap_or(0.0)
            );
        }
        std::process::exit(1);
    }
}
