//! Benchmark the two engine evaluation paths and emit **BENCH_engine.json**.
//!
//! For every streaming-capable experiment in the registry this runs the
//! full experiment twice through a serial, cache-disabled runner — once in
//! [`EvalMode::Traced`] (record the full trace, evaluate the axioms on it)
//! and once in [`EvalMode::Streaming`] (fold each step straight into the
//! metric accumulators) — asserts the rendered reports are **identical**
//! (they embed every measured score, so equal strings means bit-equal
//! metrics), and records wall-clock for both plus the trace bytes the
//! streaming path never allocated ([`axcc_fluidsim::stats`]).
//!
//! Serial + no cache isolates the engine-path difference: no worker
//! scheduling noise, no cache hits standing in for runs.
//!
//! Flags:
//! * `--smoke` — CI-scale run lengths (default: full paper scale);
//! * `--out PATH` — where to write the snapshot (default `BENCH_engine.json`).

use axcc_analysis::experiments::{registry, RunBudget};
use axcc_bench::has_flag;
use axcc_bench::runner::flag_value;
use axcc_sweep::{EvalMode, Stopwatch, SweepRunner, ENGINE_REVISION};

fn main() {
    let budget = if has_flag("--smoke") {
        RunBudget::smoke()
    } else {
        RunBudget::paper()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut experiments = Vec::new();
    let mut traced_total = 0.0;
    let mut streaming_total = 0.0;
    let mut eliminated_total = 0u64;
    let mut runs_total = 0u64;
    for exp in registry().iter().filter(|e| e.supports_streaming) {
        eprintln!("[bench-engine] {} …", exp.name);

        let traced = SweepRunner::without_cache(1).with_eval_mode(EvalMode::Traced);
        let _ = axcc_fluidsim::stats::take();
        let sw = Stopwatch::start();
        let traced_outcome = (exp.run)(&traced, budget);
        let traced_secs = sw.elapsed_secs();
        let traced_streamed = axcc_fluidsim::stats::take();
        assert_eq!(
            traced_streamed.runs, 0,
            "{}: traced mode must not take the streaming path",
            exp.name
        );

        let streaming = SweepRunner::without_cache(1);
        let sw = Stopwatch::start();
        let streaming_outcome = (exp.run)(&streaming, budget);
        let streaming_secs = sw.elapsed_secs();
        let streamed = axcc_fluidsim::stats::take();

        assert_eq!(
            traced_outcome.report, streaming_outcome.report,
            "{}: streaming report diverged from traced",
            exp.name
        );
        assert_eq!(
            traced_outcome.passed, streaming_outcome.passed,
            "{}: streaming pass/fail diverged from traced",
            exp.name
        );

        traced_total += traced_secs;
        streaming_total += streaming_secs;
        eliminated_total += streamed.eliminated_bytes;
        runs_total += streamed.runs;
        let speedup = if streaming_secs > 0.0 {
            traced_secs / streaming_secs
        } else {
            0.0
        };
        experiments.push(serde_json::json!({
            "name": exp.name,
            "traced_secs": traced_secs,
            "streaming_secs": streaming_secs,
            "speedup": speedup,
            "streaming_runs": streamed.runs,
            "eliminated_trace_bytes": streamed.eliminated_bytes,
        }));
    }

    let suite_speedup = if streaming_total > 0.0 {
        traced_total / streaming_total
    } else {
        0.0
    };
    let totals = serde_json::json!({
        "traced_secs": traced_total,
        "streaming_secs": streaming_total,
        "speedup": suite_speedup,
        "streaming_runs": runs_total,
        "eliminated_trace_bytes": eliminated_total,
    });
    let scale = if budget.smoke { "smoke" } else { "paper" };
    let snapshot = serde_json::json!({
        "engine_revision": ENGINE_REVISION,
        "scale": scale,
        "experiments": experiments,
        "totals": totals,
    });
    let rendered = match serde_json::to_string_pretty(&snapshot) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[bench-engine] JSON serialization failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{rendered}");
    if let Err(e) = std::fs::write(&out_path, format!("{rendered}\n")) {
        eprintln!("[bench-engine] cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[bench-engine] snapshot written to {out_path} ({suite_speedup:.2}x suite speedup, {:.1} MiB of trace never allocated over {runs_total} runs)",
        eliminated_total as f64 / (1024.0 * 1024.0),
    );
}
