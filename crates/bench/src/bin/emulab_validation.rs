//! Rerun the paper's **Section 5.1 Emulab validation** on the packet-level
//! simulator: Reno / Cubic / Scalable, 2–4 staggered connections,
//! 20/30/60/100 Mbps, 10/100-MSS buffers, 42 ms RTT — then compare, per
//! metric, the measured protocol hierarchy with the hierarchy Table 1's
//! theory induces (the paper's own success criterion).
//!
//! Flags:
//! * `--quick` — a single-cell smoke grid instead of the full 24-cell one;
//! * `--json` — dump all cells + hierarchy agreements as JSON;
//! * `--jobs N`, `--no-cache` — sweep-engine controls.

use axcc_analysis::experiments::emulab::{run_emulab_validation_with, EmulabConfig};
use axcc_bench::has_flag;
use axcc_bench::runner::Bin;

fn main() {
    let mut bin = Bin::new("emulab-validation");
    let cfg = if has_flag("--quick") {
        EmulabConfig::quick()
    } else {
        EmulabConfig::paper()
    };
    bin.progress(&format!(
        "running {} packet-level simulations…",
        cfg.total_runs()
    ));
    let v = run_emulab_validation_with(bin.runner(), &cfg);
    let text = format!(
        "{}\nmean hierarchy agreement: {:.3}",
        v.render(),
        v.mean_agreement()
    );
    bin.section("emulab", &v, &text);
    std::process::exit(bin.finish());
}
