//! Regenerate the **adverse-network gauntlet** — Metric VI re-measured
//! under Gilbert–Elliott bursty loss instead of the axiom's constant
//! loss, across a burst-length × burst-frequency impairment grid (with
//! efficiency and TCP-friendliness side-effect columns re-measured under
//! a reference impairment).
//!
//! Exits non-zero unless the headline holds: Robust-AIMD's tolerated
//! burst frequency degrades strictly slower than plain AIMD's as bursts
//! lengthen.
//!
//! Flags: `--json`.

use axcc_analysis::experiments::gauntlet;
use axcc_bench::{budget, has_flag};

fn main() {
    let rep = gauntlet::run_gauntlet(budget::GAUNTLET_STEPS);
    println!("{}", rep.render());
    if has_flag("--json") {
        println!("{}", serde_json::json!({ "gauntlet": rep }));
    }
    if !rep.degrades_slower("R-AIMD", "AIMD(1,0.5)") {
        std::process::exit(1);
    }
}
