//! Regenerate the **adverse-network gauntlet** — Metric VI re-measured
//! under Gilbert–Elliott bursty loss instead of the axiom's constant
//! loss, across a burst-length × burst-frequency impairment grid (with
//! efficiency and TCP-friendliness side-effect columns re-measured under
//! a reference impairment).
//!
//! Exits non-zero unless the headline holds: Robust-AIMD's tolerated
//! burst frequency degrades strictly slower than plain AIMD's as bursts
//! lengthen.
//!
//! Flags: `--json`, and the shared `--jobs N` / `--no-cache`.

use axcc_analysis::experiments::gauntlet;
use axcc_bench::budget;
use axcc_bench::runner::Bin;

fn main() {
    let mut bin = Bin::new("gen-gauntlet");
    let rep = gauntlet::run_gauntlet_with(bin.runner(), budget::GAUNTLET_STEPS);
    bin.section("gauntlet", &rep, &rep.render());
    bin.gate(
        rep.degrades_slower("R-AIMD", "AIMD(1,0.5)"),
        "Robust-AIMD degrades slower than AIMD",
    );
    std::process::exit(bin.finish());
}
