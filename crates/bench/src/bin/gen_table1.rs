//! Regenerate **Table 1** (protocol characterization).
//!
//! By default prints the theoretical table (worst-case + parameterized) at
//! the paper's reference link (100 Mbps, 42 ms RTT, 100 MSS ⇒ C = 350 MSS).
//!
//! Flags:
//! * `--simulate` — also measure each protocol's empirical 8-tuple in the
//!   fluid simulator and print it as a third section;
//! * `--json` — dump the table as JSON to stdout after the text rendering;
//! * `--jobs N`, `--no-cache` — sweep-engine controls (see `axcc_bench::runner`).

use axcc_analysis::experiments::table1::{empirical_table1_with, theoretical_table1};
use axcc_bench::runner::Bin;
use axcc_bench::{budget, has_flag};
use axcc_core::units::Bandwidth;
use axcc_core::LinkParams;

fn main() {
    let mut bin = Bin::new("gen-table1");
    let link = LinkParams::from_experiment(Bandwidth::Mbps(100.0), 42.0, 100.0);
    let n = 2;
    let table = if has_flag("--simulate") {
        bin.progress(&format!(
            "simulating 5 protocols x sweep configs ({} steps each)…",
            budget::TABLE1_STEPS
        ));
        empirical_table1_with(bin.runner(), link, n, budget::TABLE1_STEPS)
    } else {
        theoretical_table1(link.capacity(), link.buffer, n)
    };
    bin.section("table1", &table, &table.render());
    std::process::exit(bin.finish());
}
