//! Regenerate **Figure 1** (the Pareto frontier of fast-utilization α,
//! efficiency β, and TCP-friendliness `3(1−β)/(α(1+β))`).
//!
//! Prints the frontier surface over the default (α, β) grid and verifies
//! it is dominance-free. With `--validate`, each grid point's AIMD(α, β)
//! is additionally simulated (solo and against Reno) to confirm the
//! analytic surface is *feasible* — the paper's central claim about the
//! frontier.
//!
//! Flags: `--validate`, `--json`, and the shared `--jobs N` / `--no-cache`.

use axcc_analysis::experiments::figure1::{
    frontier_surface, validated_surface_with, DEFAULT_ALPHAS, DEFAULT_BETAS,
};
use axcc_bench::runner::Bin;
use axcc_bench::{budget, has_flag};
use axcc_core::units::Bandwidth;
use axcc_core::LinkParams;

fn main() {
    let mut bin = Bin::new("gen-figure1");
    let fig = if has_flag("--validate") {
        let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
        bin.progress(&format!(
            "validating {} grid points ({} steps each)…",
            DEFAULT_ALPHAS.len() * DEFAULT_BETAS.len(),
            budget::FIGURE1_STEPS
        ));
        validated_surface_with(
            bin.runner(),
            &DEFAULT_ALPHAS,
            &DEFAULT_BETAS,
            link,
            budget::FIGURE1_STEPS,
        )
    } else {
        frontier_surface(&DEFAULT_ALPHAS, &DEFAULT_BETAS)
    };
    bin.section("figure1", &fig, &fig.render());
    std::process::exit(bin.finish());
}
