//! Regenerate **Table 2** (TCP-friendliness of Robust-AIMD vs PCC).
//!
//! Runs the paper's full `(n ∈ {2,3,4}) × (BW ∈ {20,30,60,100} Mbps)` grid
//! — 42 ms RTT, 100-MSS buffer — with `n − 1` protocol senders sharing the
//! link with one TCP Reno sender, and prints the per-cell improvement
//! factor of Robust-AIMD(1, 0.8, 0.01) over PCC plus the average (the paper
//! reports 1.19x–2.75x, average 1.92x, Robust-AIMD winning every cell).
//!
//! Flags:
//! * `--packet` — use the packet-level backend (the closer Emulab
//!   analogue; slower) instead of the fluid model;
//! * `--paced` — packet-level with a *paced* PCC (the real PCC's sender
//!   class);
//! * `--json` — dump the grid as JSON after the text rendering;
//! * `--jobs N`, `--no-cache` — sweep-engine controls (see `axcc_bench::runner`).

use axcc_analysis::experiments::table2::{
    build_table2_fluid_with, build_table2_packet_paced_with, build_table2_packet_with,
};
use axcc_bench::runner::Bin;
use axcc_bench::{budget, has_flag};

fn main() {
    let mut bin = Bin::new("gen-table2");
    let table = if has_flag("--paced") {
        bin.progress(&format!(
            "running 12 cells at packet level with paced PCC ({}s each)…",
            budget::TABLE2_PACKET_SECS
        ));
        build_table2_packet_paced_with(bin.runner(), budget::TABLE2_PACKET_SECS)
    } else if has_flag("--packet") {
        bin.progress(&format!(
            "running 12 cells x 2 protocols at packet level ({}s each)…",
            budget::TABLE2_PACKET_SECS
        ));
        build_table2_packet_with(bin.runner(), budget::TABLE2_PACKET_SECS)
    } else {
        bin.progress(&format!(
            "running 12 cells x 2 protocols in the fluid model ({} steps each)…",
            budget::TABLE2_STEPS
        ));
        build_table2_fluid_with(bin.runner(), budget::TABLE2_STEPS)
    };
    bin.section("table2", &table, &table.render());
    std::process::exit(bin.finish());
}
