//! Benchmark the sweep engine itself and emit **BENCH_sweep.json**.
//!
//! For every experiment in the registry (smoke scale by default) this
//! measures three configurations with min-of-N interleaved timing (the
//! serial and parallel passes alternate within each repetition, so clock
//! drift and cache-warming bias hit both sides equally):
//!
//! 1. **serial** — one worker, cache disabled;
//! 2. **parallel** — `--jobs` workers (default: all cores), cache
//!    disabled too, so the comparison is symmetric and measures dispatch,
//!    not cache asymmetry;
//! 3. **warm** — a cached runner primed by one cold pass, then re-run, so
//!    every job is answered from the content-addressed store. The warm
//!    wall-clock divided by the job count is the engine's per-job
//!    *lookup* overhead.
//!
//! A separate **dispatch microbench** measures per-job dispatch cost with
//! no-op jobs at a fixed worker count, in three shapes: the pre-chunking
//! **per-job-channel baseline** (single-job claims + one mpsc round-trip
//! per result), the pool at `chunk = 1` (single-job claims, per-job slot
//! lock), and the pool at the auto chunk size. The reported
//! `overhead_reduction` is channel-baseline ÷ auto — the dispatch cost
//! chunked claiming removed, independent of any simulation cost.
//!
//! The snapshot also records [`ENGINE_REVISION`] and the host
//! parallelism; `--check PATH` validates an existing snapshot against the
//! current engine revision and **fails loudly on mismatch** — a stale
//! snapshot describes an engine that no longer exists, so CI should
//! regenerate rather than trust it.
//!
//! Flags:
//! * `--jobs N` — parallel worker count (0 = all cores; the default);
//! * `--paper` — full artifact scale instead of smoke scale;
//! * `--reps N` — timing repetitions per experiment (min is kept;
//!   default 5 smoke / 1 paper);
//! * `--only n1,n2,…` — restrict to a comma-separated experiment subset;
//! * `--min-speedup X` — exit 1 if the suite speedup lands below `X`;
//! * `--out PATH` — where to write the snapshot (default
//!   `BENCH_sweep.json`);
//! * `--check PATH` — validate an existing snapshot's engine revision
//!   instead of benchmarking.

use axcc_analysis::experiments::{registry, RunBudget};
use axcc_bench::has_flag;
use axcc_bench::runner::flag_value;
use axcc_sweep::pool::run_chunked_cancellable;
use axcc_sweep::{
    default_chunk_size, host_parallelism, Stopwatch, SweepRunner, ENGINE_REVISION, SHARD_COUNT,
};

/// Worker count of the dispatch microbench. Fixed (not host-derived) so
/// snapshots from different machines measure the same contention shape;
/// the pool is driven directly, so the runner's host clamp does not
/// apply.
const DISPATCH_WORKERS: usize = 4;

/// No-op jobs in the dispatch microbench — enough that per-job overhead
/// dominates thread startup.
const DISPATCH_JOBS: usize = 200_000;

fn die(msg: &str) -> ! {
    eprintln!("[bench-sweep] {msg}");
    std::process::exit(1);
}

/// Validate a snapshot file against the running engine revision.
fn check_snapshot(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    let v: serde_json::Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => die(&format!("{path} is not valid JSON: {e}")),
    };
    let Some(rev) = v["engine_revision"].as_u64() else {
        die(&format!("{path} has no engine_revision field"));
    };
    if rev != u64::from(ENGINE_REVISION) {
        die(&format!(
            "STALE SNAPSHOT: {path} was measured at engine revision {rev}, \
             but this build is revision {ENGINE_REVISION}. The numbers \
             describe an engine that no longer exists — regenerate with \
             `cargo run --release --bin bench-sweep`."
        ));
    }
    if v["totals"]["speedup"].as_f64().is_none() {
        die(&format!("{path} has no totals.speedup field"));
    }
    eprintln!("[bench-sweep] {path}: engine revision {rev} matches this build");
    std::process::exit(0);
}

/// Min-of-N interleaved wall-clock for two closures. The pair order
/// alternates between repetitions (a,b then b,a), so clock drift, CPU
/// frequency decay, and page-cache warming bias both sides equally.
/// Returns `(min_a, min_b)`.
fn time_pair(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut min_a = f64::INFINITY;
    let mut min_b = f64::INFINITY;
    for rep in 0..reps.max(1) {
        let mut run_a = |min_a: &mut f64| {
            let sw = Stopwatch::start();
            a();
            *min_a = min_a.min(sw.elapsed_secs());
        };
        let mut run_b = |min_b: &mut f64| {
            let sw = Stopwatch::start();
            b();
            *min_b = min_b.min(sw.elapsed_secs());
        };
        if rep % 2 == 0 {
            run_a(&mut min_a);
            run_b(&mut min_b);
        } else {
            run_b(&mut min_b);
            run_a(&mut min_a);
        }
    }
    (min_a, min_b)
}

/// Per-job cost (nanoseconds) of the engine's **pre-chunking dispatch
/// shape** — one channel round-trip per job. A submission thread feeds
/// single job indices through a work channel that workers pull off a
/// shared `Mutex<Receiver>` (the std-only work-queue idiom the old pool
/// used), and every `(index, result)` travels back through a result
/// channel to a collector that reassembles the slot vector. Min over
/// `reps` runs of [`DISPATCH_JOBS`] no-op jobs.
fn per_job_channel_ns(reps: usize) -> f64 {
    use std::sync::{mpsc, Mutex};
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let sw = Stopwatch::start();
        let (job_tx, job_rx) = mpsc::channel::<usize>();
        let job_rx = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, u64)>();
        // tidy-allow: determinism — this deliberately rebuilds the retired per-job-channel dispatch as a timing baseline; results are reassembled by index and only the wall-clock is reported.
        let slots = std::thread::scope(|scope| {
            for _ in 0..DISPATCH_WORKERS {
                let res_tx = res_tx.clone();
                let job_rx = &job_rx;
                scope.spawn(move || loop {
                    let claimed = match job_rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    let Ok(idx) = claimed else { break };
                    if res_tx.send((idx, idx as u64)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);
            for idx in 0..DISPATCH_JOBS {
                if job_tx.send(idx).is_err() {
                    break;
                }
            }
            drop(job_tx);
            let mut slots: Vec<Option<u64>> = vec![None; DISPATCH_JOBS];
            for (idx, v) in res_rx {
                slots[idx] = Some(v);
            }
            slots
        });
        let secs = sw.elapsed_secs();
        assert!(slots.iter().all(Option::is_some), "channel lost jobs");
        best = best.min(secs);
    }
    best / DISPATCH_JOBS as f64 * 1e9
}

/// Per-job dispatch cost (nanoseconds) of the pool at a given chunk size,
/// min over `reps` runs of [`DISPATCH_JOBS`] no-op jobs.
fn dispatch_per_job_ns(chunk: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let sw = Stopwatch::start();
        let out = run_chunked_cancellable(
            DISPATCH_WORKERS,
            DISPATCH_JOBS,
            chunk,
            |range, out| {
                for idx in range {
                    out.push(idx as u64);
                }
            },
            None,
        );
        let secs = sw.elapsed_secs();
        assert_eq!(out.map(|v| v.len()), Ok(DISPATCH_JOBS), "pool lost jobs");
        best = best.min(secs);
    }
    best / DISPATCH_JOBS as f64 * 1e9
}

fn main() {
    if let Some(path) = flag_value("--check") {
        check_snapshot(&path);
    }
    let workers = flag_value("--jobs")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let budget = if has_flag("--paper") {
        RunBudget::paper()
    } else {
        RunBudget::smoke()
    };
    let reps = flag_value("--reps")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if budget.smoke { 5 } else { 1 });
    let min_speedup = flag_value("--min-speedup").and_then(|v| v.parse::<f64>().ok());
    let only: Vec<String> = flag_value("--only")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let suite: Vec<_> = registry()
        .into_iter()
        .filter(|e| only.is_empty() || only.iter().any(|n| n == e.name))
        .collect();
    if suite.is_empty() {
        die("--only matched no experiments");
    }

    let mut experiments = Vec::new();
    let mut serial_total = 0.0;
    let mut parallel_total = 0.0;
    let mut warm_hits = 0u64;
    let mut warm_jobs = 0u64;
    let resolved_workers = SweepRunner::new(workers).workers();
    for exp in &suite {
        eprintln!("[bench-sweep] {} …", exp.name);

        // Interleaved min-of-N, both sides uncached (symmetric).
        let mut serial_report = None;
        let mut parallel_report = None;
        let (serial_secs, parallel_secs) = time_pair(
            reps,
            || {
                let r = SweepRunner::without_cache(1);
                serial_report = Some((exp.run)(&r, budget).report);
            },
            || {
                let r = SweepRunner::without_cache(workers);
                parallel_report = Some((exp.run)(&r, budget).report);
            },
        );

        // Warm pass: prime a cached runner, then re-run against the store.
        let cached = SweepRunner::new(workers);
        let _ = (exp.run)(&cached, budget);
        let jobs = cached.take_stats().jobs();
        let sw = Stopwatch::start();
        let warm_outcome = (exp.run)(&cached, budget);
        let warm_secs = sw.elapsed_secs();
        let warm = cached.take_stats();

        let serial_report = serial_report.unwrap_or_default();
        assert_eq!(
            Some(&serial_report),
            parallel_report.as_ref(),
            "{}: parallel report diverged from serial",
            exp.name
        );
        assert_eq!(
            serial_report, warm_outcome.report,
            "{}: warm-cache report diverged from serial",
            exp.name
        );

        serial_total += serial_secs;
        parallel_total += parallel_secs;
        warm_hits += warm.cache_hits;
        warm_jobs += warm.jobs();
        let speedup = if parallel_secs > 0.0 {
            serial_secs / parallel_secs
        } else {
            0.0
        };
        let jobs_per_sec = if parallel_secs > 0.0 {
            jobs as f64 / parallel_secs
        } else {
            0.0
        };
        let warm_per_job_ns = if jobs > 0 {
            warm_secs / jobs as f64 * 1e9
        } else {
            0.0
        };
        experiments.push(serde_json::json!({
            "name": exp.name,
            "jobs": jobs,
            "serial_secs": serial_secs,
            "parallel_secs": parallel_secs,
            "speedup": speedup,
            "jobs_per_sec": jobs_per_sec,
            "warm_secs": warm_secs,
            "warm_hit_rate": warm.hit_rate(),
            "warm_per_job_ns": warm_per_job_ns,
        }));
    }

    eprintln!("[bench-sweep] dispatch microbench …");
    let per_job_ns_channel = per_job_channel_ns(reps);
    let per_job_ns_chunk1 = dispatch_per_job_ns(1, reps);
    let auto_chunk = default_chunk_size(DISPATCH_JOBS, DISPATCH_WORKERS);
    let per_job_ns_auto = dispatch_per_job_ns(auto_chunk, reps);
    let overhead_reduction = if per_job_ns_auto > 0.0 {
        per_job_ns_channel / per_job_ns_auto
    } else {
        0.0
    };

    let suite_speedup = if parallel_total > 0.0 {
        serial_total / parallel_total
    } else {
        0.0
    };
    let suite_warm_hit_rate = if warm_jobs > 0 {
        warm_hits as f64 / warm_jobs as f64
    } else {
        0.0
    };
    let totals = serde_json::json!({
        "serial_secs": serial_total,
        "parallel_secs": parallel_total,
        "speedup": suite_speedup,
        "warm_hit_rate": suite_warm_hit_rate,
    });
    let scale = if budget.smoke { "smoke" } else { "paper" };
    let snapshot = serde_json::json!({
        "engine_revision": ENGINE_REVISION,
        "workers": resolved_workers,
        "host_parallelism": host_parallelism(),
        "store_shards": SHARD_COUNT,
        "scale": scale,
        "reps": reps,
        "dispatch": serde_json::json!({
            "workers": DISPATCH_WORKERS,
            "jobs": DISPATCH_JOBS,
            "auto_chunk": auto_chunk,
            "per_job_ns_channel": per_job_ns_channel,
            "per_job_ns_chunk1": per_job_ns_chunk1,
            "per_job_ns_auto": per_job_ns_auto,
            "overhead_reduction": overhead_reduction,
        }),
        "experiments": experiments,
        "totals": totals,
    });
    let rendered = match serde_json::to_string_pretty(&snapshot) {
        Ok(s) => s,
        Err(e) => die(&format!("JSON serialization failed: {e}")),
    };
    println!("{rendered}");
    if let Err(e) = std::fs::write(&out_path, format!("{rendered}\n")) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    eprintln!(
        "[bench-sweep] snapshot written to {out_path} ({suite_speedup:.2}x suite speedup, \
         {:.1}% warm hit rate, {overhead_reduction:.1}x dispatch-overhead reduction)",
        100.0 * suite_warm_hit_rate,
    );
    if let Some(gate) = min_speedup {
        if suite_speedup < gate {
            die(&format!(
                "suite speedup {suite_speedup:.3}x is below the --min-speedup gate {gate:.3}x"
            ));
        }
        eprintln!("[bench-sweep] speedup gate passed ({suite_speedup:.2}x >= {gate:.2}x)");
    }
}
