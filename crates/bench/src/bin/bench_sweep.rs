//! Benchmark the sweep engine itself and emit **BENCH_sweep.json**.
//!
//! For every experiment in the registry (smoke scale by default) this
//! measures three wall-clock configurations:
//!
//! 1. **serial** — one worker, cache disabled (the pre-sweep baseline);
//! 2. **parallel** — `--jobs` workers (default: all cores), cold cache;
//! 3. **warm** — the same runner again, so every job should be answered
//!    from the content-addressed cache.
//!
//! The JSON snapshot records per-experiment wall-clock, speedup, and the
//! warm-pass cache hit rate, plus suite totals. Reports are discarded —
//! this binary times the engine, it does not regenerate artifacts.
//!
//! Flags:
//! * `--jobs N` — parallel worker count (0 = all cores; the default);
//! * `--paper` — full artifact scale instead of smoke scale;
//! * `--out PATH` — where to write the snapshot (default `BENCH_sweep.json`).

use axcc_analysis::experiments::{registry, RunBudget};
use axcc_bench::has_flag;
use axcc_bench::runner::flag_value;
use axcc_sweep::{Stopwatch, SweepRunner, ENGINE_REVISION};

fn main() {
    let workers = flag_value("--jobs")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let budget = if has_flag("--paper") {
        RunBudget::paper()
    } else {
        RunBudget::smoke()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let mut experiments = Vec::new();
    let mut serial_total = 0.0;
    let mut parallel_total = 0.0;
    let mut warm_hits = 0u64;
    let mut warm_jobs = 0u64;
    let resolved_workers = SweepRunner::new(workers).workers();
    for exp in registry() {
        eprintln!("[bench-sweep] {} …", exp.name);

        let serial = SweepRunner::without_cache(1);
        let sw = Stopwatch::start();
        let serial_outcome = (exp.run)(&serial, budget);
        let serial_secs = sw.elapsed_secs();

        let parallel = SweepRunner::new(workers);
        let sw = Stopwatch::start();
        let parallel_outcome = (exp.run)(&parallel, budget);
        let parallel_secs = sw.elapsed_secs();
        let cold = parallel.take_stats();

        let sw = Stopwatch::start();
        let warm_outcome = (exp.run)(&parallel, budget);
        let warm_secs = sw.elapsed_secs();
        let warm = parallel.take_stats();

        assert_eq!(
            serial_outcome.report, parallel_outcome.report,
            "{}: parallel report diverged from serial",
            exp.name
        );
        assert_eq!(
            serial_outcome.report, warm_outcome.report,
            "{}: warm-cache report diverged from serial",
            exp.name
        );

        serial_total += serial_secs;
        parallel_total += parallel_secs;
        warm_hits += warm.cache_hits;
        warm_jobs += warm.jobs();
        let speedup = if parallel_secs > 0.0 {
            serial_secs / parallel_secs
        } else {
            0.0
        };
        experiments.push(serde_json::json!({
            "name": exp.name,
            "jobs": cold.jobs(),
            "serial_secs": serial_secs,
            "parallel_secs": parallel_secs,
            "speedup": speedup,
            "warm_secs": warm_secs,
            "warm_hit_rate": warm.hit_rate(),
        }));
    }

    let suite_speedup = if parallel_total > 0.0 {
        serial_total / parallel_total
    } else {
        0.0
    };
    let suite_warm_hit_rate = if warm_jobs > 0 {
        warm_hits as f64 / warm_jobs as f64
    } else {
        0.0
    };
    let totals = serde_json::json!({
        "serial_secs": serial_total,
        "parallel_secs": parallel_total,
        "speedup": suite_speedup,
        "warm_hit_rate": suite_warm_hit_rate,
    });
    let scale = if budget.smoke { "smoke" } else { "paper" };
    let snapshot = serde_json::json!({
        "engine_revision": ENGINE_REVISION,
        "workers": resolved_workers,
        "scale": scale,
        "experiments": experiments,
        "totals": totals,
    });
    let rendered = match serde_json::to_string_pretty(&snapshot) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[bench-sweep] JSON serialization failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{rendered}");
    if let Err(e) = std::fs::write(&out_path, format!("{rendered}\n")) {
        eprintln!("[bench-sweep] cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[bench-sweep] snapshot written to {out_path} ({}x suite speedup, {:.1}% warm hit rate)",
        (serial_total / parallel_total.max(1e-9)).round(),
        100.0 * warm_hits as f64 / warm_jobs.max(1) as f64
    );
}
