//! Regenerate the **§5.2 robustness shootout** and the **§6 extension
//! report** — the paper's prose results that have no table number:
//!
//! * *"Robust-AIMD(1,0.8) outperformed the evaluated AIMD and MIMD
//!   protocols (specifically, Reno, Cubic, Scalable) in terms of
//!   robustness and efficiency, and was outperformed by PCC"*;
//! * the future-work metrics (smoothness, responsiveness, latency across
//!   protocol classes), including the BBR and TFRC extensions;
//! * the in-network-queueing comparison (droptail vs ECN vs RED).
//!
//! Flags: `--json`.

use axcc_analysis::experiments::{aqm, extensions, shootout};
use axcc_bench::{budget, has_flag};

fn main() {
    let s = shootout::run_shootout(budget::THEOREM_STEPS);
    println!("{}", s.render());
    let e = extensions::run_extension_report(budget::THEOREM_STEPS);
    println!("{}", e.render());
    let q = aqm::run_aqm_comparison(2, 40.0);
    println!("{}", q.render());
    if has_flag("--json") {
        println!(
            "{}",
            serde_json::json!({
                "shootout": s,
                "extensions": e,
                "aqm": q,
            })
        );
    }
    if !s.ordering_holds() {
        std::process::exit(1);
    }
}
