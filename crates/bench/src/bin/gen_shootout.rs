//! Regenerate the **§5.2 robustness shootout** and the **§6 extension
//! report** — the paper's prose results that have no table number:
//!
//! * *"Robust-AIMD(1,0.8) outperformed the evaluated AIMD and MIMD
//!   protocols (specifically, Reno, Cubic, Scalable) in terms of
//!   robustness and efficiency, and was outperformed by PCC"*;
//! * the future-work metrics (smoothness, responsiveness, latency across
//!   protocol classes), including the BBR and TFRC extensions;
//! * the in-network-queueing comparison (droptail vs ECN vs RED).
//!
//! Flags: `--json`, and the shared `--jobs N` / `--no-cache`.

use axcc_analysis::experiments::{aqm, extensions, shootout};
use axcc_bench::budget;
use axcc_bench::runner::Bin;

fn main() {
    let mut bin = Bin::new("gen-shootout");
    let s = shootout::run_shootout_with(bin.runner(), budget::THEOREM_STEPS);
    bin.section("shootout", &s, &s.render());
    let e = extensions::run_extension_report_with(bin.runner(), budget::THEOREM_STEPS);
    bin.section("extensions", &e, &e.render());
    let q = aqm::run_aqm_comparison_with(bin.runner(), 2, 40.0);
    bin.section("aqm", &q, &q.render());
    bin.gate(s.ordering_holds(), "paper's robustness ordering holds");
    std::process::exit(bin.finish());
}
