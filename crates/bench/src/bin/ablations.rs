//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Robust-AIMD's ε knob** — sweep the loss tolerance and measure the
//!    robustness↔friendliness tradeoff (Theorem 3 made empirical: every
//!    notch of robustness is paid for in TCP-friendliness).
//! 2. **PCC's controller constants** — sweep the base step δ₀ and the
//!    rate-change amplifier and measure friendliness and convergence;
//!    shows the aggressiveness envelope is a controller property, not an
//!    accident of the default constants.
//! 3. **Theorem 2 tightness across the AIMD grid** — measured friendliness
//!    vs the bound 3(1−b)/(a(1+b)): the relative error column should stay
//!    in single-digit percent (the paper calls the bound tight).
//!
//! Flags: `--json`.

use axcc_analysis::estimators::{
    measure_friendliness_fluid, measure_robustness_fluid, measure_solo_fluid, SweepConfig,
    ROBUSTNESS_RATES,
};
use axcc_analysis::report::{fmt_score, TextTable};
use axcc_bench::has_flag;
use axcc_core::theory::theorems::theorem2_friendliness_upper_bound;
use axcc_core::units::Bandwidth;
use axcc_core::LinkParams;
use axcc_core::Protocol as _;
use axcc_protocols::{Aimd, Pcc, RobustAimd};

const STEPS: usize = 3000;

fn link() -> LinkParams {
    LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reno = Aimd::reno();
    let mut json = serde_json::Map::new();

    // --- 1. Robust-AIMD ε sweep -------------------------------------------
    println!("Ablation 1 — Robust-AIMD(1, 0.8, ε): robustness is paid in friendliness\n");
    let mut t = TextTable::new(["eps", "measured robustness", "friendliness to Reno"]);
    let mut sweep = Vec::new();
    for eps in [0.002, 0.005, 0.01, 0.02, 0.05] {
        let p = RobustAimd::new(1.0, 0.8, eps);
        let rob = measure_robustness_fluid(&p, &ROBUSTNESS_RATES, STEPS);
        let fr = measure_friendliness_fluid(&p, &reno, link(), 1, 1, STEPS, &[(1.0, 1.0)]);
        t.row([format!("{eps}"), fmt_score(rob), fmt_score(fr)]);
        sweep.push(serde_json::json!({"eps": eps, "robustness": rob, "friendliness": fr}));
    }
    println!("{}", t.render());
    json.insert("robust_aimd_eps_sweep".into(), sweep.into());

    // --- 2. PCC controller constants ---------------------------------------
    println!("\nAblation 2 — PCC controller: step size / amplification vs friendliness\n");
    let mut t = TextTable::new([
        "base step",
        "amplifier",
        "friendliness to Reno",
        "convergence",
    ]);
    let mut sweep = Vec::new();
    for (step, amp) in [
        (0.005, 0.5),
        (0.01, 0.0),
        (0.01, 0.5),
        (0.02, 0.5),
        (0.05, 1.0),
    ] {
        let p = Pcc::with_params(step, amp, (step * 8.0).min(0.5), 100.0);
        let fr = measure_friendliness_fluid(&p, &reno, link(), 1, 1, STEPS, &[(1.0, 1.0)]);
        let solo = measure_solo_fluid(&p, &SweepConfig::standard(link(), 2, STEPS));
        t.row([
            format!("{step}"),
            format!("{amp}"),
            fmt_score(fr),
            fmt_score(solo.convergence),
        ]);
        sweep.push(serde_json::json!({
            "base_step": step, "amplifier": amp,
            "friendliness": fr, "convergence": solo.convergence
        }));
    }
    println!("{}", t.render());
    json.insert("pcc_controller_sweep".into(), sweep.into());

    // --- 3. Theorem 2 tightness --------------------------------------------
    println!("\nAblation 3 — Theorem 2 tightness on the AIMD(a,b) grid\n");
    let mut t = TextTable::new(["protocol", "bound", "measured", "relative error"]);
    let mut sweep = Vec::new();
    for (a, b) in [
        (0.5, 0.5),
        (1.0, 0.5),
        (2.0, 0.5),
        (4.0, 0.5),
        (1.0, 0.7),
        (1.0, 0.9),
        (2.0, 0.8),
    ] {
        let p = Aimd::new(a, b);
        let bound = theorem2_friendliness_upper_bound(a, b);
        let measured = measure_friendliness_fluid(&p, &reno, link(), 1, 1, STEPS, &[(1.0, 1.0)]);
        let err = (measured - bound).abs() / bound;
        t.row([
            p.name(),
            fmt_score(bound),
            fmt_score(measured),
            format!("{:.1}%", err * 100.0),
        ]);
        sweep.push(serde_json::json!({
            "a": a, "b": b, "bound": bound, "measured": measured, "rel_error": err
        }));
    }
    println!("{}", t.render());
    json.insert("theorem2_tightness".into(), sweep.into());

    // --- 4. Synchronized vs per-packet feedback ----------------------------
    println!("\nAblation 4 — feedback synchronization (the §6 model extension):");
    println!("fairness of two same-protocol senders from a 4:1 start\n");
    let mut t = TextTable::new(["protocol", "synchronized", "per-packet"]);
    let mut sweep = Vec::new();
    for name in ["reno", "scalable", "cubic"] {
        let fairness =
            |mode: axcc_fluidsim::FeedbackMode| -> Result<f64, Box<dyn std::error::Error>> {
                let proto = axcc_protocols::registry::resolve(name)?;
                let trace = axcc_fluidsim::Scenario::new(link())
                    .sender(
                        axcc_fluidsim::SenderConfig::new(proto.clone_box()).initial_window(120.0),
                    )
                    .sender(axcc_fluidsim::SenderConfig::new(proto).initial_window(30.0))
                    .feedback(mode)
                    .seed(5)
                    .steps(STEPS)
                    .run();
                let tail = trace.tail_start(0.5);
                Ok(axcc_core::axioms::fairness::measured_fairness(&trace, tail))
            };
        let sync = fairness(axcc_fluidsim::FeedbackMode::Synchronized)?;
        let unsync = fairness(axcc_fluidsim::FeedbackMode::PerPacket)?;
        t.row([name.to_string(), fmt_score(sync), fmt_score(unsync)]);
        sweep.push(serde_json::json!({"protocol": name, "sync": sync, "per_packet": unsync}));
    }
    println!("{}", t.render());
    println!("MIMD's worst-case 0-fairness needs the model's synchronized losses;");
    println!("per-packet feedback (losses fall where the packets are) restores convergence.\n");
    json.insert("feedback_mode_sweep".into(), sweep.into());

    if has_flag("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Object(json))?
        );
    }
    Ok(())
}
