//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Robust-AIMD's ε knob** — sweep the loss tolerance and measure the
//!    robustness↔friendliness tradeoff (Theorem 3 made empirical: every
//!    notch of robustness is paid for in TCP-friendliness).
//! 2. **PCC's controller constants** — sweep the base step δ₀ and the
//!    rate-change amplifier and measure friendliness and convergence;
//!    shows the aggressiveness envelope is a controller property, not an
//!    accident of the default constants.
//! 3. **Theorem 2 tightness across the AIMD grid** — measured friendliness
//!    vs the bound 3(1−b)/(a(1+b)): the relative error column should stay
//!    in single-digit percent (the paper calls the bound tight).
//! 4. **Synchronized vs per-packet feedback** — the §6 model extension.
//!
//! Flags: `--json`, and the shared `--jobs N` / `--no-cache`.

use axcc_analysis::estimators::{
    measure_friendliness_fluid, measure_robustness_fluid, measure_solo_fluid, SweepConfig,
    ROBUSTNESS_RATES,
};
use axcc_analysis::report::{fmt_score, TextTable};
use axcc_bench::runner::Bin;
use axcc_core::theory::theorems::theorem2_friendliness_upper_bound;
use axcc_core::units::Bandwidth;
use axcc_core::LinkParams;
use axcc_core::Protocol;
use axcc_protocols::{Aimd, Cubic, Mimd, Pcc, RobustAimd};

const STEPS: usize = 3000;

fn link() -> LinkParams {
    LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0)
}

fn main() {
    let mut bin = Bin::new("ablations");

    // --- 1. Robust-AIMD ε sweep -------------------------------------------
    let eps_grid = [0.002, 0.005, 0.01, 0.02, 0.05];
    let measured = bin
        .runner()
        .sweep("ablations/robust-eps", &eps_grid, |&eps| {
            let p = RobustAimd::new(1.0, 0.8, eps);
            let rob = measure_robustness_fluid(&p, &ROBUSTNESS_RATES, STEPS);
            let fr =
                measure_friendliness_fluid(&p, &Aimd::reno(), link(), 1, 1, STEPS, &[(1.0, 1.0)]);
            (rob, fr)
        });
    let mut t = TextTable::new(["eps", "measured robustness", "friendliness to Reno"]);
    let mut sweep = Vec::new();
    for (eps, (rob, fr)) in eps_grid.iter().zip(&measured) {
        t.row([format!("{eps}"), fmt_score(*rob), fmt_score(*fr)]);
        sweep.push(serde_json::json!({"eps": eps, "robustness": rob, "friendliness": fr}));
    }
    bin.section(
        "robust_aimd_eps_sweep",
        &sweep,
        &format!(
            "Ablation 1 — Robust-AIMD(1, 0.8, ε): robustness is paid in friendliness\n\n{}",
            t.render()
        ),
    );

    // --- 2. PCC controller constants ---------------------------------------
    let pcc_grid = [
        (0.005, 0.5),
        (0.01, 0.0),
        (0.01, 0.5),
        (0.02, 0.5),
        (0.05, 1.0),
    ];
    let measured = bin
        .runner()
        .sweep("ablations/pcc-controller", &pcc_grid, |&(step, amp)| {
            let p = Pcc::with_params(step, amp, (step * 8.0).min(0.5), 100.0);
            let fr =
                measure_friendliness_fluid(&p, &Aimd::reno(), link(), 1, 1, STEPS, &[(1.0, 1.0)]);
            let solo = measure_solo_fluid(&p, &SweepConfig::standard(link(), 2, STEPS));
            (fr, solo.convergence)
        });
    let mut t = TextTable::new([
        "base step",
        "amplifier",
        "friendliness to Reno",
        "convergence",
    ]);
    let mut sweep = Vec::new();
    for ((step, amp), (fr, conv)) in pcc_grid.iter().zip(&measured) {
        t.row([
            format!("{step}"),
            format!("{amp}"),
            fmt_score(*fr),
            fmt_score(*conv),
        ]);
        sweep.push(serde_json::json!({
            "base_step": step, "amplifier": amp,
            "friendliness": fr, "convergence": conv
        }));
    }
    bin.section(
        "pcc_controller_sweep",
        &sweep,
        &format!(
            "\nAblation 2 — PCC controller: step size / amplification vs friendliness\n\n{}",
            t.render()
        ),
    );

    // --- 3. Theorem 2 tightness --------------------------------------------
    let aimd_grid = [
        (0.5, 0.5),
        (1.0, 0.5),
        (2.0, 0.5),
        (4.0, 0.5),
        (1.0, 0.7),
        (1.0, 0.9),
        (2.0, 0.8),
    ];
    let measured = bin
        .runner()
        .sweep("ablations/theorem2-tightness", &aimd_grid, |&(a, b)| {
            let p = Aimd::new(a, b);
            measure_friendliness_fluid(&p, &Aimd::reno(), link(), 1, 1, STEPS, &[(1.0, 1.0)])
        });
    let mut t = TextTable::new(["protocol", "bound", "measured", "relative error"]);
    let mut sweep = Vec::new();
    for ((a, b), fr) in aimd_grid.iter().zip(&measured) {
        let bound = theorem2_friendliness_upper_bound(*a, *b);
        let err = (fr - bound).abs() / bound;
        t.row([
            Aimd::new(*a, *b).name(),
            fmt_score(bound),
            fmt_score(*fr),
            format!("{:.1}%", err * 100.0),
        ]);
        sweep.push(serde_json::json!({
            "a": a, "b": b, "bound": bound, "measured": fr, "rel_error": err
        }));
    }
    bin.section(
        "theorem2_tightness",
        &sweep,
        &format!(
            "\nAblation 3 — Theorem 2 tightness on the AIMD(a,b) grid\n\n{}",
            t.render()
        ),
    );

    // --- 4. Synchronized vs per-packet feedback ----------------------------
    let protocols = ["reno", "scalable", "cubic"];
    let measured = bin
        .runner()
        .sweep("ablations/feedback-mode", &protocols, |name| {
            let build = || -> Box<dyn Protocol> {
                match *name {
                    "scalable" => Box::new(Mimd::scalable()),
                    "cubic" => Box::new(Cubic::linux()),
                    _ => Box::new(Aimd::reno()),
                }
            };
            let fairness = |mode: axcc_fluidsim::FeedbackMode| -> f64 {
                let trace = axcc_fluidsim::Scenario::new(link())
                    .sender(axcc_fluidsim::SenderConfig::new(build()).initial_window(120.0))
                    .sender(axcc_fluidsim::SenderConfig::new(build()).initial_window(30.0))
                    .feedback(mode)
                    .seed(5)
                    .steps(STEPS)
                    .run();
                let tail = trace.tail_start(0.5);
                axcc_core::axioms::fairness::measured_fairness(&trace, tail)
            };
            (
                fairness(axcc_fluidsim::FeedbackMode::Synchronized),
                fairness(axcc_fluidsim::FeedbackMode::PerPacket),
            )
        });
    let mut t = TextTable::new(["protocol", "synchronized", "per-packet"]);
    let mut sweep = Vec::new();
    for (name, (sync, unsync)) in protocols.iter().zip(&measured) {
        t.row([name.to_string(), fmt_score(*sync), fmt_score(*unsync)]);
        sweep.push(serde_json::json!({"protocol": name, "sync": sync, "per_packet": unsync}));
    }
    bin.section(
        "feedback_mode_sweep",
        &sweep,
        &format!(
            "\nAblation 4 — feedback synchronization (the §6 model extension):\n\
             fairness of two same-protocol senders from a 4:1 start\n\n{}\
             MIMD's worst-case 0-fairness needs the model's synchronized losses;\n\
             per-packet feedback (losses fall where the packets are) restores convergence.\n",
            t.render()
        ),
    );

    std::process::exit(bin.finish());
}
