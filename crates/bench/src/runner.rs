//! Shared scaffolding for the `gen_*` experiment binaries.
//!
//! Every binary used to carry the same boilerplate: parse flags, run an
//! experiment, print its report, optionally append `--json`, and exit
//! non-zero when a headline predicate fails. [`Bin`] centralizes that,
//! and adds the sweep engine: each binary gets a [`SweepRunner`] built
//! from the shared `--jobs N` / `--no-cache` flags, so every artifact
//! regeneration can fan out across cores and reuse cached results.
//!
//! Stdout discipline: report text (and `--json` output) go to stdout and
//! are deterministic — redirecting a binary into `results/` must produce
//! byte-identical files regardless of worker count. Progress lines and
//! the timing footer go to stderr.

use crate::has_flag;
use axcc_sweep::{Stopwatch, SweepRunner};
use serde::Serialize;

/// Value of a `--flag N` or `--flag=N` argument, if present.
pub fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().peekable();
    while let Some(a) = args.next() {
        if a == flag {
            return args.peek().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Shared driver state for one experiment binary.
pub struct Bin {
    name: &'static str,
    runner: SweepRunner,
    json: bool,
    sections: serde_json::Map,
    failed: Vec<&'static str>,
    stopwatch: Stopwatch,
}

impl Bin {
    /// Parse the shared flags (`--jobs N`, `--no-cache`, `--json`) and
    /// build the sweep runner. `--jobs 0` uses all cores; the default is
    /// serial, which keeps the binaries' historical behaviour.
    pub fn new(name: &'static str) -> Self {
        let jobs = flag_value("--jobs")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1);
        let runner = if has_flag("--no-cache") {
            SweepRunner::without_cache(jobs)
        } else {
            SweepRunner::new(jobs)
        };
        Bin {
            name,
            runner,
            json: has_flag("--json"),
            sections: serde_json::Map::new(),
            failed: Vec::new(),
            stopwatch: Stopwatch::start(),
        }
    }

    /// The binary's sweep runner — pass to the experiments' `*_with`
    /// entry points.
    pub fn runner(&self) -> &SweepRunner {
        &self.runner
    }

    /// A progress note (stderr, so stdout artifacts stay deterministic).
    pub fn progress(&self, msg: &str) {
        eprintln!("[{}] {msg}", self.name);
    }

    /// Print one report section to stdout and stash its JSON form for a
    /// `--json` dump at the end.
    pub fn section<T: Serialize>(&mut self, key: &str, value: &T, text: &str) {
        println!("{text}");
        if self.json {
            self.sections
                .insert(key.to_string(), serde_json::to_value(value));
        }
    }

    /// Record a headline predicate; any failure turns into exit code 1.
    pub fn gate(&mut self, ok: bool, what: &'static str) {
        if !ok {
            self.failed.push(what);
        }
    }

    /// Dump JSON (if requested), print the timing footer, and return the
    /// process exit code.
    pub fn finish(self) -> i32 {
        if self.json {
            match serde_json::to_string_pretty(&serde_json::Value::Object(self.sections)) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("[{}] JSON serialization failed: {e}", self.name);
                    return 1;
                }
            }
        }
        let stats = self.runner.stats();
        eprintln!(
            "[{}] {} jobs over {} workers in {:.2} s ({} cached, {:.1}% hit rate)",
            self.name,
            stats.jobs(),
            self.runner.workers(),
            self.stopwatch.elapsed_secs(),
            stats.cache_hits,
            100.0 * stats.hit_rate(),
        );
        if self.failed.is_empty() {
            0
        } else {
            eprintln!("[{}] FAILED: {}", self.name, self.failed.join(", "));
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_accumulate_into_exit_code() {
        let mut bin = Bin::new("test");
        bin.gate(true, "fine");
        assert_eq!(bin.runner().workers(), 1);
        let mut failing = Bin::new("test");
        failing.gate(false, "headline");
        assert_eq!(failing.finish(), 1);
    }

    #[test]
    fn flag_value_missing_is_none() {
        assert_eq!(flag_value("--definitely-not-passed"), None);
    }
}
