//! # axcc-bench — experiment binaries and Criterion benches
//!
//! One regeneration target per paper artifact (see DESIGN.md §4):
//!
//! | Target | Artifact | Invocation |
//! |---|---|---|
//! | `gen-table1` | Table 1 | `cargo run -p axcc-bench --bin gen-table1 [-- --simulate]` |
//! | `emulab-validation` | §5.1 validation grid | `cargo run --release -p axcc-bench --bin emulab-validation [-- --quick]` |
//! | `gen-table2` | Table 2 | `cargo run --release -p axcc-bench --bin gen-table2 [-- --packet]` |
//! | `gen-figure1` | Figure 1 | `cargo run -p axcc-bench --bin gen-figure1 [-- --validate]` |
//! | `check-theorems` | Claim 1, Theorems 1–5 | `cargo run -p axcc-bench --bin check-theorems` |
//! | `bench-sweep` | BENCH_sweep.json | `cargo run --release -p axcc-bench --bin bench-sweep` |
//!
//! Every binary accepts `--json` to additionally dump machine-readable
//! results (used to populate EXPERIMENTS.md), plus the shared sweep
//! flags `--jobs N` (0 = all cores; default serial) and `--no-cache` —
//! see [`runner`] for the shared scaffolding and the stdout/stderr
//! discipline that keeps redirected artifacts byte-identical across
//! worker counts.
//!
//! The Criterion benches (`cargo bench -p axcc-bench`) time the same
//! regeneration paths — one bench per table/figure plus a simulator
//! throughput bench — so performance regressions in the engines or the
//! harness show up in CI.

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub mod runner;

/// Shared run lengths so the binaries and benches exercise identical
/// workloads.
pub mod budget {
    /// Fluid-model steps for Table 1 empirical scoring.
    pub const TABLE1_STEPS: usize = 4000;
    /// Fluid-model steps per Table 2 cell.
    pub const TABLE2_STEPS: usize = 4000;
    /// Packet-level seconds per Table 2 cell.
    pub const TABLE2_PACKET_SECS: f64 = 60.0;
    /// Fluid-model steps per Figure 1 grid point.
    pub const FIGURE1_STEPS: usize = 3000;
    /// Fluid-model steps per theorem check.
    pub const THEOREM_STEPS: usize = 3000;
    /// Minimum fluid-model steps per gauntlet robustness cell (cells with
    /// rare bursts run longer — see `axcc_analysis::experiments::gauntlet`).
    pub const GAUNTLET_STEPS: usize = 2500;
}

/// Minimal CLI-flag helper (the binaries take only boolean flags, so a
/// dependency-free scan is enough).
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

// Compile-time budget sanity: the binaries must never ship with budgets
// too small to converge (the axioms' tails need post-transient data).
const _: () = {
    use budget::*;
    assert!(TABLE1_STEPS >= 1000);
    assert!(TABLE2_STEPS >= 1000);
    assert!(FIGURE1_STEPS >= 1000);
    assert!(THEOREM_STEPS >= 1000);
    assert!(GAUNTLET_STEPS >= 1000);
};

#[cfg(test)]
mod tests {
    #[test]
    fn packet_budget_is_sane() {
        // Kept as a runtime test deliberately (f64 const assertions read
        // poorly); silence the constant-value lint via a binding.
        let secs = super::budget::TABLE2_PACKET_SECS;
        assert!(secs >= 10.0);
    }
}
