//! Criterion bench for the Figure 1 regeneration path: the analytic
//! surface (pure closed forms + dominance check) and one validated grid
//! point (two fluid simulations).

use axcc_analysis::experiments::figure1::{
    frontier_surface, validated_surface, DEFAULT_ALPHAS, DEFAULT_BETAS,
};
use axcc_core::LinkParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_surface(c: &mut Criterion) {
    c.bench_function("figure1/analytic_surface_25pts", |b| {
        b.iter(|| {
            let fig = frontier_surface(black_box(&DEFAULT_ALPHAS), black_box(&DEFAULT_BETAS));
            black_box(fig.dominated_count())
        })
    });
}

fn bench_validated_point(c: &mut Criterion) {
    let link = LinkParams::new(1000.0, 0.05, 20.0);
    let mut group = c.benchmark_group("figure1/validated_point");
    group.sample_size(10);
    group.bench_function("aimd_1_05_800steps", |b| {
        b.iter(|| black_box(validated_surface(&[1.0], &[0.5], link, 800)))
    });
    group.finish();
}

criterion_group!(benches, bench_surface, bench_validated_point);
criterion_main!(benches);
