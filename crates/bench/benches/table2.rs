//! Criterion bench for the Table 2 regeneration path: one friendliness
//! cell (1 protocol sender + 1 Reno) in each backend, at reduced budgets.

use axcc_analysis::estimators::{measure_friendliness_fluid, measure_friendliness_packet};
use axcc_core::units::Bandwidth;
use axcc_core::LinkParams;
use axcc_protocols::{Aimd, Pcc, RobustAimd};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cell_link() -> LinkParams {
    LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0)
}

fn bench_fluid_cell(c: &mut Criterion) {
    let link = cell_link();
    let reno = Aimd::reno();
    let mut group = c.benchmark_group("table2/fluid_cell");
    group.sample_size(10);
    group.bench_function("robust_aimd_vs_reno", |b| {
        let robust = RobustAimd::table2();
        b.iter(|| {
            black_box(measure_friendliness_fluid(
                &robust,
                &reno,
                link,
                1,
                1,
                1000,
                &[(1.0, 1.0)],
            ))
        })
    });
    group.bench_function("pcc_vs_reno", |b| {
        let pcc = Pcc::new();
        b.iter(|| {
            black_box(measure_friendliness_fluid(
                &pcc,
                &reno,
                link,
                1,
                1,
                1000,
                &[(1.0, 1.0)],
            ))
        })
    });
    group.finish();
}

fn bench_packet_cell(c: &mut Criterion) {
    let link = cell_link();
    let reno = Aimd::reno();
    let mut group = c.benchmark_group("table2/packet_cell");
    group.sample_size(10);
    group.bench_function("robust_aimd_vs_reno_10s", |b| {
        let robust = RobustAimd::table2();
        b.iter(|| {
            black_box(measure_friendliness_packet(
                &robust, &reno, link, 1, 1, 10.0, 0,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fluid_cell, bench_packet_cell);
criterion_main!(benches);
