//! Criterion bench for the Table 1 regeneration path.
//!
//! Times (a) the closed-form evaluation of every Table 1 cell and (b) the
//! per-protocol empirical scoring sweep that the `gen-table1 --simulate`
//! binary runs, at a reduced step budget so the bench stays in seconds.

use axcc_analysis::estimators::{measure_solo_fluid, SweepConfig};
use axcc_analysis::experiments::table1::{table1_specs, theoretical_table1};
use axcc_core::LinkParams;
use axcc_protocols::build_protocol;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_theory(c: &mut Criterion) {
    c.bench_function("table1/theory_full_table", |b| {
        b.iter(|| black_box(theoretical_table1(black_box(350.0), black_box(100.0), 3)))
    });
}

fn bench_empirical_rows(c: &mut Criterion) {
    let link = LinkParams::new(1000.0, 0.05, 20.0);
    let mut group = c.benchmark_group("table1/empirical_row");
    group.sample_size(10);
    for spec in table1_specs() {
        group.bench_function(spec.name(), |b| {
            b.iter_batched(
                || build_protocol(&spec),
                |proto| {
                    black_box(measure_solo_fluid(
                        proto.as_ref(),
                        &SweepConfig::standard(link, 2, 500),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theory, bench_empirical_rows);
criterion_main!(benches);
