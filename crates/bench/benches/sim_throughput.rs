//! Simulator throughput benches: raw engine speed for both substrates.
//!
//! * fluid model: steps/second for 1, 4 and 16 Reno senders;
//! * packet level: simulated seconds/second on a paper-grade link.
//!
//! These catch performance regressions in the inner loops (event heap,
//! queue, protocol dispatch) that the experiment-path benches would blur.

use axcc_core::units::Bandwidth;
use axcc_core::LinkParams;
use axcc_packetsim::PacketScenario;
use axcc_protocols::Aimd;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_fluid_engine(c: &mut Criterion) {
    let link = LinkParams::new(1000.0, 0.05, 20.0);
    let mut group = c.benchmark_group("engine/fluid");
    for n in [1usize, 4, 16] {
        group.throughput(Throughput::Elements(2000));
        group.bench_function(format!("reno_x{n}_2000steps"), |b| {
            b.iter(|| {
                let trace = axcc_fluidsim::Scenario::new(link)
                    .homogeneous(&Aimd::reno(), n, 1.0)
                    .steps(2000)
                    .run();
                black_box(trace.total_window.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_packet_engine(c: &mut Criterion) {
    let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
    let mut group = c.benchmark_group("engine/packet");
    group.sample_size(10);
    group.bench_function("reno_x2_10s_20mbps", |b| {
        b.iter(|| {
            let out = PacketScenario::new(link)
                .homogeneous(&Aimd::reno(), 2)
                .duration_secs(10.0)
                .run();
            black_box(out.flows[0].acked)
        })
    });
    group.finish();
}

fn bench_network_engine(c: &mut Criterion) {
    use axcc_fluidsim::{FlowConfig, NetScenario, Topology};
    let hop = LinkParams::new(1000.0, 0.05, 20.0);
    let mut group = c.benchmark_group("engine/network");
    group.bench_function("parking_lot_3hops_2000steps", |b| {
        b.iter(|| {
            let mut sc = NetScenario::new(Topology::parking_lot(3, hop)).steps(2000);
            sc = sc.flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1, 2]));
            for l in 0..3 {
                sc = sc.flow(FlowConfig::new(Box::new(Aimd::reno()), vec![l]));
            }
            let net = sc.run();
            black_box(net.flow_goodput(0, net.tail_start(0.5)))
        })
    });
    group.finish();
}

fn bench_paced_engine(c: &mut Criterion) {
    use axcc_packetsim::PacketSenderConfig;
    use axcc_protocols::Pcc;
    let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
    let mut group = c.benchmark_group("engine/paced");
    group.sample_size(10);
    group.bench_function("pcc_paced_10s_20mbps", |b| {
        b.iter(|| {
            let out = PacketScenario::new(link)
                .sender(PacketSenderConfig::new(Box::new(Pcc::new())).paced())
                .duration_secs(10.0)
                .run();
            black_box(out.flows[0].acked)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fluid_engine,
    bench_packet_engine,
    bench_network_engine,
    bench_paced_engine
);
criterion_main!(benches);
