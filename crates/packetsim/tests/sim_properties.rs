//! Property tests for the packet-level engine: conservation, buffer
//! bounds, determinism and timing sanity for arbitrary scenarios.

#![allow(clippy::float_cmp)] // exact comparisons are deliberate in tests
use axcc_core::protocol::MAX_WINDOW;
use axcc_core::LinkParams;
use axcc_packetsim::{PacketScenario, PacketSenderConfig};
use axcc_protocols::registry::resolve;
use proptest::prelude::*;

fn arb_protocol_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("reno"),
        Just("cubic"),
        Just("scalable"),
        Just("robust-aimd"),
        Just("pcc"),
        Just("aimd(2,0.7)"),
        Just("bin(1,0.5,1,0)"),
    ]
}

fn arb_link() -> impl Strategy<Value = LinkParams> {
    // Keep event counts bounded: ≤ 5000 MSS/s for ≤ 4 s.
    (500.0f64..5000.0, 0.005f64..0.08, 0.0f64..120.0)
        .prop_map(|(b, th, tau)| LinkParams::new(b, th, tau))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation, buffer bound, and valid traces for arbitrary mixes,
    /// stagger, wire loss and seeds.
    #[test]
    fn conservation_and_bounds(
        link in arb_link(),
        names in proptest::collection::vec(arb_protocol_name(), 1..4),
        stagger in 0.0f64..1.0,
        wire in 0.0f64..0.15,
        seed in any::<u64>(),
    ) {
        let mut sc = PacketScenario::new(link)
            .duration_secs(4.0)
            .wire_loss(wire)
            .seed(seed);
        for (i, name) in names.iter().enumerate() {
            sc = sc.sender(
                PacketSenderConfig::new(resolve(name).unwrap())
                    .start_at_secs(i as f64 * stagger),
            );
        }
        let out = sc.run();
        prop_assert!(out.conservation_ok());
        prop_assert!(out.queue.max_depth as f64 <= link.buffer.round());
        prop_assert_eq!(out.trace.validate(MAX_WINDOW), Ok(()));
        // Every flow that started made progress.
        for f in &out.flows {
            prop_assert!(f.sent > 0);
        }
        // Aggregate sanity: total acked cannot exceed what the link can
        // carry in the duration (plus one BDP of slack).
        let acked: u64 = out.flows.iter().map(|f| f.acked).sum();
        let cap = link.bandwidth * 4.0 + link.capacity() + 1.0;
        prop_assert!((acked as f64) <= cap, "acked {acked} > capacity {cap}");
    }

    /// Bit-exact determinism for arbitrary scenarios.
    #[test]
    fn determinism(
        link in arb_link(),
        name in arb_protocol_name(),
        wire in 0.0f64..0.1,
        seed in any::<u64>(),
    ) {
        let run = || {
            let out = PacketScenario::new(link)
                .homogeneous(resolve(name).unwrap().as_ref(), 2)
                .duration_secs(3.0)
                .wire_loss(wire)
                .seed(seed)
                .run();
            (out.trace, out.flows, out.queue)
        };
        prop_assert_eq!(run(), run());
    }

    /// RTT samples are physically possible: at least the propagation floor
    /// plus one serialization, at most floor + full-buffer drain + one
    /// serialization.
    #[test]
    fn rtt_samples_within_physical_bounds(
        link in arb_link(),
        name in arb_protocol_name(),
    ) {
        let out = PacketScenario::new(link)
            .homogeneous(resolve(name).unwrap().as_ref(), 2)
            .duration_secs(4.0)
            .run();
        let ser = 1.0 / link.bandwidth;
        let min_possible = link.min_rtt();
        let max_possible = link.min_rtt() + (link.buffer.round() + 2.0) * ser;
        for i in 0..out.trace.senders.len() {
            for &r in out.trace.sender_rtt(i) {
                prop_assert!(r >= min_possible - 1e-9, "rtt {r} < floor {min_possible}");
                prop_assert!(r <= max_possible + 1e-9, "rtt {r} > ceiling {max_possible}");
            }
        }
    }

    /// Without wire loss, a drop implies the queue really was full at some
    /// point: drops can only happen when offered load exceeds the buffer.
    #[test]
    fn drops_imply_full_queue(
        link in arb_link(),
        name in arb_protocol_name(),
    ) {
        let out = PacketScenario::new(link)
            .homogeneous(resolve(name).unwrap().as_ref(), 3)
            .duration_secs(4.0)
            .run();
        if out.queue.dropped > 0 {
            prop_assert_eq!(out.queue.max_depth as f64, link.buffer.round());
        }
        prop_assert_eq!(out.queue.wire_lost, 0);
    }
}
