//! Composable network-fault injection for the packet-level engine.
//!
//! The paper's Metric VI ("robustness") asks whether a protocol keeps
//! transmitting under *non-congestion* loss. Real adverse networks are
//! nastier than a uniform Bernoulli coin: losses arrive in bursts
//! (wireless fades), ACKs get lost too, feedback is jittered and
//! reordered, and link capacity flaps or disappears outright. This module
//! models each of those impairments as an independent, seeded process so
//! experiments can compose them into a reproducible "gauntlet":
//!
//! * [`WireLoss`] — per-packet loss on the data path: uniform Bernoulli
//!   or two-state Gilbert–Elliott bursty loss (a single chain per link,
//!   stepped per departing packet).
//! * ACK-path loss — the same [`WireLoss`] family applied to the reverse
//!   path. A lost ACK is surfaced to the sender as a loss notification
//!   after a 2× feedback-delay timeout (the retransmission-timer
//!   abstraction), so packet conservation still holds.
//! * Feedback **jitter** — a uniform extra delay on each delivered ACK.
//! * **Reordering** — a fraction of ACKs take a fixed detour and arrive
//!   late (and hence out of order relative to later packets).
//! * **Outages** — `[from, to)` windows during which every departing
//!   packet is lost (checked before any RNG draw, so an outage does not
//!   perturb the random stream).
//! * **Capacity flaps** — scheduled bandwidth changes; the bottleneck's
//!   serialization time follows the active rate.
//!
//! All randomness comes from the engine's single seeded ChaCha8 stream,
//! and every impairment draws only when it is actually configured, so a
//! plan with (say) only data loss consumes exactly the draws the
//! pre-fault-layer engine did — old seeds reproduce bit-identically.

use axcc_core::ScenarioError;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A per-packet loss model for one direction of the wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WireLoss {
    /// No loss (and no RNG draws).
    None,
    /// Independent per-packet loss with the given probability.
    Bernoulli {
        /// Drop probability per packet, in `[0, 1)`.
        rate: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) bursty loss: a mostly-clean
    /// *good* state and a lossy *bad* state with geometric sojourns. The
    /// chain advances once per packet, so `1/p_exit` is the mean burst
    /// length in packets.
    GilbertElliott {
        /// P(good → bad) per packet, in `[0, 1]`.
        p_enter: f64,
        /// P(bad → good) per packet, in `(0, 1]`.
        p_exit: f64,
        /// Drop probability in the good state, in `[0, 1)` (usually 0).
        loss_good: f64,
        /// Drop probability in the bad state, in `[0, 1)`.
        loss_bad: f64,
    },
}

impl WireLoss {
    /// A Gilbert–Elliott model hitting a long-run `mean_rate` with mean
    /// burst length `burst_len` packets and bad-state drop probability
    /// `loss_bad` (good state clean). Same construction as the fluid
    /// simulator's `LossModel::bursty`; `burst_len = 1` is the memoryless
    /// baseline, so sweeping `burst_len` isolates burstiness.
    pub fn bursty(mean_rate: f64, burst_len: f64, loss_bad: f64) -> Self {
        let pi_bad = if loss_bad > 0.0 {
            mean_rate / loss_bad
        } else {
            f64::NAN
        };
        let p_exit = if burst_len > 0.0 {
            1.0 / burst_len
        } else {
            f64::NAN
        };
        let p_enter = pi_bad * p_exit / (1.0 - pi_bad);
        WireLoss::GilbertElliott {
            p_enter,
            p_exit,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// The long-run mean drop probability.
    pub fn nominal_rate(&self) -> f64 {
        match *self {
            WireLoss::None => 0.0,
            WireLoss::Bernoulli { rate } => rate,
            WireLoss::GilbertElliott {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                let pi_bad = p_enter / (p_enter + p_exit);
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
        }
    }

    /// Validate parameter domains.
    pub fn validate(&self) -> Result<(), String> {
        let rate_ok = |r: f64| (0.0..1.0).contains(&r);
        match *self {
            WireLoss::None => Ok(()),
            WireLoss::Bernoulli { rate } => {
                if rate_ok(rate) {
                    Ok(())
                } else {
                    Err(format!("wire loss rate {rate} must be in [0,1)"))
                }
            }
            WireLoss::GilbertElliott {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                if !(0.0..=1.0).contains(&p_enter) || !p_enter.is_finite() {
                    return Err(format!("Gilbert-Elliott p_enter {p_enter} outside [0,1]"));
                }
                if !(p_exit > 0.0 && p_exit <= 1.0) {
                    return Err(format!("Gilbert-Elliott p_exit {p_exit} outside (0,1]"));
                }
                if !rate_ok(loss_good) {
                    return Err(format!(
                        "Gilbert-Elliott loss_good {loss_good} outside [0,1)"
                    ));
                }
                if !rate_ok(loss_bad) {
                    return Err(format!("Gilbert-Elliott loss_bad {loss_bad} outside [0,1)"));
                }
                Ok(())
            }
        }
    }
}

/// A composable set of impairments for one scenario. Build fluently, then
/// hand to `PacketScenario::faults`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Loss process on the data (forward) path.
    pub data_loss: WireLoss,
    /// Loss process on the ACK (reverse) path.
    pub ack_loss: WireLoss,
    /// Maximum extra feedback delay per ACK (uniform in `[0, jitter_secs]`);
    /// 0 disables.
    pub jitter_secs: f64,
    /// Probability that an ACK is reordered (takes the detour below).
    pub reorder_prob: f64,
    /// Extra delay a reordered ACK suffers (seconds).
    pub reorder_extra_secs: f64,
    /// Link blackout windows `[from, to)` in seconds: departures inside a
    /// window are lost.
    pub outages: Vec<(f64, f64)>,
    /// Scheduled capacity changes `(at_secs, bandwidth_mss_per_sec)`,
    /// sorted by time; the bottleneck serializes at the active rate.
    pub capacity_flaps: Vec<(f64, f64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// An empty plan: no impairments.
    pub fn new() -> Self {
        FaultPlan {
            data_loss: WireLoss::None,
            ack_loss: WireLoss::None,
            jitter_secs: 0.0,
            reorder_prob: 0.0,
            reorder_extra_secs: 0.0,
            outages: Vec::new(),
            capacity_flaps: Vec::new(),
        }
    }

    /// Set the data-path loss process.
    pub fn data_loss(mut self, model: WireLoss) -> Self {
        self.data_loss = model;
        self
    }

    /// Set the ACK-path loss process.
    pub fn ack_loss(mut self, model: WireLoss) -> Self {
        self.ack_loss = model;
        self
    }

    /// Add uniform feedback jitter in `[0, max_secs]` per ACK.
    pub fn jitter(mut self, max_secs: f64) -> Self {
        self.jitter_secs = max_secs;
        self
    }

    /// Reorder a fraction `prob` of ACKs by delaying them `extra_secs`.
    pub fn reorder(mut self, prob: f64, extra_secs: f64) -> Self {
        self.reorder_prob = prob;
        self.reorder_extra_secs = extra_secs;
        self
    }

    /// Add a link blackout over `[from_secs, to_secs)`.
    ///
    /// The window list is kept sorted with [`f64::total_cmp`]: a NaN
    /// bound sorts deterministically (last) instead of silently
    /// comparing `Equal` and shuffling its neighbours, and is then
    /// rejected by [`FaultPlan::validate`].
    pub fn outage(mut self, from_secs: f64, to_secs: f64) -> Self {
        self.outages.push((from_secs, to_secs));
        self.outages.sort_by(|a, b| a.0.total_cmp(&b.0));
        self
    }

    /// Schedule the bottleneck bandwidth to become `bandwidth` MSS/s at
    /// `at_secs`.
    pub fn capacity_flap(mut self, at_secs: f64, bandwidth: f64) -> Self {
        self.capacity_flaps.push((at_secs, bandwidth));
        self.capacity_flaps.sort_by(|a, b| a.0.total_cmp(&b.0));
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self == &FaultPlan::new()
    }

    /// Validate every impairment's parameters.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.data_loss
            .validate()
            .map_err(|e| ScenarioError::InvalidLossModel(format!("data path: {e}")))?;
        self.ack_loss
            .validate()
            .map_err(|e| ScenarioError::InvalidLossModel(format!("ack path: {e}")))?;
        if !(self.jitter_secs.is_finite() && self.jitter_secs >= 0.0) {
            return Err(ScenarioError::InvalidParameter {
                field: "jitter_secs",
                value: self.jitter_secs,
                constraint: "finite and >= 0",
            });
        }
        if !(0.0..1.0).contains(&self.reorder_prob) {
            return Err(ScenarioError::InvalidParameter {
                field: "reorder_prob",
                value: self.reorder_prob,
                constraint: "in [0,1)",
            });
        }
        if !(self.reorder_extra_secs.is_finite() && self.reorder_extra_secs >= 0.0) {
            return Err(ScenarioError::InvalidParameter {
                field: "reorder_extra_secs",
                value: self.reorder_extra_secs,
                constraint: "finite and >= 0",
            });
        }
        for &(from, to) in &self.outages {
            if !(from.is_finite() && to.is_finite() && from >= 0.0 && from < to) {
                return Err(ScenarioError::InvalidParameter {
                    field: "outage",
                    value: from,
                    constraint: "a window [from, to) with 0 <= from < to, both finite",
                });
            }
        }
        for &(at, bw) in &self.capacity_flaps {
            if !(at.is_finite() && at >= 0.0 && bw.is_finite() && bw > 0.0) {
                return Err(ScenarioError::InvalidParameter {
                    field: "capacity_flap",
                    value: bw,
                    constraint: "a finite time >= 0 and a positive finite bandwidth",
                });
            }
        }
        Ok(())
    }
}

/// The runtime state of a [`FaultPlan`]: the two Gilbert–Elliott chains
/// (data and ACK path — both start in the good state) and the ACK-loss
/// counter. Owned by the engine; all draws come from the engine's RNG.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    data_bad: bool,
    ack_bad: bool,
    /// ACKs lost on the reverse path (surfaced to senders as timeouts).
    pub ack_lost: u64,
}

/// Advance a per-packet [`WireLoss`] process one packet: returns whether
/// this packet is struck. `bad` is the chain state for the GE variant.
fn strike(model: WireLoss, bad: &mut bool, rng: &mut ChaCha8Rng) -> bool {
    match model {
        WireLoss::None => false,
        WireLoss::Bernoulli { rate } => rate > 0.0 && rng.gen::<f64>() < rate,
        WireLoss::GilbertElliott {
            p_enter,
            p_exit,
            loss_good,
            loss_bad,
        } => {
            let emitted = if *bad { loss_bad } else { loss_good };
            let lost = emitted > 0.0 && rng.gen::<f64>() < emitted;
            let u = rng.gen::<f64>();
            *bad = if *bad { u >= p_exit } else { u < p_enter };
            lost
        }
    }
}

impl FaultState {
    /// Runtime state for `plan` with both chains in the good state.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            data_bad: false,
            ack_bad: false,
            ack_lost: 0,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is the link blacked out at `now_secs`? Deterministic — consults no
    /// RNG, so outage windows never perturb the random stream.
    pub fn in_outage(&self, now_secs: f64) -> bool {
        self.plan
            .outages
            .iter()
            .any(|&(from, to)| now_secs >= from && now_secs < to)
    }

    /// Does the data-path loss process strike the packet departing now?
    /// (Call once per departure; advances the GE chain.)
    pub fn data_strike(&mut self, rng: &mut ChaCha8Rng) -> bool {
        strike(self.plan.data_loss, &mut self.data_bad, rng)
    }

    /// Does the ACK-path loss process strike this packet's ACK?
    pub fn ack_strike(&mut self, rng: &mut ChaCha8Rng) -> bool {
        let hit = strike(self.plan.ack_loss, &mut self.ack_bad, rng);
        if hit {
            self.ack_lost += 1;
        }
        hit
    }

    /// The extra feedback delay (seconds) this delivered ACK suffers from
    /// reordering and jitter. Draws from the RNG only for impairments that
    /// are actually configured.
    pub fn feedback_extra_secs(&mut self, rng: &mut ChaCha8Rng) -> f64 {
        let mut extra = 0.0;
        if self.plan.reorder_prob > 0.0 && rng.gen::<f64>() < self.plan.reorder_prob {
            extra += self.plan.reorder_extra_secs;
        }
        if self.plan.jitter_secs > 0.0 {
            extra += rng.gen::<f64>() * self.plan.jitter_secs;
        }
        extra
    }

    /// The active bottleneck bandwidth at `now_secs` given the nominal
    /// rate: the most recent capacity flap at or before `now_secs` wins.
    pub fn bandwidth_at(&self, now_secs: f64, nominal: f64) -> f64 {
        let mut bw = nominal;
        for &(at, new_bw) in &self.plan.capacity_flaps {
            if at <= now_secs {
                bw = new_bw;
            } else {
                break;
            }
        }
        bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn empty_plan_is_noop_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_noop());
        assert_eq!(plan.validate(), Ok(()));
        let mut st = FaultState::new(plan);
        let mut r = rng(1);
        assert!(!st.data_strike(&mut r));
        assert!(!st.ack_strike(&mut r));
        assert_eq!(st.feedback_extra_secs(&mut r), 0.0);
        assert!(!st.in_outage(5.0));
        assert_eq!(st.bandwidth_at(5.0, 100.0), 100.0);
        // And a no-op plan consumed zero random draws.
        assert_eq!(r.gen::<u64>(), rng(1).gen::<u64>());
    }

    #[test]
    fn bernoulli_data_loss_hits_near_rate() {
        let mut st = FaultState::new(FaultPlan::new().data_loss(WireLoss::Bernoulli { rate: 0.1 }));
        let mut r = rng(2);
        let n = 20_000;
        let hits = (0..n).filter(|_| st.data_strike(&mut r)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "loss fraction {frac}");
    }

    #[test]
    fn gilbert_elliott_bursts_have_the_requested_length() {
        let model = WireLoss::bursty(0.05, 10.0, 0.5);
        model.validate().unwrap();
        assert!((model.nominal_rate() - 0.05).abs() < 1e-12);
        let mut st = FaultState::new(FaultPlan::new().data_loss(model));
        let mut r = rng(3);
        // The chain spends bursts of mean 10 packets in the bad state:
        // hits cluster, unlike Bernoulli at the same mean rate.
        let n = 100_000;
        let seq: Vec<bool> = (0..n).map(|_| st.data_strike(&mut r)).collect();
        let frac = seq.iter().filter(|&&h| h).count() as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "loss fraction {frac}");
        // Conditional loss probability right after a loss should be near
        // the bad-state rate (0.5), far above the 5% mean.
        let mut after_loss = 0usize;
        let mut after_loss_hits = 0usize;
        for w in seq.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_hits += 1;
                }
            }
        }
        let cond = after_loss_hits as f64 / after_loss as f64;
        assert!(cond > 0.3, "conditional loss after loss {cond}");
    }

    #[test]
    fn ack_strikes_are_counted() {
        let mut st = FaultState::new(FaultPlan::new().ack_loss(WireLoss::Bernoulli { rate: 0.5 }));
        let mut r = rng(4);
        for _ in 0..100 {
            st.ack_strike(&mut r);
        }
        assert!(st.ack_lost > 20);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let st = FaultState::new(FaultPlan::new().outage(1.0, 2.0).outage(5.0, 6.0));
        assert!(!st.in_outage(0.5));
        assert!(st.in_outage(1.0));
        assert!(st.in_outage(1.999));
        assert!(!st.in_outage(2.0));
        assert!(st.in_outage(5.5));
        assert!(!st.in_outage(6.5));
    }

    #[test]
    fn capacity_flaps_apply_in_order() {
        let st = FaultState::new(
            FaultPlan::new()
                .capacity_flap(10.0, 50.0)
                .capacity_flap(5.0, 200.0),
        );
        assert_eq!(st.bandwidth_at(0.0, 100.0), 100.0);
        assert_eq!(st.bandwidth_at(5.0, 100.0), 200.0);
        assert_eq!(st.bandwidth_at(7.0, 100.0), 200.0);
        assert_eq!(st.bandwidth_at(12.0, 100.0), 50.0);
    }

    #[test]
    fn jitter_and_reorder_delays_are_bounded() {
        let mut st = FaultState::new(FaultPlan::new().jitter(0.01).reorder(0.3, 0.1));
        let mut r = rng(5);
        let mut saw_reorder = false;
        for _ in 0..1000 {
            let d = st.feedback_extra_secs(&mut r);
            assert!((0.0..=0.11).contains(&d), "delay {d}");
            if d >= 0.1 {
                saw_reorder = true;
            }
        }
        assert!(saw_reorder);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(matches!(
            FaultPlan::new()
                .data_loss(WireLoss::Bernoulli { rate: 1.5 })
                .validate(),
            Err(ScenarioError::InvalidLossModel(_))
        ));
        assert!(matches!(
            FaultPlan::new().jitter(-1.0).validate(),
            Err(ScenarioError::InvalidParameter {
                field: "jitter_secs",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::new().reorder(1.5, 0.1).validate(),
            Err(ScenarioError::InvalidParameter {
                field: "reorder_prob",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::new().outage(3.0, 1.0).validate(),
            Err(ScenarioError::InvalidParameter {
                field: "outage",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::new().capacity_flap(1.0, -5.0).validate(),
            Err(ScenarioError::InvalidParameter {
                field: "capacity_flap",
                ..
            })
        ));
        // An unrealizable bursty model (mean above bad-state rate).
        assert!(WireLoss::bursty(0.5, 4.0, 0.2).validate().is_err());
    }

    #[test]
    fn nan_bounds_sort_deterministically_and_are_rejected() {
        // Regression for the partial_cmp(..).unwrap_or(Equal) bug: a NaN
        // timestamp used to compare Equal to everything, leaving the
        // window order dependent on insertion order. With total_cmp the
        // NaN sorts last, the finite windows stay correctly ordered, and
        // validate() rejects the plan instead of mis-sorting it.
        let plan = FaultPlan::new()
            .outage(5.0, 6.0)
            .outage(f64::NAN, 2.0)
            .outage(1.0, 2.0);
        assert_eq!(plan.outages[0], (1.0, 2.0));
        assert_eq!(plan.outages[1], (5.0, 6.0));
        assert!(plan.outages[2].0.is_nan());
        assert!(matches!(
            plan.validate(),
            Err(ScenarioError::InvalidParameter {
                field: "outage",
                ..
            })
        ));

        let plan = FaultPlan::new()
            .capacity_flap(9.0, 10.0)
            .capacity_flap(f64::NAN, 50.0)
            .capacity_flap(3.0, 200.0);
        assert_eq!(plan.capacity_flaps[0], (3.0, 200.0));
        assert_eq!(plan.capacity_flaps[1], (9.0, 10.0));
        assert!(plan.capacity_flaps[2].0.is_nan());
        assert!(matches!(
            plan.validate(),
            Err(ScenarioError::InvalidParameter {
                field: "capacity_flap",
                ..
            })
        ));
    }

    #[test]
    fn same_seed_same_strikes() {
        let plan = FaultPlan::new()
            .data_loss(WireLoss::bursty(0.02, 8.0, 0.2))
            .ack_loss(WireLoss::Bernoulli { rate: 0.01 })
            .jitter(0.005);
        let run = |seed| {
            let mut st = FaultState::new(plan.clone());
            let mut r = rng(seed);
            (0..2000)
                .map(|_| {
                    (
                        st.data_strike(&mut r),
                        st.ack_strike(&mut r),
                        st.feedback_extra_secs(&mut r),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
