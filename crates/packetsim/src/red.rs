//! RED — Random Early Detection (Floyd–Jacobson 1993), the second classic
//! in-network queueing discipline (§6's "in-network queueing" direction,
//! alongside the step-marking ECN in [`crate::queue`]).
//!
//! RED tracks an EWMA of the queue depth and, between two thresholds,
//! drops (or marks) arriving packets with a probability that rises
//! linearly from 0 to `max_p`; above the upper threshold everything is
//! dropped/marked. Early, *randomized* congestion signals desynchronize
//! flows and keep the average queue short — the property the droptail
//! experiments in this repository conspicuously lack (synchronized burst
//! drops are exactly what the recovery-discounting logic has to clean up
//! after).
//!
//! The implementation is deterministic per scenario seed (the drop
//! decisions draw from the engine's ChaCha8 stream).

use serde::{Deserialize, Serialize};

/// RED parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedConfig {
    /// Lower average-depth threshold (packets): below it, never signal.
    pub min_th: f64,
    /// Upper average-depth threshold (packets): above it, always signal.
    pub max_th: f64,
    /// Signal probability at `max_th` (the linear ramp's top).
    pub max_p: f64,
    /// EWMA weight for the average queue depth (classic value: 0.002;
    /// this simulator updates per arrival like the original).
    pub weight: f64,
    /// Whether the signal is an ECN mark (`true`) or an early drop.
    pub mark: bool,
}

impl RedConfig {
    /// The classic "gentle-ish" configuration for a buffer of `tau`
    /// packets: thresholds at τ/4 and 3τ/4, `max_p` = 10%, weight 0.02
    /// (scaled up from the wire-speed classic 0.002 because this model's
    /// arrivals are MSS-sized), dropping.
    pub fn classic(tau: f64) -> Self {
        RedConfig {
            min_th: tau / 4.0,
            max_th: 3.0 * tau / 4.0,
            max_p: 0.1,
            weight: 0.02,
            mark: false,
        }
    }

    /// The same thresholds but marking instead of dropping (RED + ECN).
    pub fn classic_marking(tau: f64) -> Self {
        RedConfig {
            mark: true,
            ..Self::classic(tau)
        }
    }

    /// Check parameter domains, returning a typed error.
    pub fn check(&self) -> Result<(), axcc_core::ScenarioError> {
        use axcc_core::ScenarioError::InvalidParameter;
        if !(self.min_th >= 0.0 && self.min_th < self.max_th) {
            return Err(InvalidParameter {
                field: "red.min_th",
                value: self.min_th,
                constraint: "0 <= min_th < max_th",
            });
        }
        if !(self.max_p > 0.0 && self.max_p <= 1.0) {
            return Err(InvalidParameter {
                field: "red.max_p",
                value: self.max_p,
                constraint: "in (0,1]",
            });
        }
        if !(self.weight > 0.0 && self.weight <= 1.0) {
            return Err(InvalidParameter {
                field: "red.weight",
                value: self.weight,
                constraint: "in (0,1]",
            });
        }
        Ok(())
    }

    /// Validate parameter domains.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min_th < max_th`, `0 < max_p ≤ 1`,
    /// `0 < weight ≤ 1`.
    pub fn validate(&self) {
        assert!(
            self.min_th >= 0.0 && self.min_th < self.max_th,
            "RED thresholds must satisfy 0 <= min_th < max_th"
        );
        assert!(
            self.max_p > 0.0 && self.max_p <= 1.0,
            "RED max_p must be in (0,1]"
        );
        assert!(
            self.weight > 0.0 && self.weight <= 1.0,
            "RED weight must be in (0,1]"
        );
    }
}

/// RED's per-arrival decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedVerdict {
    /// Admit the packet untouched.
    Pass,
    /// Admit the packet with an ECN mark.
    Mark,
    /// Drop the packet early.
    EarlyDrop,
}

/// RED state: the averaged queue depth.
#[derive(Debug, Clone)]
pub struct Red {
    config: RedConfig,
    avg: f64,
}

impl Red {
    /// A RED instance with the given (validated) configuration.
    pub fn new(config: RedConfig) -> Self {
        config.validate();
        Red { config, avg: 0.0 }
    }

    /// The current averaged depth.
    pub fn avg_depth(&self) -> f64 {
        self.avg
    }

    /// Decide the fate of an arriving packet given the *instantaneous*
    /// queue depth and a uniform random draw `u ∈ [0, 1)` (supplied by the
    /// caller so the engine's single seeded stream stays the only source
    /// of randomness).
    pub fn on_arrival(&mut self, instantaneous_depth: usize, u: f64) -> RedVerdict {
        let cfg = self.config;
        self.avg = (1.0 - cfg.weight) * self.avg + cfg.weight * instantaneous_depth as f64;
        let p = if self.avg < cfg.min_th {
            0.0
        } else if self.avg >= cfg.max_th {
            1.0
        } else {
            cfg.max_p * (self.avg - cfg.min_th) / (cfg.max_th - cfg.min_th)
        };
        if u < p {
            if cfg.mark {
                RedVerdict::Mark
            } else {
                RedVerdict::EarlyDrop
            }
        } else {
            RedVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn red(min_th: f64, max_th: f64, max_p: f64, weight: f64) -> Red {
        Red::new(RedConfig {
            min_th,
            max_th,
            max_p,
            weight,
            mark: false,
        })
    }

    #[test]
    fn below_min_th_never_signals() {
        let mut r = red(5.0, 15.0, 0.1, 1.0); // weight 1: avg = instantaneous
        for depth in 0..5 {
            assert_eq!(r.on_arrival(depth, 0.0), RedVerdict::Pass);
        }
    }

    #[test]
    fn above_max_th_always_signals() {
        let mut r = red(5.0, 15.0, 0.1, 1.0);
        assert_eq!(r.on_arrival(20, 0.999), RedVerdict::EarlyDrop);
    }

    #[test]
    fn linear_ramp_between_thresholds() {
        // At avg exactly halfway: p = max_p/2.
        let mut r = red(5.0, 15.0, 0.2, 1.0);
        // depth 10 => p = 0.1.
        assert_eq!(r.on_arrival(10, 0.0999), RedVerdict::EarlyDrop);
        let mut r = red(5.0, 15.0, 0.2, 1.0);
        assert_eq!(r.on_arrival(10, 0.1001), RedVerdict::Pass);
    }

    #[test]
    fn marking_variant_marks() {
        let mut r = Red::new(RedConfig {
            mark: true,
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 1.0, // avg = instantaneous for the test
        });
        assert_eq!(r.on_arrival(100, 0.0), RedVerdict::Mark);
    }

    #[test]
    fn ewma_smooths_bursts() {
        let mut r = red(5.0, 15.0, 0.1, 0.02);
        // One instantaneous burst to depth 100 barely moves the average.
        r.on_arrival(100, 0.999);
        assert!(r.avg_depth() < 3.0, "avg {}", r.avg_depth());
        // Sustained depth does move it.
        for _ in 0..200 {
            r.on_arrival(100, 0.999);
        }
        assert!(r.avg_depth() > 90.0, "avg {}", r.avg_depth());
    }

    #[test]
    fn classic_config_shapes() {
        let c = RedConfig::classic(100.0);
        assert_eq!(c.min_th, 25.0);
        assert_eq!(c.max_th, 75.0);
        assert!(!c.mark);
        assert!(RedConfig::classic_marking(100.0).mark);
    }

    #[test]
    #[should_panic(expected = "min_th < max_th")]
    fn rejects_inverted_thresholds() {
        Red::new(RedConfig {
            min_th: 10.0,
            max_th: 5.0,
            max_p: 0.1,
            weight: 0.02,
            mark: false,
        });
    }
}
