//! Packet accounting for flows and the bottleneck queue.

use serde::{Deserialize, Serialize};

/// Per-flow packet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets transmitted.
    pub sent: u64,
    /// Packets acknowledged.
    pub acked: u64,
    /// Packets reported lost (queue drops + wire loss).
    pub lost: u64,
    /// Packets delivered with an ECN congestion-experienced mark.
    pub marked: u64,
    /// Protocol epochs (monitor intervals) completed.
    pub epochs: u64,
}

impl FlowStats {
    /// Overall loss fraction of the flow's resolved packets.
    pub fn loss_fraction(&self) -> f64 {
        let resolved = self.acked + self.lost;
        if resolved == 0 {
            0.0
        } else {
            self.lost as f64 / resolved as f64
        }
    }

    /// Conservation check: every sent packet is acked, lost, or still in
    /// flight.
    pub fn conserves(&self, in_flight: u64) -> bool {
        self.sent == self.acked + self.lost + in_flight
    }
}

/// Bottleneck queue counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Packets accepted by the queue.
    pub enqueued: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// High-water mark of the buffer depth (packets).
    pub max_depth: usize,
    /// Packets dropped by the wire-loss process (after the queue).
    pub wire_lost: u64,
    /// ACKs lost on the reverse path (delivered packets whose feedback
    /// never arrived; the sender learns via timeout).
    pub ack_lost: u64,
    /// Packets ECN-marked by the queue.
    pub marked: u64,
}

impl QueueStats {
    /// Fraction of offered packets the queue dropped.
    pub fn drop_fraction(&self) -> f64 {
        let offered = self.enqueued + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_fraction_handles_empty() {
        assert_eq!(FlowStats::default().loss_fraction(), 0.0);
    }

    #[test]
    fn loss_fraction_counts_resolved_only() {
        let s = FlowStats {
            sent: 10,
            acked: 6,
            lost: 2,
            marked: 0,
            epochs: 1,
        };
        assert!((s.loss_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conservation() {
        let s = FlowStats {
            sent: 10,
            acked: 6,
            lost: 2,
            marked: 3,
            epochs: 1,
        };
        assert!(s.conserves(2));
        assert!(!s.conserves(3));
    }

    #[test]
    fn queue_drop_fraction() {
        let q = QueueStats {
            enqueued: 90,
            dropped: 10,
            max_depth: 7,
            wire_lost: 0,
            ack_lost: 0,
            marked: 0,
        };
        assert!((q.drop_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(QueueStats::default().drop_fraction(), 0.0);
    }
}
