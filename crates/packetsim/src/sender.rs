//! The ACK-clocked window sender and its protocol-epoch adapter.
//!
//! A flow keeps `⌊cwnd⌋` packets in flight (at least one, so feedback never
//! dries up). Feedback — ACKs and SACK-style loss notifications — arrives
//! one RTT after transmission. The adapter aggregates a window's worth of
//! feedback into one **epoch**, the packet-level counterpart of the fluid
//! model's synchronized RTT step (and exactly Robust-AIMD's "monitor
//! interval": *"the sender sends at a certain rate and uses selective ACKs
//! from the receiver to learn the resulting loss rate"*). At each epoch
//! boundary the congestion-control [`Protocol`] observes
//! `(window, loss rate, mean RTT, min RTT)` and selects the next window.

use axcc_core::protocol::clamp_window;
use axcc_core::{Observation, Protocol};

use crate::stats::FlowStats;
use crate::time::Time;

/// Minimum congestion window: a sender must keep probing with at least one
/// packet per RTT or it would never receive feedback again. (Real TCPs have
/// the same floor; the fluid model allows windows below 1 MSS, which is the
/// one place the two substrates intentionally differ.)
pub const MIN_CWND: f64 = 1.0;

/// How a flow injects packets into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Classic ACK clocking: keep `⌊cwnd⌋` packets in flight (the paper's
    /// window-based model).
    WindowClocked,
    /// Pacing: transmit on a timer at rate `cwnd / sRTT`, close protocol
    /// epochs on monitor-interval boundaries rather than feedback counts
    /// — the sender class of PCC and BBR, which the paper's Section 2
    /// defers to future research.
    Paced,
}

/// Per-flow sender state.
pub struct Sender {
    /// The congestion-control protocol driving this flow.
    protocol: Box<dyn Protocol>,
    /// Congestion window (MSS, fractional).
    cwnd: f64,
    /// Cap on the window (the model's `M`).
    max_window: f64,
    /// Packets currently in flight (sent, no feedback yet).
    in_flight: u64,
    /// Whether the flow has started.
    pub active: bool,
    /// Window-clocked or paced.
    mode: SendMode,
    // --- epoch accumulation ---
    epoch_acked: u64,
    epoch_lost: u64,
    epoch_marked: u64,
    epoch_discounted: u64,
    epoch_rtt_sum: f64,
    epoch_rtt_count: u64,
    epoch_target: u64,
    epoch_index: u64,
    last_rtt: f64,
    min_rtt: f64,
    /// Packets sent before this instant belong to an already-handled
    /// congestion event; their losses are discounted (no second back-off).
    recovery_until: Time,
    // --- accounting ---
    pub(crate) stats: FlowStats,
}

impl Sender {
    /// A window-clocked sender with the given protocol, initial window,
    /// and window cap.
    pub fn new(protocol: Box<dyn Protocol>, initial_cwnd: f64, max_window: f64) -> Self {
        Self::with_mode(protocol, initial_cwnd, max_window, SendMode::WindowClocked)
    }

    /// A sender with an explicit [`SendMode`].
    pub fn with_mode(
        protocol: Box<dyn Protocol>,
        initial_cwnd: f64,
        max_window: f64,
        mode: SendMode,
    ) -> Self {
        let cwnd = clamp_window(initial_cwnd.max(MIN_CWND), max_window);
        Sender {
            protocol,
            cwnd,
            max_window,
            in_flight: 0,
            active: false,
            mode,
            epoch_acked: 0,
            epoch_lost: 0,
            epoch_marked: 0,
            epoch_discounted: 0,
            epoch_rtt_sum: 0.0,
            epoch_rtt_count: 0,
            epoch_target: cwnd.floor().max(1.0) as u64,
            epoch_index: 0,
            last_rtt: 0.0,
            min_rtt: f64::INFINITY,
            recovery_until: Time::ZERO,
            stats: FlowStats::default(),
        }
    }

    /// Protocol display name.
    pub fn protocol_name(&self) -> String {
        self.protocol.name()
    }

    /// Whether the driving protocol is loss-based.
    pub fn loss_based(&self) -> bool {
        self.protocol.loss_based()
    }

    /// Current congestion window.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Packets currently unacknowledged.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// The most recent RTT sample (0 until the first ACK).
    pub fn last_rtt(&self) -> f64 {
        self.last_rtt
    }

    /// Smallest RTT sample seen (∞ until the first ACK).
    pub fn min_rtt(&self) -> f64 {
        self.min_rtt
    }

    /// The flow's send mode.
    pub fn mode(&self) -> SendMode {
        self.mode
    }

    /// How many more packets the window permits right now (window-clocked
    /// flows; paced flows transmit on their timer instead).
    pub fn can_send(&self) -> u64 {
        debug_assert_eq!(self.mode, SendMode::WindowClocked);
        let allowed = self.cwnd.floor().max(MIN_CWND) as u64;
        allowed.saturating_sub(self.in_flight)
    }

    /// The pacing interval between packets for a paced flow: `sRTT/cwnd`,
    /// using `fallback_rtt` until the first RTT sample exists.
    pub fn pacing_interval(&self, fallback_rtt: f64) -> Time {
        debug_assert_eq!(self.mode, SendMode::Paced);
        let rtt = if self.last_rtt > 0.0 {
            self.last_rtt
        } else {
            fallback_rtt
        };
        Time::from_secs_f64(rtt / self.cwnd.max(MIN_CWND))
    }

    /// A local outstanding-data bound for paced flows (models the host's
    /// own queue limit): transmission is skipped while more than
    /// `4·cwnd + 64` packets are unresolved, so an unresponsive rate
    /// cannot leak unbounded state into the simulator.
    pub fn pacing_gate_open(&self) -> bool {
        debug_assert_eq!(self.mode, SendMode::Paced);
        (self.in_flight as f64) < 4.0 * self.cwnd + 64.0
    }

    /// Close the current epoch on a monitor-interval boundary (paced
    /// flows): evaluate whatever feedback arrived during the interval.
    /// With no resolved feedback at all the protocol is not consulted
    /// (there is nothing to observe) and `false` is returned.
    pub fn close_epoch_timed(&mut self, now: Time) -> bool {
        debug_assert_eq!(self.mode, SendMode::Paced);
        if self.epoch_acked + self.epoch_lost + self.epoch_discounted == 0 {
            return false;
        }
        // Force the close over exactly the accumulated feedback.
        self.epoch_target = self.epoch_acked + self.epoch_lost + self.epoch_discounted;
        let closed = self.maybe_close_epoch(now, true);
        debug_assert!(closed);
        closed
    }

    /// Record a transmission.
    pub fn on_send(&mut self) {
        self.in_flight += 1;
        self.stats.sent += 1;
    }

    /// Record an ACK (with its RTT sample). `marked` carries the ECN
    /// congestion-experienced bit: the packet was *delivered*, but the
    /// queue signalled congestion, so the mark counts towards the epoch's
    /// congestion-signal rate exactly like a loss would (RFC 3168
    /// loss-equivalence), subject to the same one-reaction-per-event
    /// recovery discounting. Returns `true` if this feedback closed an
    /// epoch.
    pub fn on_ack(&mut self, now: Time, sent_at: Time, marked: bool) -> bool {
        debug_assert!(self.in_flight > 0, "ACK with nothing in flight");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.stats.acked += 1;
        let rtt = now.saturating_since(sent_at).as_secs_f64();
        self.last_rtt = rtt;
        self.min_rtt = self.min_rtt.min(rtt);
        self.epoch_acked += 1;
        if marked {
            self.stats.marked += 1;
            if sent_at >= self.recovery_until {
                self.epoch_marked += 1;
            }
        }
        self.epoch_rtt_sum += rtt;
        self.epoch_rtt_count += 1;
        self.maybe_close_epoch(now, false)
    }

    /// Record a loss notification for a packet sent at `sent_at`. Losses
    /// of packets transmitted before the last loss-triggered epoch close
    /// are **discounted**: they belong to the congestion event the
    /// protocol already reacted to, so they count towards the epoch's
    /// feedback quota but not its loss rate (TCP's one-back-off-per-window
    /// recovery semantics; for Robust-AIMD this is exactly "one monitor
    /// interval, one decision"). Returns `true` if this closed an epoch.
    pub fn on_loss(&mut self, now: Time, sent_at: Time) -> bool {
        debug_assert!(self.in_flight > 0, "loss with nothing in flight");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.stats.lost += 1;
        if sent_at < self.recovery_until {
            self.epoch_discounted += 1;
        } else {
            self.epoch_lost += 1;
        }
        self.maybe_close_epoch(now, false)
    }

    fn maybe_close_epoch(&mut self, now: Time, forced: bool) -> bool {
        // Paced flows close epochs only on monitor-interval boundaries
        // (`forced` via close_epoch_timed), never on feedback counts.
        if self.mode == SendMode::Paced && !forced {
            return false;
        }
        if self.epoch_acked + self.epoch_lost + self.epoch_discounted < self.epoch_target {
            return false;
        }
        let counted = (self.epoch_acked + self.epoch_lost) as f64;
        // Congestion signal = losses + ECN marks, over the resolved
        // packets of the epoch.
        let signals = (self.epoch_lost + self.epoch_marked) as f64;
        let loss_rate = if counted > 0.0 {
            (signals / counted).min(1.0)
        } else {
            0.0
        };
        if self.epoch_lost + self.epoch_marked > 0 {
            // The protocol is about to react to this congestion event;
            // signals from packets already in the network belong to it.
            self.recovery_until = now;
        }
        let rtt = if self.epoch_rtt_count > 0 {
            self.epoch_rtt_sum / self.epoch_rtt_count as f64
        } else {
            // An all-loss epoch carries no RTT samples; reuse the last one.
            self.last_rtt
        };
        let min_rtt = if self.min_rtt.is_finite() {
            self.min_rtt
        } else {
            rtt
        };
        let obs = Observation {
            tick: self.epoch_index,
            window: self.cwnd,
            loss_rate,
            rtt,
            min_rtt,
        };
        let requested = self.protocol.next_window(&obs);
        self.cwnd = clamp_window(requested.max(MIN_CWND), self.max_window);
        self.epoch_index += 1;
        self.epoch_acked = 0;
        self.epoch_lost = 0;
        self.epoch_marked = 0;
        self.epoch_discounted = 0;
        self.epoch_rtt_sum = 0.0;
        self.epoch_rtt_count = 0;
        self.epoch_target = self.cwnd.floor().max(1.0) as u64;
        self.stats.epochs += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_protocols::Aimd;

    fn sender(cwnd: f64) -> Sender {
        Sender::new(Box::new(Aimd::reno()), cwnd, 1e9)
    }

    #[test]
    fn can_send_respects_window_and_in_flight() {
        let mut s = sender(4.0);
        assert_eq!(s.can_send(), 4);
        s.on_send();
        s.on_send();
        assert_eq!(s.can_send(), 2);
        assert_eq!(s.in_flight(), 2);
    }

    #[test]
    fn fractional_window_floors() {
        let s = sender(4.9);
        assert_eq!(s.can_send(), 4);
    }

    #[test]
    fn window_floor_is_one_packet() {
        let s = sender(0.2);
        assert_eq!(s.can_send(), 1);
    }

    #[test]
    fn clean_epoch_triggers_additive_increase() {
        let mut s = sender(3.0);
        for _ in 0..3 {
            s.on_send();
        }
        // Three ACKs at 50 ms RTT: epoch of 3 closes, Reno adds 1.
        assert!(!s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false));
        assert!(!s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false));
        assert!(s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false));
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(s.stats.epochs, 1);
    }

    #[test]
    fn lossy_epoch_triggers_backoff() {
        let mut s = sender(4.0);
        for _ in 0..4 {
            s.on_send();
        }
        s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        assert!(s.on_loss(Time::from_secs_f64(0.06), Time::from_secs_f64(0.01)));
        // Loss rate 25% > 0: Reno halves 4 -> 2.
        assert_eq!(s.cwnd(), 2.0);
    }

    #[test]
    fn rtt_tracking() {
        let mut s = sender(2.0);
        s.on_send();
        s.on_send();
        s.on_ack(Time::from_secs_f64(0.100), Time::ZERO, false);
        s.on_ack(Time::from_secs_f64(0.160), Time::from_secs_f64(0.08), false);
        assert!((s.last_rtt() - 0.08).abs() < 1e-9);
        assert!((s.min_rtt() - 0.08).abs() < 1e-9);
    }

    #[test]
    fn all_loss_epoch_reuses_last_rtt() {
        let mut s = sender(2.0);
        s.on_send();
        s.on_send();
        s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        s.on_loss(Time::from_secs_f64(0.06), Time::from_secs_f64(0.01)); // closes epoch (2 of 2) with loss rate 0.5
        assert_eq!(s.cwnd(), 1.0); // Reno halves 2 -> 1
                                   // A *fresh* loss (packet sent after the back-off at t = 0.06)
                                   // triggers another halving, floored at MIN_CWND; no RTT samples in
                                   // the epoch, so the last RTT is reused internally.
        s.on_send();
        assert!(s.on_loss(Time::from_secs_f64(0.20), Time::from_secs_f64(0.15)));
        assert_eq!(s.cwnd(), 1.0); // halve again, floored at MIN_CWND
    }

    #[test]
    fn discounted_losses_do_not_double_back_off() {
        // Epoch 1: cwnd 4, one fresh loss ⇒ Reno halves to 2 and enters
        // recovery at t = 0.06.
        let mut s = sender(4.0);
        for _ in 0..4 {
            s.on_send();
        }
        for _ in 0..3 {
            s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        }
        assert!(s.on_loss(Time::from_secs_f64(0.06), Time::from_secs_f64(0.01)));
        assert_eq!(s.cwnd(), 2.0);
        // Epoch 2: two more losses from the SAME burst (sent before the
        // back-off): discounted ⇒ the epoch closes with loss rate 0 and
        // Reno *increases* instead of collapsing further.
        s.on_send();
        s.on_send();
        s.on_loss(Time::from_secs_f64(0.07), Time::from_secs_f64(0.02));
        s.on_loss(Time::from_secs_f64(0.08), Time::from_secs_f64(0.03));
        assert_eq!(s.cwnd(), 3.0);
        // All losses still counted in the packet stats.
        assert_eq!(s.stats.lost, 3);
    }

    #[test]
    fn epoch_target_follows_new_window() {
        let mut s = sender(2.0);
        s.on_send();
        s.on_send();
        s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        // cwnd is now 3; the next epoch needs 3 feedback events.
        assert_eq!(s.cwnd(), 3.0);
        for _ in 0..3 {
            s.on_send();
        }
        assert!(!s.on_ack(Time::from_secs_f64(0.1), Time::ZERO, false));
        assert!(!s.on_ack(Time::from_secs_f64(0.1), Time::ZERO, false));
        assert!(s.on_ack(Time::from_secs_f64(0.1), Time::ZERO, false));
        assert_eq!(s.cwnd(), 4.0);
    }

    #[test]
    fn conservation_in_stats() {
        let mut s = sender(8.0);
        for _ in 0..8 {
            s.on_send();
        }
        for _ in 0..5 {
            s.on_ack(Time::from_secs_f64(0.05), Time::ZERO, false);
        }
        for _ in 0..2 {
            s.on_loss(Time::from_secs_f64(0.06), Time::from_secs_f64(0.01));
        }
        assert_eq!(s.stats.sent, 8);
        assert_eq!(s.stats.acked, 5);
        assert_eq!(s.stats.lost, 2);
        assert_eq!(s.in_flight(), 1);
        assert_eq!(s.stats.sent, s.stats.acked + s.stats.lost + s.in_flight());
    }
}
