//! # axcc-packetsim — event-driven packet-level simulator
//!
//! The paper validates Table 1 on Emulab with Linux-kernel TCPs; this crate
//! is that testbed's stand-in (see DESIGN.md §2 for the substitution
//! argument). It simulates, at per-packet granularity and in virtual time:
//!
//! * a **bottleneck link** serializing 1-MSS packets at bandwidth `B` with
//!   one-way propagation delay `Θ` (carried on the ACK path, so the
//!   loss-free RTT of an unqueued packet is exactly `2Θ + 1/B`);
//! * a **FIFO droptail queue** of capacity `τ` MSS in front of the link;
//! * **ACK-clocked window senders**: a sender keeps
//!   `⌊cwnd⌋` packets in flight, learns per-packet outcomes via
//!   SACK-style feedback (ACKs and loss notifications arrive one RTT after
//!   transmission), and hands its congestion-control [`Protocol`](axcc_core::Protocol)
//!   one observation per *epoch* — a window's worth of feedback, the
//!   packet-level realization of the fluid model's RTT step and of
//!   Robust-AIMD's "monitor interval";
//! * **flow churn**: every flow has optional start/stop times, and
//!   [`PacketScenario::churn`] expands the same deterministic seeded
//!   [`ChurnPlan`](axcc_topo::ChurnPlan) the fluid engine uses into a
//!   packet-level flow population — identical arrival patterns in both
//!   engines;
//! * composable **fault injection** ([`faults`]): Bernoulli or
//!   Gilbert–Elliott bursty wire loss (non-congestion loss, Metric VI),
//!   ACK-path loss, feedback jitter and reordering, link outages, and
//!   capacity flaps — all drawn from a seeded ChaCha8 RNG.
//!
//! The engine is single-threaded and fully deterministic: events at equal
//! timestamps are ordered by insertion sequence, virtual time is integer
//! nanoseconds, and all randomness flows from the scenario seed.
//!
//! Output is the same [`RunTrace`](axcc_core::RunTrace) the fluid simulator
//! produces (sampled on a fixed grid, default one minimum-RTT), plus
//! per-flow packet accounting ([`stats::FlowStats`]) with a conservation
//! invariant (`sent = acked + lost + in flight`) the test-suite enforces.
//!
//! ```
//! use axcc_core::{units::Bandwidth, LinkParams};
//! use axcc_packetsim::{PacketScenario, PacketSenderConfig};
//! use axcc_protocols::Aimd;
//!
//! // One of the paper's Emulab configurations: 20 Mbps, 42 ms RTT,
//! // 100-MSS buffer, two Reno flows.
//! let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0);
//! let out = PacketScenario::new(link)
//!     .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
//!     .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
//!     .duration_secs(30.0)
//!     .run();
//! let tail = out.trace.tail_start(0.5);
//! let fair = axcc_core::axioms::fairness::measured_fairness(&out.trace, tail);
//! assert!(fair > 0.5, "two Renos share fairly, got {fair}");
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

mod engine;
pub mod event;
pub mod faults;
pub mod queue;
pub mod red;
pub mod sender;
pub mod stats;
pub mod time;

pub use engine::{PacketScenario, PacketSenderConfig, SimOutput};
pub use event::{Event, EventQueue};
pub use faults::{FaultPlan, FaultState, WireLoss};
pub use queue::DropTailQueue;
pub use red::{Red, RedConfig, RedVerdict};
pub use sender::{SendMode, Sender};
pub use stats::{FlowStats, QueueStats};
pub use time::Time;
