//! The FIFO droptail bottleneck queue.
//!
//! Matches the paper's model: a buffer of `τ` MSS in front of a link that
//! serializes one 1-MSS packet per `1/B` seconds. A packet arriving while
//! `τ` packets wait is dropped (droptail). The packet currently being
//! serialized does not occupy buffer space (the usual router model; with
//! `τ = 0` the link still forwards one packet at a time).

use crate::time::Time;
use std::collections::VecDeque;

/// A packet's identity while queued: which flow sent it and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Index of the sending flow.
    pub flow: usize,
    /// Transmission (enqueue) time, used for the RTT sample on the ACK.
    pub sent_at: Time,
    /// ECN congestion-experienced mark, set by the queue when its depth
    /// exceeds the marking threshold at enqueue time (RFC 3168 style).
    pub marked: bool,
}

/// Outcome of offering a packet to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Accepted; the link was idle, so serialization starts immediately
    /// (the caller must schedule the departure).
    StartService,
    /// Accepted into the buffer behind other packets.
    Buffered,
    /// Dropped: the buffer already holds `τ` packets.
    Dropped,
}

/// FIFO droptail queue + link-occupancy state.
#[derive(Debug)]
pub struct DropTailQueue {
    capacity: usize,
    /// ECN marking threshold (packets waiting); `None` disables marking.
    ecn_threshold: Option<usize>,
    waiting: VecDeque<QueuedPacket>,
    in_service: Option<QueuedPacket>,
    // --- accounting ---
    enqueued: u64,
    dropped: u64,
    marked: u64,
    max_depth: usize,
}

impl DropTailQueue {
    /// A queue with buffer capacity `tau_mss` packets and no ECN.
    pub fn new(tau_mss: usize) -> Self {
        DropTailQueue {
            capacity: tau_mss,
            ecn_threshold: None,
            waiting: VecDeque::with_capacity(tau_mss.min(4096)),
            in_service: None,
            enqueued: 0,
            dropped: 0,
            marked: 0,
            max_depth: 0,
        }
    }

    /// Enable ECN: packets enqueued while `threshold` or more packets
    /// wait are marked congestion-experienced instead of waiting for a
    /// drop (the DCTCP-style step-marking discipline; §6's "in-network
    /// queueing" direction).
    ///
    /// # Panics
    ///
    /// Panics if the threshold exceeds the buffer capacity (marks could
    /// then never fire before drops).
    pub fn with_ecn(mut self, threshold: usize) -> Self {
        assert!(
            threshold <= self.capacity,
            "ECN threshold {threshold} exceeds buffer capacity {}",
            self.capacity
        );
        self.ecn_threshold = Some(threshold);
        self
    }

    /// Offer a packet at time `now`.
    pub fn offer(&mut self, mut pkt: QueuedPacket) -> Enqueue {
        if let Some(k) = self.ecn_threshold {
            if self.waiting.len() >= k {
                pkt.marked = true;
                self.marked += 1;
            }
        }
        if self.in_service.is_none() {
            debug_assert!(self.waiting.is_empty(), "idle link with non-empty buffer");
            self.in_service = Some(pkt);
            self.enqueued += 1;
            Enqueue::StartService
        } else if self.waiting.len() < self.capacity {
            self.waiting.push_back(pkt);
            self.enqueued += 1;
            self.max_depth = self.max_depth.max(self.waiting.len());
            Enqueue::Buffered
        } else {
            self.dropped += 1;
            Enqueue::Dropped
        }
    }

    /// Serialization of the in-service packet completed: return it, and
    /// promote the next waiting packet (if any) into service. The caller
    /// schedules the next departure iff the return's second element is
    /// `true`.
    ///
    /// # Panics
    ///
    /// Panics if the link was idle (a departure event without a packet in
    /// service indicates an engine bug).
    pub fn depart(&mut self) -> (QueuedPacket, bool) {
        #[allow(clippy::expect_used)] // engine invariant documented above
        // tidy-allow: panic-freedom — a departure event with no packet in service is an engine bug; see # Panics
        let done = self.in_service.take().expect("departure from idle link");
        if let Some(next) = self.waiting.pop_front() {
            self.in_service = Some(next);
            (done, true)
        } else {
            (done, false)
        }
    }

    /// Number of packets waiting in the buffer (excluding in-service).
    pub fn depth(&self) -> usize {
        self.waiting.len()
    }

    /// Whether the link is currently serializing a packet.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Total packets accepted (buffered or serviced).
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total packets dropped at the tail.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// High-water mark of the buffer depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Buffer capacity `τ` (packets).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total packets ECN-marked.
    pub fn total_marked(&self) -> u64 {
        self.marked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize) -> QueuedPacket {
        QueuedPacket {
            flow,
            sent_at: Time(0),
            marked: false,
        }
    }

    #[test]
    fn first_packet_starts_service() {
        let mut q = DropTailQueue::new(2);
        assert_eq!(q.offer(pkt(0)), Enqueue::StartService);
        assert!(q.busy());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn subsequent_packets_buffer_then_drop() {
        let mut q = DropTailQueue::new(2);
        assert_eq!(q.offer(pkt(0)), Enqueue::StartService);
        assert_eq!(q.offer(pkt(1)), Enqueue::Buffered);
        assert_eq!(q.offer(pkt(2)), Enqueue::Buffered);
        assert_eq!(q.offer(pkt(3)), Enqueue::Dropped);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.total_dropped(), 1);
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn fifo_order_on_departure() {
        let mut q = DropTailQueue::new(4);
        q.offer(pkt(10));
        q.offer(pkt(11));
        q.offer(pkt(12));
        let (p, more) = q.depart();
        assert_eq!(p.flow, 10);
        assert!(more);
        let (p, more) = q.depart();
        assert_eq!(p.flow, 11);
        assert!(more);
        let (p, more) = q.depart();
        assert_eq!(p.flow, 12);
        assert!(!more);
        assert!(!q.busy());
    }

    #[test]
    fn zero_capacity_forwards_one_at_a_time() {
        let mut q = DropTailQueue::new(0);
        assert_eq!(q.offer(pkt(0)), Enqueue::StartService);
        assert_eq!(q.offer(pkt(1)), Enqueue::Dropped);
        let (_, more) = q.depart();
        assert!(!more);
        assert_eq!(q.offer(pkt(2)), Enqueue::StartService);
    }

    #[test]
    fn max_depth_tracks_high_water() {
        let mut q = DropTailQueue::new(8);
        q.offer(pkt(0));
        for i in 0..5 {
            q.offer(pkt(i));
        }
        q.depart();
        q.depart();
        assert_eq!(q.max_depth(), 5);
    }

    #[test]
    #[should_panic(expected = "departure from idle link")]
    fn departure_from_idle_panics() {
        DropTailQueue::new(2).depart();
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = DropTailQueue::new(8).with_ecn(2);
        q.offer(pkt(0)); // in service, depth 0: unmarked
        q.offer(pkt(1)); // depth 0 -> 1: unmarked
        q.offer(pkt(2)); // depth 1 -> 2: unmarked (threshold not reached)
        q.offer(pkt(3)); // depth 2: marked
        q.offer(pkt(4)); // depth 3: marked
        assert_eq!(q.total_marked(), 2);
        assert_eq!(q.total_dropped(), 0);
        // Marks travel with the packets.
        let mut marks = Vec::new();
        while q.busy() {
            let (p, _) = q.depart();
            marks.push(p.marked);
        }
        assert_eq!(marks, vec![false, false, false, true, true]);
    }

    #[test]
    fn ecn_marking_does_not_prevent_tail_drop() {
        let mut q = DropTailQueue::new(2).with_ecn(1);
        q.offer(pkt(0));
        q.offer(pkt(1));
        q.offer(pkt(2)); // depth 1 ≥ threshold: marked, buffered
        assert_eq!(q.offer(pkt(3)), Enqueue::Dropped);
        assert_eq!(q.total_marked(), 2);
        assert_eq!(q.total_dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer capacity")]
    fn ecn_threshold_above_capacity_rejected() {
        DropTailQueue::new(4).with_ecn(5);
    }
}
