//! The event heap.
//!
//! A binary min-heap keyed by `(time, insertion sequence)`. The sequence
//! number makes simultaneous events fire in insertion order, which is what
//! makes the simulation deterministic (smoltcp-style "no surprises"): two
//! runs of the same scenario pop events in exactly the same order.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow becomes active and may start sending.
    FlowStart {
        /// Index of the flow.
        flow: usize,
    },
    /// A flow departs: it stops transmitting for good (in-flight packets
    /// still drain and their feedback is still delivered, keeping packet
    /// conservation exact).
    FlowStop {
        /// Index of the flow.
        flow: usize,
    },
    /// The packet at the head of the bottleneck queue finishes
    /// serialization.
    QueueDeparture,
    /// An ACK reaches the sender: the packet sent at `sent_at` was
    /// delivered (possibly carrying an ECN congestion mark).
    AckArrive {
        /// Index of the flow.
        flow: usize,
        /// Transmission time of the acked packet (for RTT sampling).
        sent_at: Time,
        /// Whether the packet was ECN-marked by the queue.
        marked: bool,
    },
    /// SACK-style loss feedback reaches the sender: one packet was lost.
    LossNotify {
        /// Index of the flow.
        flow: usize,
        /// Transmission time of the lost packet — the sender uses it to
        /// apply at most one back-off per congestion event (losses of
        /// packets sent before the last back-off are "discounted").
        sent_at: Time,
    },
    /// A paced flow's next transmission instant (rate-based senders only).
    PacedSend {
        /// Index of the flow.
        flow: usize,
    },
    /// A paced flow's monitor-interval boundary: close the epoch on time,
    /// not on feedback count.
    MiBoundary {
        /// Index of the flow.
        flow: usize,
    },
    /// The trace sampler fires (records every flow's instantaneous state).
    Sample,
}

#[derive(Debug)]
struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event (ties broken by insertion order).
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), Event::Sample);
        q.schedule(Time(10), Event::QueueDeparture);
        q.schedule(Time(20), Event::FlowStart { flow: 0 });
        assert_eq!(q.pop().unwrap().0, Time(10));
        assert_eq!(q.pop().unwrap().0, Time(20));
        assert_eq!(q.pop().unwrap().0, Time(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(5), Event::FlowStart { flow: 1 });
        q.schedule(Time(5), Event::FlowStart { flow: 2 });
        q.schedule(Time(5), Event::FlowStart { flow: 3 });
        let flows: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::FlowStart { flow } => flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flows, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time(1), Event::Sample);
        q.schedule(Time(2), Event::Sample);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Time(10), Event::Sample);
        q.schedule(Time(5), Event::Sample);
        assert_eq!(q.pop().unwrap().0, Time(5));
        q.schedule(Time(7), Event::Sample);
        q.schedule(Time(3), Event::Sample); // in the past relative to 5: still fine
        assert_eq!(q.pop().unwrap().0, Time(3));
        assert_eq!(q.pop().unwrap().0, Time(7));
        assert_eq!(q.pop().unwrap().0, Time(10));
    }
}
