//! Virtual time in integer nanoseconds.
//!
//! Floating-point timestamps make event ordering platform- and
//! history-dependent (`a + b + c ≠ a + c + b`); integer nanoseconds keep
//! the heap ordering exact and the whole simulation bit-for-bit
//! reproducible, at a resolution (1 ns) five orders of magnitude finer than
//! any delay the experiments use.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// Construct from seconds (rounded to the nearest nanosecond).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and >= 0, got {secs}"
        );
        Time((secs * 1e9).round() as u64)
    }

    /// The value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference (0 if `earlier` is later than `self`).
    pub fn saturating_since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        #[allow(clippy::expect_used)] // monotone event clock: underflow is an engine bug
        // tidy-allow: panic-freedom — the event clock is monotone; subtracting a later time is an engine bug
        Time(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        for s in [0.0, 0.042, 1.5, 30.0] {
            let t = Time::from_secs_f64(s);
            assert!((t.as_secs_f64() - s).abs() < 1e-9);
        }
    }

    #[test]
    fn nanosecond_resolution() {
        assert_eq!(Time::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(Time::from_secs_f64(0.042).as_nanos(), 42_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = Time(100);
        let b = Time(40);
        assert_eq!(a + b, Time(140));
        assert_eq!(a - b, Time(60));
        assert_eq!(b.saturating_since(a), Time::ZERO);
        assert_eq!(a.saturating_since(b), Time(60));
        let mut c = a;
        c += b;
        assert_eq!(c, Time(140));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time(5), Time(5));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn subtraction_underflow_panics() {
        let _ = Time(1) - Time(2);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_seconds_rejected() {
        Time::from_secs_f64(-1.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Time::from_secs_f64(0.042).to_string(), "0.042000s");
    }
}
