//! The discrete-event engine: scenario builder, main loop, trace sampling.

use crate::event::{Event, EventQueue};
use crate::faults::{FaultPlan, FaultState, WireLoss};
use crate::queue::{DropTailQueue, Enqueue, QueuedPacket};
use crate::red::{Red, RedConfig, RedVerdict};
use crate::sender::{SendMode, Sender};
use crate::stats::{FlowStats, QueueStats};
use crate::time::Time;
use axcc_core::protocol::MAX_WINDOW;
use axcc_core::{LinkParams, Protocol, RunTrace, ScenarioError, SenderTrace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One flow in a packet-level scenario.
pub struct PacketSenderConfig {
    protocol: Box<dyn Protocol>,
    initial_cwnd: f64,
    start_secs: f64,
    stop_secs: Option<f64>,
    mode: SendMode,
    extra_delay_secs: f64,
}

impl PacketSenderConfig {
    /// A flow running `protocol`, starting at t = 0 with a 1-MSS window.
    pub fn new(protocol: Box<dyn Protocol>) -> Self {
        PacketSenderConfig {
            protocol,
            initial_cwnd: 1.0,
            start_secs: 0.0,
            stop_secs: None,
            mode: SendMode::WindowClocked,
            extra_delay_secs: 0.0,
        }
    }

    /// Add a per-flow access delay (seconds, one-way): the flow's
    /// feedback takes `2 × extra` longer than the bottleneck's own
    /// propagation, modeling heterogeneous RTTs — the substrate of the
    /// classic RTT-unfairness experiments. Must be finite and `>= 0`
    /// (checked by [`PacketScenario::validate`]).
    pub fn extra_delay_secs(mut self, d: f64) -> Self {
        self.extra_delay_secs = d;
        self
    }

    /// Make this flow **paced**: it transmits on a timer at rate
    /// `cwnd/sRTT` and hands its protocol one observation per
    /// monitor interval (one sRTT) — the PCC/BBR sender class the paper's
    /// Section 2 defers to future research.
    pub fn paced(mut self) -> Self {
        self.mode = SendMode::Paced;
        self
    }

    /// Set the initial congestion window (MSS). Must be finite and
    /// `>= 0` (checked by [`PacketScenario::validate`]).
    pub fn initial_cwnd(mut self, w: f64) -> Self {
        self.initial_cwnd = w;
        self
    }

    /// Delay the flow's start (seconds). Must be finite and `>= 0`
    /// (checked by [`PacketScenario::validate`]).
    pub fn start_at_secs(mut self, t: f64) -> Self {
        self.start_secs = t;
        self
    }

    /// Remove the flow at the given time (seconds): it stops transmitting
    /// for good, though packets already in flight still drain. Must be
    /// finite and after the start time (checked by
    /// [`PacketScenario::validate`]). Models flow churn — short
    /// connections arriving and departing around long-lived ones.
    pub fn stop_at_secs(mut self, t: f64) -> Self {
        self.stop_secs = Some(t);
        self
    }
}

/// A packet-level scenario. Build fluently, then [`run`](PacketScenario::run)
/// (panics on invalid configuration) or [`try_run`](PacketScenario::try_run)
/// (returns [`ScenarioError`]).
///
/// Setters are non-panicking: all validation is centralized in
/// [`validate`](PacketScenario::validate), which both run paths call first.
pub struct PacketScenario {
    link: LinkParams,
    senders: Vec<PacketSenderConfig>,
    duration_secs: f64,
    faults: FaultPlan,
    seed: u64,
    sample_interval_secs: Option<f64>,
    max_window: f64,
    ecn_threshold: Option<usize>,
    red: Option<RedConfig>,
}

impl PacketScenario {
    /// A scenario on the given link: no flows yet, 10 s duration, no
    /// faults, seed 0, sampling every minimum RTT.
    pub fn new(link: LinkParams) -> Self {
        PacketScenario {
            link,
            senders: Vec::new(),
            duration_secs: 10.0,
            faults: FaultPlan::new(),
            seed: 0,
            sample_interval_secs: None,
            max_window: MAX_WINDOW,
            ecn_threshold: None,
            red: None,
        }
    }

    /// Add a flow.
    pub fn sender(mut self, cfg: PacketSenderConfig) -> Self {
        self.senders.push(cfg);
        self
    }

    /// Add `n` flows cloned from a prototype protocol.
    pub fn homogeneous(mut self, prototype: &dyn Protocol, n: usize) -> Self {
        for _ in 0..n {
            self.senders
                .push(PacketSenderConfig::new(prototype.clone_box()));
        }
        self
    }

    /// Add a churned flow population: expand `plan` over the scenario's
    /// current duration (set [`duration_secs`](Self::duration_secs)
    /// *first*) at a resolution of `step_secs` seconds per plan step, and
    /// add one flow per activity interval — each a clone of `prototype`
    /// arriving with a 1-MSS window and departing at its stop time. Using
    /// the fluid engine's step length for `step_secs` makes the two
    /// engines run the *same* arrival pattern.
    pub fn churn(
        mut self,
        plan: &axcc_topo::ChurnPlan,
        prototype: &dyn Protocol,
        step_secs: f64,
    ) -> Result<Self, ScenarioError> {
        if !(step_secs > 0.0 && step_secs.is_finite()) {
            return Err(ScenarioError::InvalidParameter {
                field: "step_secs",
                value: step_secs,
                constraint: "positive and finite",
            });
        }
        let horizon = (self.duration_secs / step_secs).floor().max(0.0) as u64;
        for iv in plan.try_expand(horizon)? {
            self.senders.push(
                PacketSenderConfig::new(prototype.clone_box())
                    .start_at_secs(iv.start as f64 * step_secs)
                    .stop_at_secs(iv.stop as f64 * step_secs),
            );
        }
        Ok(self)
    }

    /// Simulated duration in seconds. Must be positive and finite
    /// (checked by [`validate`](Self::validate)).
    pub fn duration_secs(mut self, d: f64) -> Self {
        self.duration_secs = d;
        self
    }

    /// Per-packet Bernoulli wire-loss probability (non-congestion loss).
    /// Shorthand for a fault plan whose data path is
    /// [`WireLoss::Bernoulli`]; composes with other impairments set via
    /// [`faults`](Self::faults) *before* this call (and is overwritten by
    /// a later `faults` call).
    pub fn wire_loss(mut self, rate: f64) -> Self {
        self.faults.data_loss = WireLoss::Bernoulli { rate };
        self
    }

    /// Install a full fault-injection plan (replaces any previous plan,
    /// including [`wire_loss`](Self::wire_loss)).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Seed the fault-injection RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the trace sampling interval (default: one minimum RTT).
    /// Must be positive and finite (checked by [`validate`](Self::validate)).
    pub fn sample_interval_secs(mut self, s: f64) -> Self {
        self.sample_interval_secs = Some(s);
        self
    }

    /// Cap congestion windows (the model's `M`). Must be positive
    /// (checked by [`validate`](Self::validate)).
    pub fn max_window(mut self, m: f64) -> Self {
        self.max_window = m;
        self
    }

    /// Enable ECN marking at the bottleneck: packets enqueued while
    /// `threshold` or more packets wait are marked rather than waiting to
    /// be dropped; senders treat delivered marks as congestion signals
    /// (RFC 3168 loss-equivalence). With a threshold well below the
    /// buffer, loss-based protocols operate *loss-free* at a short
    /// standing queue — the in-network-queueing direction of §6. The
    /// threshold must not exceed the link's buffer (checked by
    /// [`validate`](Self::validate)).
    pub fn ecn_threshold(mut self, threshold: usize) -> Self {
        self.ecn_threshold = Some(threshold);
        self
    }

    /// Enable RED at the bottleneck (random early drop/mark between the
    /// configured thresholds). Mutually exclusive with
    /// [`ecn_threshold`](Self::ecn_threshold) — they are alternative
    /// disciplines for the same queue (checked by
    /// [`validate`](Self::validate)).
    pub fn red(mut self, config: RedConfig) -> Self {
        self.red = Some(config);
        self
    }

    /// Check the full configuration. Both [`run`](Self::run) and
    /// [`try_run`](Self::try_run) call this before simulating; it is
    /// public so schedulers can validate scenarios they did not build.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.senders.is_empty() {
            return Err(ScenarioError::NoSenders);
        }
        if !(self.duration_secs > 0.0 && self.duration_secs.is_finite()) {
            return Err(ScenarioError::InvalidParameter {
                field: "duration_secs",
                value: self.duration_secs,
                constraint: "positive and finite",
            });
        }
        if let Some(s) = self.sample_interval_secs {
            if !(s > 0.0 && s.is_finite()) {
                return Err(ScenarioError::InvalidParameter {
                    field: "sample_interval_secs",
                    value: s,
                    constraint: "positive and finite",
                });
            }
        }
        if !(self.max_window.is_finite() && self.max_window > 0.0) {
            return Err(ScenarioError::InvalidParameter {
                field: "max_window",
                value: self.max_window,
                constraint: "positive and finite",
            });
        }
        if let Some(threshold) = self.ecn_threshold {
            if threshold as f64 > self.link.buffer.round() {
                return Err(ScenarioError::InvalidParameter {
                    field: "ecn_threshold",
                    value: threshold as f64,
                    constraint: "at most the link's buffer",
                });
            }
        }
        if let Some(red) = &self.red {
            red.check()?;
            if self.ecn_threshold.is_some() {
                return Err(ScenarioError::ConflictingOptions {
                    first: "RED",
                    second: "step-marking ECN",
                });
            }
        }
        self.faults.validate()?;
        for (i, sc) in self.senders.iter().enumerate() {
            let sender_field = |field, value, constraint| ScenarioError::InvalidSender {
                index: i,
                field,
                value,
                constraint,
            };
            if !(sc.initial_cwnd.is_finite() && sc.initial_cwnd >= 0.0) {
                return Err(sender_field(
                    "initial_cwnd",
                    sc.initial_cwnd,
                    "finite and >= 0",
                ));
            }
            if !(sc.start_secs.is_finite() && sc.start_secs >= 0.0) {
                return Err(sender_field(
                    "start_at_secs",
                    sc.start_secs,
                    "finite and >= 0",
                ));
            }
            if !(sc.extra_delay_secs.is_finite() && sc.extra_delay_secs >= 0.0) {
                return Err(sender_field(
                    "extra_delay_secs",
                    sc.extra_delay_secs,
                    "finite and >= 0",
                ));
            }
            if let Some(stop) = sc.stop_secs {
                if !(stop.is_finite() && stop > sc.start_secs) {
                    return Err(sender_field(
                        "stop_at_secs",
                        stop,
                        "finite and after the flow's start time",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Run the scenario, or return a typed error for an invalid
    /// configuration.
    pub fn try_run(self) -> Result<SimOutput, ScenarioError> {
        self.validate()?;
        Ok(Engine::new(self).run())
    }

    /// Run the scenario.
    ///
    /// # Panics
    ///
    /// Panics (with the [`ScenarioError`] message) on an invalid
    /// configuration. Use [`try_run`](Self::try_run) to handle errors as
    /// values.
    pub fn run(self) -> SimOutput {
        // tidy-allow: panic-freedom — documented panicking façade over try_run; fallible callers use the try_ path
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Result of a packet-level run: the sampled trace plus packet accounting.
#[derive(Debug)]
pub struct SimOutput {
    /// The sampled run trace (same shape as the fluid simulator's).
    pub trace: RunTrace,
    /// Per-flow packet counters, in flow order.
    pub flows: Vec<FlowStats>,
    /// Bottleneck queue counters.
    pub queue: QueueStats,
    /// Packets still in flight per flow when the run ended.
    pub in_flight_at_end: Vec<u64>,
}

impl SimOutput {
    /// Check packet conservation for every flow:
    /// `sent = acked + lost + in flight`.
    pub fn conservation_ok(&self) -> bool {
        self.flows
            .iter()
            .zip(&self.in_flight_at_end)
            .all(|(f, &inf)| f.conserves(inf))
    }
}

/// Per-flow accumulators between consecutive trace samples.
#[derive(Default, Clone)]
struct IntervalAccum {
    acked: u64,
    lost: u64,
    rtt_sum: f64,
    rtt_count: u64,
}

struct Engine {
    link: LinkParams,
    senders: Vec<Sender>,
    events: EventQueue,
    queue: DropTailQueue,
    rng: ChaCha8Rng,
    faults: FaultState,
    serialization: Time,
    /// Per-flow feedback delay: bottleneck RTT floor plus the flow's own
    /// access delay (both directions).
    flow_feedback_delay: Vec<Time>,
    /// The same floor in exact f64 seconds (the integer-nanosecond `Time`
    /// rounds, which would put recorded RTTs epsilon below `2Θ` and fail
    /// trace validation).
    flow_rtt_floor: Vec<f64>,
    red: Option<Red>,
    end: Time,
    sample_interval: Time,
    // trace assembly
    traces: Vec<SenderTrace>,
    total_col: Vec<f64>,
    rtt_col: Vec<f64>,
    loss_col: Vec<f64>,
    accums: Vec<IntervalAccum>,
    interval_queue_drops: u64,
    interval_queue_offered: u64,
    wire_lost: u64,
    red_dropped: u64,
    red_marked: u64,
    max_window: f64,
    seed: u64,
}

impl Engine {
    /// Build the runtime from a scenario `PacketScenario::validate` has
    /// already accepted.
    fn new(cfg: PacketScenario) -> Self {
        debug_assert_eq!(cfg.validate(), Ok(()));
        let link = cfg.link;
        let serialization = Time::from_secs_f64(1.0 / link.bandwidth);
        let feedback_delay = Time::from_secs_f64(link.min_rtt());
        let sample_interval =
            Time::from_secs_f64(cfg.sample_interval_secs.unwrap_or_else(|| link.min_rtt()));
        let end = Time::from_secs_f64(cfg.duration_secs);

        let mut events = EventQueue::new();
        let mut senders = Vec::with_capacity(cfg.senders.len());
        let mut traces = Vec::with_capacity(cfg.senders.len());
        let mut flow_feedback_delay = Vec::with_capacity(cfg.senders.len());
        let mut flow_rtt_floor = Vec::with_capacity(cfg.senders.len());
        for (i, sc) in cfg.senders.into_iter().enumerate() {
            let name = sc.protocol.name();
            let loss_based = sc.protocol.loss_based();
            senders.push(Sender::with_mode(
                sc.protocol,
                sc.initial_cwnd,
                cfg.max_window,
                sc.mode,
            ));
            flow_feedback_delay
                .push(feedback_delay + Time::from_secs_f64(2.0 * sc.extra_delay_secs));
            flow_rtt_floor.push(link.min_rtt() + 2.0 * sc.extra_delay_secs);
            traces.push(SenderTrace::with_capacity(name, loss_based, 256));
            events.schedule(
                Time::from_secs_f64(sc.start_secs),
                Event::FlowStart { flow: i },
            );
            if let Some(stop) = sc.stop_secs {
                events.schedule(Time::from_secs_f64(stop), Event::FlowStop { flow: i });
            }
        }
        events.schedule(Time::ZERO, Event::Sample);

        let n = senders.len();
        Engine {
            link,
            senders,
            events,
            queue: {
                let q = DropTailQueue::new(cfg.link.buffer.round().max(0.0) as usize);
                match cfg.ecn_threshold {
                    Some(k) => q.with_ecn(k),
                    None => q,
                }
            },
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            faults: FaultState::new(cfg.faults),
            serialization,
            flow_feedback_delay,
            flow_rtt_floor,
            red: cfg.red.map(Red::new),
            end,
            sample_interval,
            traces,
            total_col: Vec::new(),
            rtt_col: Vec::new(),
            loss_col: Vec::new(),
            accums: vec![IntervalAccum::default(); n],
            interval_queue_drops: 0,
            interval_queue_offered: 0,
            wire_lost: 0,
            red_dropped: 0,
            red_marked: 0,
            max_window: cfg.max_window,
            seed: cfg.seed,
        }
    }

    fn run(mut self) -> SimOutput {
        while let Some((now, ev)) = self.events.pop() {
            if now > self.end {
                break;
            }
            match ev {
                Event::FlowStart { flow } => {
                    self.senders[flow].active = true;
                    match self.senders[flow].mode() {
                        SendMode::WindowClocked => self.try_send(flow, now),
                        SendMode::Paced => {
                            self.events.schedule(now, Event::PacedSend { flow });
                            let mi = Time::from_secs_f64(self.link.min_rtt());
                            self.events.schedule(now + mi, Event::MiBoundary { flow });
                        }
                    }
                }
                Event::FlowStop { flow } => {
                    // The flow departs: no further transmissions (paced
                    // flows' timer events see `active == false` and lapse),
                    // but in-flight packets still drain and their feedback
                    // is still processed, so conservation stays exact.
                    self.senders[flow].active = false;
                }
                Event::QueueDeparture => self.on_departure(now),
                Event::AckArrive {
                    flow,
                    sent_at,
                    marked,
                } => {
                    self.accums[flow].acked += 1;
                    let rtt = now.saturating_since(sent_at).as_secs_f64();
                    self.accums[flow].rtt_sum += rtt;
                    self.accums[flow].rtt_count += 1;
                    self.senders[flow].on_ack(now, sent_at, marked);
                    if self.senders[flow].mode() == SendMode::WindowClocked {
                        self.try_send(flow, now);
                    }
                }
                Event::LossNotify { flow, sent_at } => {
                    self.accums[flow].lost += 1;
                    self.senders[flow].on_loss(now, sent_at);
                    if self.senders[flow].mode() == SendMode::WindowClocked {
                        self.try_send(flow, now);
                    }
                }
                Event::PacedSend { flow } => {
                    if self.senders[flow].active {
                        if self.senders[flow].pacing_gate_open() {
                            self.transmit_one(flow, now);
                        }
                        let next = now + self.senders[flow].pacing_interval(self.link.min_rtt());
                        if next <= self.end {
                            self.events.schedule(next, Event::PacedSend { flow });
                        }
                    }
                }
                Event::MiBoundary { flow } => {
                    if self.senders[flow].active {
                        self.senders[flow].close_epoch_timed(now);
                        // Next boundary after one (estimated) RTT.
                        let rtt = if self.senders[flow].last_rtt() > 0.0 {
                            self.senders[flow].last_rtt()
                        } else {
                            self.link.min_rtt()
                        };
                        let next = now + Time::from_secs_f64(rtt);
                        if next <= self.end {
                            self.events.schedule(next, Event::MiBoundary { flow });
                        }
                    }
                }
                Event::Sample => {
                    self.record_sample();
                    let next = now + self.sample_interval;
                    if next <= self.end {
                        self.events.schedule(next, Event::Sample);
                    }
                }
            }
        }

        let queue_stats = QueueStats {
            enqueued: self.queue.total_enqueued(),
            dropped: self.queue.total_dropped() + self.red_dropped,
            max_depth: self.queue.max_depth(),
            wire_lost: self.wire_lost,
            ack_lost: self.faults.ack_lost,
            marked: self.queue.total_marked() + self.red_marked,
        };
        let flows: Vec<FlowStats> = self.senders.iter().map(|s| s.stats).collect();
        let in_flight: Vec<u64> = self.senders.iter().map(|s| s.in_flight()).collect();

        let trace = RunTrace {
            link: self.link,
            senders: self.traces,
            total_window: self.total_col,
            rtt: self.rtt_col,
            loss: self.loss_col,
            seed: self.seed,
        };
        debug_assert_eq!(trace.validate(self.max_window), Ok(()));
        SimOutput {
            trace,
            flows,
            queue: queue_stats,
            in_flight_at_end: in_flight,
        }
    }

    /// Transmit as many packets as `flow`'s window allows (window-clocked
    /// flows).
    fn try_send(&mut self, flow: usize, now: Time) {
        if !self.senders[flow].active {
            return;
        }
        while self.senders[flow].can_send() > 0 {
            self.transmit_one(flow, now);
        }
    }

    /// Transmit exactly one packet from `flow`.
    fn transmit_one(&mut self, flow: usize, now: Time) {
        self.senders[flow].on_send();
        self.interval_queue_offered += 1;
        let mut pkt = QueuedPacket {
            flow,
            sent_at: now,
            marked: false,
        };
        // RED inspects every arrival before the droptail check.
        if let Some(red) = &mut self.red {
            let u = self.rng.gen::<f64>();
            match red.on_arrival(self.queue.depth(), u) {
                RedVerdict::Pass => {}
                RedVerdict::Mark => {
                    pkt.marked = true;
                    self.red_marked += 1;
                }
                RedVerdict::EarlyDrop => {
                    self.interval_queue_drops += 1;
                    self.red_dropped += 1;
                    self.events.schedule(
                        now + self.flow_feedback_delay[flow],
                        Event::LossNotify { flow, sent_at: now },
                    );
                    return;
                }
            }
        }
        match self.queue.offer(pkt) {
            Enqueue::StartService => {
                let ser = self.serialization_at(now);
                self.events.schedule(now + ser, Event::QueueDeparture);
            }
            Enqueue::Buffered => {}
            Enqueue::Dropped => {
                self.interval_queue_drops += 1;
                // SACK-style discovery: the sender learns of the hole
                // one feedback delay later.
                self.events.schedule(
                    now + self.flow_feedback_delay[flow],
                    Event::LossNotify { flow, sent_at: now },
                );
            }
        }
    }

    /// The bottleneck's serialization time at `now`: the nominal rate
    /// unless a capacity flap is active. Packets already in service keep
    /// their scheduled departure; the new rate applies from the next
    /// service start.
    fn serialization_at(&self, now: Time) -> Time {
        if self.faults.plan().capacity_flaps.is_empty() {
            return self.serialization;
        }
        let bw = self
            .faults
            .bandwidth_at(now.as_secs_f64(), self.link.bandwidth);
        Time::from_secs_f64(1.0 / bw)
    }

    fn on_departure(&mut self, now: Time) {
        let (pkt, more) = self.queue.depart();
        if more {
            let ser = self.serialization_at(now);
            self.events.schedule(now + ser, Event::QueueDeparture);
        }
        let flow = pkt.flow;
        let feedback = self.flow_feedback_delay[flow];
        // Fault pipeline, in wire order. The outage check is purely
        // deterministic and precedes every RNG draw, so adding an outage
        // window never shifts the random stream of the surviving steps.
        //
        // (1) Outage or data-path wire loss: the packet never arrives.
        if self.faults.in_outage(now.as_secs_f64()) || self.faults.data_strike(&mut self.rng) {
            self.wire_lost += 1;
            self.events.schedule(
                now + feedback,
                Event::LossNotify {
                    flow,
                    sent_at: pkt.sent_at,
                },
            );
            return;
        }
        // (2) ACK-path loss: the packet arrived but its feedback did not.
        // The sender discovers the hole by timeout — modeled as a loss
        // notification after twice the feedback delay (a conservative
        // RTO), which keeps packet conservation exact.
        if self.faults.ack_strike(&mut self.rng) {
            self.events.schedule(
                now + feedback + feedback,
                Event::LossNotify {
                    flow,
                    sent_at: pkt.sent_at,
                },
            );
            return;
        }
        // (3) Delivered feedback, possibly reordered and/or jittered.
        let extra = self.faults.feedback_extra_secs(&mut self.rng);
        let delay = feedback + Time::from_secs_f64(extra);
        self.events.schedule(
            now + delay,
            Event::AckArrive {
                flow,
                sent_at: pkt.sent_at,
                marked: pkt.marked,
            },
        );
    }

    fn record_sample(&mut self) {
        let mut total = 0.0;
        for (i, s) in self.senders.iter().enumerate() {
            let acc = &mut self.accums[i];
            let w = if s.active { s.cwnd() } else { 0.0 };
            total += w;
            let resolved = acc.acked + acc.lost;
            let loss = if resolved > 0 {
                (acc.lost as f64 / resolved as f64).min(1.0 - f64::EPSILON)
            } else {
                0.0
            };
            let flow_floor = self.flow_rtt_floor[i];
            let rtt = if acc.rtt_count > 0 {
                acc.rtt_sum / acc.rtt_count as f64
            } else if s.last_rtt() > 0.0 {
                s.last_rtt()
            } else {
                flow_floor
            };
            let goodput = acc.acked as f64 / self.sample_interval.as_secs_f64();
            self.traces[i].window.push(w);
            self.traces[i].loss.push(loss);
            // Flow RTT floors are heterogeneous (per-flow propagation
            // delay), so each flow keeps its own RTT column rather than
            // sharing the link-level one.
            self.traces[i].own_rtt_mut().push(rtt.max(flow_floor));
            self.traces[i].goodput.push(goodput);
            *acc = IntervalAccum::default();
        }
        self.total_col.push(total);
        // Link-level RTT implied by the instantaneous queue depth.
        let depth = self.queue.depth() as f64 + if self.queue.busy() { 1.0 } else { 0.0 };
        self.rtt_col
            .push(self.link.min_rtt() + depth / self.link.bandwidth);
        let offered = self.interval_queue_offered;
        let drops = self.interval_queue_drops;
        let loss = if offered > 0 {
            (drops as f64 / offered as f64).min(1.0 - f64::EPSILON)
        } else {
            0.0
        };
        self.loss_col.push(loss);
        self.interval_queue_offered = 0;
        self.interval_queue_drops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_core::units::Bandwidth;
    use axcc_protocols::{Aimd, RobustAimd};

    /// 20 Mbps, 42 ms RTT, 100-MSS buffer: a paper Emulab configuration.
    fn paper_link() -> LinkParams {
        LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 100.0)
    }

    #[test]
    fn single_reno_utilizes_the_link() {
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(30.0)
            .run();
        assert!(out.conservation_ok());
        // Goodput in the second half should be near link rate
        // (C = 70 MSS, τ = 100: efficiency is high).
        let tail = out.trace.tail_start(0.5);
        let goodput = out.trace.senders[0].mean_goodput_from(tail);
        let util = goodput / out.trace.link.bandwidth;
        assert!(util > 0.7, "utilization {util}");
    }

    #[test]
    fn two_renos_split_fairly() {
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(60.0)
            .run();
        let tail = out.trace.tail_start(0.5);
        let f = axcc_core::axioms::fairness::measured_fairness(&out.trace, tail);
        assert!(f > 0.5, "fairness {f}");
        assert!(out.conservation_ok());
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let out = PacketScenario::new(paper_link())
                .homogeneous(&Aimd::reno(), 2)
                .duration_secs(10.0)
                .seed(3)
                .run();
            (out.trace, out.flows)
        };
        let (t1, f1) = run();
        let (t2, f2) = run();
        assert_eq!(t1, t2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn queue_never_exceeds_buffer() {
        let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 10.0);
        let out = PacketScenario::new(link)
            .homogeneous(&Aimd::reno(), 3)
            .duration_secs(20.0)
            .run();
        assert!(
            out.queue.max_depth <= 10,
            "max depth {}",
            out.queue.max_depth
        );
        assert!(out.queue.dropped > 0, "shallow buffer must drop");
    }

    #[test]
    fn shallow_buffer_drops_more_than_deep() {
        let run = |buf: f64| {
            let link = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, buf);
            let out = PacketScenario::new(link)
                .homogeneous(&Aimd::reno(), 3)
                .duration_secs(30.0)
                .run();
            out.queue.drop_fraction()
        };
        assert!(run(10.0) > run(100.0));
    }

    #[test]
    fn wire_loss_is_counted_and_seeded() {
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(10.0)
            .wire_loss(0.02)
            .seed(9)
            .run();
        assert!(out.queue.wire_lost > 0);
        assert!(out.conservation_ok());
        let out2 = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(10.0)
            .wire_loss(0.02)
            .seed(9)
            .run();
        assert_eq!(out.queue.wire_lost, out2.queue.wire_lost);
    }

    #[test]
    fn robust_aimd_beats_reno_under_wire_loss() {
        // The PCC motivating scenario at packet level: 1% random loss,
        // lots of spare capacity.
        let link = LinkParams::from_experiment(Bandwidth::Mbps(100.0), 42.0, 500.0);
        let run = |p: Box<dyn Protocol>| {
            let out = PacketScenario::new(link)
                .sender(PacketSenderConfig::new(p))
                .duration_secs(60.0)
                .wire_loss(0.005)
                .seed(1)
                .run();
            let tail = out.trace.tail_start(0.5);
            out.trace.senders[0].mean_goodput_from(tail)
        };
        let robust = run(Box::new(RobustAimd::table2()));
        let reno = run(Box::new(Aimd::reno()));
        // At packet granularity the per-epoch loss rate is quantized at
        // 1/window, so a single drop in a ≤100-packet epoch reads as
        // "loss ≥ ε = 1%" and trips Robust-AIMD's back-off too; the
        // advantage is therefore a solid factor rather than the fluid
        // model's unbounded gap.
        assert!(
            robust > 1.5 * reno,
            "robust {robust} should clearly beat reno {reno}"
        );
    }

    #[test]
    fn late_start_flow_stays_idle_then_sends() {
        let out = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())).start_at_secs(5.0))
            .duration_secs(10.0)
            .run();
        // Samples before t = 5 s show a zero window for flow 1.
        let interval = out.trace.link.min_rtt();
        let cutoff = (5.0 / interval) as usize;
        assert!(out.trace.senders[1].window[..cutoff.saturating_sub(1)]
            .iter()
            .all(|&w| w == 0.0));
        assert!(out.flows[1].sent > 0);
    }

    #[test]
    fn stopped_flow_goes_quiet_and_conserves_packets() {
        let out = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())).stop_at_secs(5.0))
            .duration_secs(15.0)
            .run();
        assert!(out.conservation_ok());
        // Samples after the stop (plus drain slack) show a zero window
        // and zero goodput for the departed flow.
        let interval = out.trace.link.min_rtt();
        let after = (6.0 / interval) as usize;
        assert!(out.trace.senders[1].window[after..]
            .iter()
            .all(|&w| w == 0.0));
        assert!(
            out.trace.senders[1].goodput[after..]
                .iter()
                .all(|&g| g == 0.0),
            "departed flow still earned goodput"
        );
        // The survivor reclaims the capacity the departed flow vacated.
        let g = &out.trace.senders[0].goodput;
        let before =
            axcc_core::trace::mean(&g[(2.0 / interval) as usize..(5.0 / interval) as usize]);
        let later =
            axcc_core::trace::mean(&g[(10.0 / interval) as usize..(14.0 / interval) as usize]);
        assert!(later > before, "survivor {later} vs shared-era {before}");
    }

    #[test]
    fn stop_before_start_is_rejected() {
        let err = PacketScenario::new(paper_link())
            .sender(
                PacketSenderConfig::new(Box::new(Aimd::reno()))
                    .start_at_secs(5.0)
                    .stop_at_secs(5.0),
            )
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidSender {
                index: 0,
                field: "stop_at_secs",
                ..
            }
        ));
    }

    #[test]
    fn churned_packet_runs_are_deterministic() {
        let plan = axcc_topo::ChurnPlan::poisson(0.01, 120.0).seed(7);
        let run = || {
            let out = PacketScenario::new(paper_link())
                .homogeneous(&Aimd::reno(), 1)
                .duration_secs(20.0)
                .churn(&plan, &Aimd::reno(), paper_link().min_rtt())
                .unwrap()
                .run();
            assert!(out.conservation_ok());
            (out.trace, out.flows)
        };
        let (t1, f1) = run();
        let (t2, f2) = run();
        assert_eq!(t1, t2);
        assert_eq!(f1, f2);
        // The plan actually admitted churned flows alongside the base one.
        assert!(t1.senders.len() > 1, "plan produced no arrivals");
    }

    #[test]
    fn churn_uses_the_same_intervals_as_the_fluid_engine() {
        // Expanding the plan at the fluid step length and mapping to
        // seconds must land each packet flow's start/stop exactly where
        // the plan says.
        let plan = axcc_topo::ChurnPlan::poisson(0.02, 80.0).seed(3);
        let step = paper_link().min_rtt();
        let duration = 20.0;
        let ivs = plan.expand((duration / step).floor() as u64);
        let sc = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(duration)
            .churn(&plan, &Aimd::reno(), step)
            .unwrap();
        assert_eq!(sc.senders.len(), 1 + ivs.len());
        for (iv, cfg) in ivs.iter().zip(&sc.senders[1..]) {
            assert_eq!(cfg.start_secs, iv.start as f64 * step);
            assert_eq!(cfg.stop_secs, Some(iv.stop as f64 * step));
        }
    }

    #[test]
    fn rtt_samples_respect_propagation_floor() {
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(15.0)
            .run();
        let floor = out.trace.link.min_rtt();
        for i in 0..out.trace.senders.len() {
            assert!(out.trace.sender_rtt(i).iter().all(|&r| r >= floor - 1e-12));
        }
        // And queueing inflates RTTs beyond the floor at least sometimes.
        let max_rtt = out.trace.sender_rtt(0).iter().copied().fold(0.0, f64::max);
        assert!(max_rtt > floor * 1.05, "max rtt {max_rtt}");
    }

    #[test]
    fn trace_is_rectangular_and_valid() {
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 3)
            .duration_secs(5.0)
            .run();
        out.trace.validate(MAX_WINDOW).unwrap();
        let len = out.trace.len();
        assert!(len > 50);
        for s in &out.trace.senders {
            assert_eq!(s.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_scenario_panics() {
        PacketScenario::new(paper_link()).run();
    }

    #[test]
    fn try_run_returns_typed_errors_instead_of_panicking() {
        use crate::faults::FaultPlan;
        let err = PacketScenario::new(paper_link()).try_run().unwrap_err();
        assert_eq!(err, ScenarioError::NoSenders);

        let err = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(-3.0)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidParameter {
                field: "duration_secs",
                ..
            }
        ));

        let err = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .wire_loss(1.5)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidLossModel(_)));

        let err = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())).initial_cwnd(f64::NAN))
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidSender {
                index: 0,
                field: "initial_cwnd",
                ..
            }
        ));

        let err = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .ecn_threshold(100_000)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidParameter {
                field: "ecn_threshold",
                ..
            }
        ));

        let err = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .faults(FaultPlan::new().jitter(f64::NAN))
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidParameter {
                field: "jitter_secs",
                ..
            }
        ));
    }

    #[test]
    fn paced_pcc_utilizes_the_link() {
        use axcc_protocols::Pcc;
        let out = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Pcc::new())).paced())
            .duration_secs(40.0)
            .run();
        assert!(out.conservation_ok());
        let tail = out.trace.tail_start(0.5);
        let goodput = out.trace.senders[0].mean_goodput_from(tail);
        let util = goodput / out.trace.link.bandwidth;
        assert!(util > 0.7, "paced PCC utilization {util}");
        // MI boundaries produced epochs at ~RTT cadence, far fewer than
        // the packet count.
        assert!(out.flows[0].epochs > 100);
        assert!(out.flows[0].epochs < out.flows[0].sent / 4);
    }

    #[test]
    fn paced_flow_is_rate_limited_not_bursty() {
        use axcc_protocols::Pcc;
        // A paced flow's in-flight data stays near cwnd (its pacing rate
        // spreads packets out); the local gate bounds it strictly.
        let out = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Pcc::new())).paced())
            .duration_secs(20.0)
            .run();
        let tail = out.trace.tail_start(0.5);
        let max_cwnd = out.trace.senders[0].window[tail..]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(
            (out.in_flight_at_end[0] as f64) <= 4.0 * max_cwnd + 64.0,
            "in flight {} vs cwnd {max_cwnd}",
            out.in_flight_at_end[0]
        );
    }

    #[test]
    fn paced_and_windowed_reno_coexist() {
        let out = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())).paced())
            .duration_secs(40.0)
            .run();
        assert!(out.conservation_ok());
        let tail = out.trace.tail_start(0.5);
        let g0 = out.trace.senders[0].mean_goodput_from(tail);
        let g1 = out.trace.senders[1].mean_goodput_from(tail);
        // Same protocol, different clocking. The paced flow wins decisively
        // at a droptail queue — its steady arrivals dodge the synchronized
        // burst drops that hit the ACK-clocked flow — but must not starve
        // the window-clocked one outright.
        assert!(g1 > g0, "paced {g1} should out-earn windowed {g0} here");
        let ratio = g0.min(g1) / g0.max(g1);
        assert!(ratio > 0.08, "goodputs {g0} vs {g1}");
    }

    #[test]
    fn paced_runs_are_deterministic() {
        use axcc_protocols::Pcc;
        let run = || {
            let out = PacketScenario::new(paper_link())
                .sender(PacketSenderConfig::new(Box::new(Pcc::new())).paced())
                .duration_secs(10.0)
                .run();
            (out.trace, out.flows)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn red_keeps_the_average_queue_short() {
        use crate::red::RedConfig;
        let plain = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 3)
            .duration_secs(30.0)
            .run();
        let red = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 3)
            .duration_secs(30.0)
            .red(RedConfig::classic(100.0))
            .seed(2)
            .run();
        assert!(red.conservation_ok());
        // RED's early random signals keep the worst-case queue depth well
        // below droptail's full buffer…
        assert!(
            red.queue.max_depth < plain.queue.max_depth,
            "RED {} vs droptail {}",
            red.queue.max_depth,
            plain.queue.max_depth
        );
        // …at comparable utilization.
        let g = |out: &SimOutput| {
            let tail = out.trace.tail_start(0.5);
            out.trace
                .senders
                .iter()
                .map(|s| s.mean_goodput_from(tail))
                .sum::<f64>()
        };
        assert!(
            g(&red) > 0.7 * g(&plain),
            "RED {} vs plain {}",
            g(&red),
            g(&plain)
        );
    }

    #[test]
    fn red_marking_variant_is_loss_free_at_light_load() {
        use crate::red::RedConfig;
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(20.0)
            .red(RedConfig::classic_marking(100.0))
            .run();
        // Marks replace early drops; tail drops can still occur only if
        // the ramp saturates, which two Renos at τ=100 never force.
        assert!(out.queue.marked > 0);
        assert_eq!(out.queue.dropped, 0, "marking RED dropped packets");
    }

    #[test]
    #[should_panic(expected = "not both")]
    fn red_and_step_ecn_are_exclusive() {
        use crate::red::RedConfig;
        PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .ecn_threshold(20)
            .red(RedConfig::classic(100.0))
            .run();
    }

    #[test]
    fn bursty_and_uniform_loss_both_impair_at_packet_granularity() {
        use crate::faults::{FaultPlan, WireLoss};
        // Same 1% mean rate, two temporal structures. At per-packet
        // granularity a burst of consecutive drops lands inside one
        // SACK-recovery epoch and costs one back-off, while the same
        // number of drops spread uniformly trigger a back-off each — the
        // classic correlated-loss result: at fixed mean rate, bursty loss
        // leaves an AIMD *more* goodput than independent loss.
        let run = |plan: FaultPlan| {
            let link = LinkParams::from_experiment(Bandwidth::Mbps(100.0), 42.0, 500.0);
            let out = PacketScenario::new(link)
                .homogeneous(&Aimd::reno(), 1)
                .duration_secs(30.0)
                .faults(plan)
                .seed(11)
                .run();
            assert!(out.conservation_ok());
            let tail = out.trace.tail_start(0.5);
            out.trace.senders[0].mean_goodput_from(tail)
        };
        let clean = run(FaultPlan::new());
        let uniform = run(FaultPlan::new().data_loss(WireLoss::Bernoulli { rate: 0.01 }));
        let bursty = run(FaultPlan::new().data_loss(WireLoss::bursty(0.01, 8.0, 0.25)));
        // Both impair badly relative to the clean link…
        assert!(uniform < 0.25 * clean, "uniform {uniform} vs clean {clean}");
        assert!(bursty < 0.5 * clean, "bursty {bursty} vs clean {clean}");
        // …and the burst structure concentrates drops into fewer
        // congestion events, retaining more goodput than uniform.
        assert!(bursty > uniform, "bursty {bursty} vs uniform {uniform}");
    }

    #[test]
    fn ack_loss_is_counted_and_conserves_packets() {
        use crate::faults::{FaultPlan, WireLoss};
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(10.0)
            .faults(FaultPlan::new().ack_loss(WireLoss::Bernoulli { rate: 0.02 }))
            .seed(5)
            .run();
        assert!(out.queue.ack_lost > 0, "no ACKs were lost");
        assert_eq!(out.queue.wire_lost, 0);
        assert!(out.conservation_ok());
    }

    #[test]
    fn outage_stops_delivery_then_recovers() {
        use crate::faults::FaultPlan;
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(20.0)
            .faults(FaultPlan::new().outage(8.0, 10.0))
            .run();
        assert!(out.conservation_ok());
        assert!(out.queue.wire_lost > 0, "outage lost no packets");
        // Goodput in the outage window collapses vs the surrounding steady
        // state; afterwards the flow recovers.
        let interval = out.trace.link.min_rtt();
        let idx = |secs: f64| (secs / interval) as usize;
        let g = &out.trace.senders[0].goodput;
        let during = axcc_core::trace::mean(&g[idx(8.5)..idx(10.0)]);
        let after = axcc_core::trace::mean(&g[idx(15.0)..idx(19.0)]);
        assert!(during < 0.2 * after, "during {during} vs after {after}");
    }

    #[test]
    fn capacity_flap_halves_throughput() {
        use crate::faults::FaultPlan;
        // Nominal 20 Mbps (≈1667 MSS/s); flap to half rate at t = 15 s.
        let nominal = paper_link().bandwidth;
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(30.0)
            .faults(FaultPlan::new().capacity_flap(15.0, nominal / 2.0))
            .run();
        assert!(out.conservation_ok());
        let interval = out.trace.link.min_rtt();
        let idx = |secs: f64| (secs / interval) as usize;
        let g = &out.trace.senders[0].goodput;
        let before = axcc_core::trace::mean(&g[idx(8.0)..idx(14.0)]);
        let after = axcc_core::trace::mean(&g[idx(22.0)..idx(29.0)]);
        assert!(
            after < 0.75 * before,
            "goodput before {before} vs after flap {after}"
        );
        assert!(
            after > 0.25 * before,
            "flow should survive the flap: {after}"
        );
    }

    #[test]
    fn jitter_and_reorder_keep_conservation_and_determinism() {
        use crate::faults::{FaultPlan, WireLoss};
        let run = |seed| {
            let out = PacketScenario::new(paper_link())
                .homogeneous(&Aimd::reno(), 2)
                .duration_secs(10.0)
                .faults(
                    FaultPlan::new()
                        .data_loss(WireLoss::bursty(0.005, 4.0, 0.2))
                        .ack_loss(WireLoss::Bernoulli { rate: 0.005 })
                        .jitter(0.002)
                        .reorder(0.01, 0.02),
                )
                .seed(seed)
                .run();
            assert!(out.conservation_ok());
            (out.trace, out.flows, out.queue)
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a, b);
        assert_ne!(a.0, run(4).0);
    }

    #[test]
    fn bernoulli_fault_path_reproduces_legacy_wire_loss_stream() {
        // wire_loss(r) is sugar for a Bernoulli data-loss plan; both must
        // consume the identical RNG stream and hence produce identical
        // runs for the same seed.
        use crate::faults::{FaultPlan, WireLoss};
        let legacy = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(10.0)
            .wire_loss(0.02)
            .seed(9)
            .run();
        let plan = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 1)
            .duration_secs(10.0)
            .faults(FaultPlan::new().data_loss(WireLoss::Bernoulli { rate: 0.02 }))
            .seed(9)
            .run();
        assert_eq!(legacy.trace, plan.trace);
        assert_eq!(legacy.queue, plan.queue);
    }

    #[test]
    fn rtt_unfairness_with_heterogeneous_delays() {
        // Two Renos; flow 1 has +42 ms of one-way access delay (3x the
        // total RTT). The short-RTT flow completes its epochs ~3x faster
        // and takes the larger share — classic RTT unfairness.
        let out = PacketScenario::new(paper_link())
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())))
            .sender(PacketSenderConfig::new(Box::new(Aimd::reno())).extra_delay_secs(0.042))
            .duration_secs(60.0)
            .run();
        assert!(out.conservation_ok());
        let tail = out.trace.tail_start(0.5);
        let g_short = out.trace.senders[0].mean_goodput_from(tail);
        let g_long = out.trace.senders[1].mean_goodput_from(tail);
        assert!(
            g_short > 1.5 * g_long,
            "short-RTT {g_short} vs long-RTT {g_long}"
        );
        // And the long flow's RTT samples include the access delay.
        let long_min_rtt = out
            .trace
            .sender_rtt(1)
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            long_min_rtt >= 0.042 + 0.084 - 1e-9,
            "min rtt {long_min_rtt}"
        );
    }

    #[test]
    fn ecn_eliminates_drops_and_shortens_the_queue() {
        // Same two-Reno scenario with and without ECN (mark at 20 of 100
        // MSS): with ECN the senders back off on marks before the buffer
        // ever fills — zero drops, much shorter standing queue, same
        // ballpark of goodput.
        let plain = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(30.0)
            .run();
        let ecn = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(30.0)
            .ecn_threshold(20)
            .run();
        assert!(plain.queue.dropped > 0);
        assert_eq!(ecn.queue.dropped, 0, "ECN run must be loss-free");
        assert!(ecn.queue.marked > 0);
        assert!(
            ecn.queue.max_depth < plain.queue.max_depth,
            "ECN queue {} vs droptail {}",
            ecn.queue.max_depth,
            plain.queue.max_depth
        );
        // Goodput within 25% of the droptail run.
        let g = |out: &SimOutput| {
            let tail = out.trace.tail_start(0.5);
            out.trace
                .senders
                .iter()
                .map(|s| s.mean_goodput_from(tail))
                .sum::<f64>()
        };
        let (gp, ge) = (g(&plain), g(&ecn));
        assert!(ge > 0.75 * gp, "ECN goodput {ge} vs droptail {gp}");
        // Marks are visible in the flow stats and conservation still holds.
        assert!(ecn.flows.iter().any(|f| f.marked > 0));
        assert!(ecn.conservation_ok());
    }

    #[test]
    fn ecn_keeps_rtt_near_the_mark_threshold() {
        let out = PacketScenario::new(paper_link())
            .homogeneous(&Aimd::reno(), 2)
            .duration_secs(30.0)
            .ecn_threshold(20)
            .run();
        let link = out.trace.link;
        let tail = out.trace.tail_start(0.5);
        // Mean RTT stays well below the full-buffer RTT: the standing
        // queue hovers around the 20-packet threshold, not 100.
        let mean_rtt = axcc_core::trace::mean(&out.trace.sender_rtt(0)[tail..]);
        let full_buffer_rtt = link.min_rtt() + link.buffer / link.bandwidth;
        let threshold_rtt = link.min_rtt() + 30.0 / link.bandwidth;
        assert!(
            mean_rtt < threshold_rtt,
            "mean rtt {mean_rtt} vs threshold-ish {threshold_rtt} (full {full_buffer_rtt})"
        );
    }
}
