//! Ignored-by-default wall-clock probes for the engine hot path. Run with
//! `cargo test --release -p axcc-fluidsim --test profile_hotloop -- --ignored --nocapture`
//! to see where a gauntlet-shaped run spends its time.

use axcc_core::LinkParams;
use axcc_fluidsim::{
    metric_accumulator_for, try_run_scenario_with, LossModel, Scenario, SenderConfig, StepSink,
    StreamOptions, TraceSink,
};
use axcc_protocols::Aimd;
use std::time::Instant;

struct NullSink;
impl StepSink for NullSink {
    fn on_step(
        &mut self,
        _t: u64,
        _total: f64,
        _rtt: f64,
        _loss: f64,
        _records: &[axcc_fluidsim::StepRecord],
    ) {
    }
}

/// A null sink that still pays the default row-replay path (no on_steps
/// override), isolating the block-replay overhead.
struct ReplaySink(u64);
impl StepSink for ReplaySink {
    fn on_step(
        &mut self,
        t: u64,
        _total: f64,
        _rtt: f64,
        _loss: f64,
        _records: &[axcc_fluidsim::StepRecord],
    ) {
        self.0 = self.0.wrapping_add(t);
    }
}

struct BlockNullSink;
impl StepSink for BlockNullSink {
    fn on_step(
        &mut self,
        _t: u64,
        _total: f64,
        _rtt: f64,
        _loss: f64,
        _records: &[axcc_fluidsim::StepRecord],
    ) {
    }
    fn on_steps(&mut self, _block: &axcc_fluidsim::StepBlock) {}
}

fn gauntlet_like() -> Scenario {
    Scenario::new(LinkParams::new(1e9, 0.05, 1e9))
        .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0))
        .wire_loss(LossModel::bursty(0.01, 8.0, 0.3))
        .steps(3000)
        .seed(7)
}

#[test]
#[ignore]
fn profile_cost_decomposition() {
    const REPS: usize = 2000;
    let time = |build: &dyn Fn() -> Scenario| {
        let mut sink = BlockNullSink;
        try_run_scenario_with(build(), &mut sink).unwrap();
        let t0 = Instant::now();
        for _ in 0..REPS {
            let mut sink = BlockNullSink;
            try_run_scenario_with(build(), &mut sink).unwrap();
        }
        t0.elapsed().as_secs_f64() * 1e9 / (REPS as f64 * 3000.0)
    };
    let base = |n: usize| {
        let mut sc = Scenario::new(LinkParams::new(1e9, 0.05, 1e9))
            .steps(3000)
            .seed(7);
        for _ in 0..n {
            sc = sc.sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0));
        }
        sc
    };
    println!(
        "1 sender, no loss:        {:>7.1} ns/step",
        time(&|| base(1))
    );
    println!(
        "1 sender, constant loss:  {:>7.1} ns/step",
        time(&|| base(1).wire_loss(LossModel::Constant { rate: 0.01 }))
    );
    println!(
        "1 sender, bernoulli loss: {:>7.1} ns/step",
        time(&|| base(1).wire_loss(LossModel::Bernoulli { rate: 0.01 }))
    );
    println!(
        "1 sender, bursty loss:    {:>7.1} ns/step",
        time(&|| base(1).wire_loss(LossModel::bursty(0.01, 8.0, 0.3)))
    );
    println!(
        "8 senders, bursty loss:   {:>7.1} ns/step",
        time(&|| base(8).wire_loss(LossModel::bursty(0.01, 8.0, 0.3)))
    );
    println!(
        "8 senders, no loss:       {:>7.1} ns/step",
        time(&|| base(8))
    );
}

#[test]
#[ignore]
fn profile_gauntlet_shape() {
    const REPS: usize = 2000;
    let warm = gauntlet_like();
    let mut sink = NullSink;
    try_run_scenario_with(warm, &mut sink).unwrap();

    let t0 = Instant::now();
    for _ in 0..REPS {
        let mut sink = BlockNullSink;
        try_run_scenario_with(gauntlet_like(), &mut sink).unwrap();
    }
    let engine_only = t0.elapsed();

    let t0 = Instant::now();
    for _ in 0..REPS {
        let mut sink = ReplaySink(0);
        try_run_scenario_with(gauntlet_like(), &mut sink).unwrap();
    }
    let replay = t0.elapsed();

    let t0 = Instant::now();
    for _ in 0..REPS {
        let mut sink = TraceSink::for_scenario(&gauntlet_like());
        try_run_scenario_with(gauntlet_like(), &mut sink).unwrap();
        std::hint::black_box(sink.into_trace());
    }
    let traced = t0.elapsed();

    let t0 = Instant::now();
    for _ in 0..REPS {
        let sc = gauntlet_like();
        let mut acc = metric_accumulator_for(&sc, &StreamOptions::default());
        try_run_scenario_with(sc, &mut acc).unwrap();
        std::hint::black_box(acc.measured_efficiency());
    }
    let streamed = t0.elapsed();

    let per = |d: std::time::Duration| d.as_secs_f64() * 1e9 / (REPS as f64 * 3000.0);
    println!(
        "engine-only (block null sink): {:>7.1} ns/step",
        per(engine_only)
    );
    println!(
        "engine + row replay:           {:>7.1} ns/step",
        per(replay)
    );
    println!(
        "engine + TraceSink:            {:>7.1} ns/step",
        per(traced)
    );
    println!(
        "engine + MetricAccumulator:    {:>7.1} ns/step",
        per(streamed)
    );
}

#[test]
#[ignore]
fn profile_protocol_mix() {
    use axcc_protocols::{Cubic, Mimd, Pcc, RobustAimd, Vegas};
    const REPS: usize = 1000;
    let time = |build: &dyn Fn() -> Scenario| {
        let mut sink = BlockNullSink;
        try_run_scenario_with(build(), &mut sink).unwrap();
        let t0 = Instant::now();
        for _ in 0..REPS {
            let mut sink = BlockNullSink;
            try_run_scenario_with(build(), &mut sink).unwrap();
        }
        t0.elapsed().as_secs_f64() * 1e9 / (REPS as f64 * 3000.0)
    };
    let with = |p: Box<dyn axcc_core::Protocol>| {
        Scenario::new(LinkParams::new(1e9, 0.05, 1e9))
            .sender(SenderConfig::new(p).initial_window(10.0))
            .wire_loss(LossModel::bursty(0.01, 8.0, 0.3))
            .steps(3000)
            .seed(7)
    };
    println!(
        "reno:        {:>7.1} ns/step",
        time(&|| with(Box::new(Aimd::reno())))
    );
    println!(
        "cubic:       {:>7.1} ns/step",
        time(&|| with(Box::new(Cubic::linux())))
    );
    println!(
        "mimd:        {:>7.1} ns/step",
        time(&|| with(Box::new(Mimd::scalable())))
    );
    println!(
        "robust_aimd: {:>7.1} ns/step",
        time(&|| with(Box::new(RobustAimd::new(1.0, 0.8, 0.01))))
    );
    println!(
        "pcc:         {:>7.1} ns/step",
        time(&|| with(Box::new(Pcc::new())))
    );
    println!(
        "vegas:       {:>7.1} ns/step",
        time(&|| with(Box::new(Vegas::classic())))
    );
}
