//! Property tests for the multi-link network engine: for arbitrary
//! topologies, paths and protocols, the composition laws must hold and the
//! single-link case must reduce exactly to the paper's model.

use axcc_core::LinkParams;
use axcc_fluidsim::{FlowConfig, NetScenario, Scenario, SenderConfig, Topology};
use axcc_protocols::registry::resolve;
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = LinkParams> {
    (300.0f64..5000.0, 0.01f64..0.1, 0.0f64..200.0)
        .prop_map(|(b, th, tau)| LinkParams::new(b, th, tau))
}

fn arb_protocol_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("reno"),
        Just("cubic"),
        Just("scalable"),
        Just("robust-aimd"),
        Just("vegas"),
        Just("tfrc"),
        Just("aimd(2,0.7)"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A single-link network run reduces to the single-bottleneck engine.
    /// For loss-based protocols the window/loss trajectories are
    /// bit-identical; RTTs agree to floating-point reassociation (the
    /// network engine computes `2Θ + (RTT − 2Θ)`, one ULP off `RTT`,
    /// which is also why delay-based protocols are excluded here — an ULP
    /// can flip a Vegas threshold decision).
    #[test]
    fn single_link_reduction(
        link in arb_link(),
        name in prop_oneof![
            Just("reno"),
            Just("cubic"),
            Just("scalable"),
            Just("robust-aimd"),
            Just("tfrc"),
            Just("aimd(2,0.7)"),
        ],
        init in 1.0f64..200.0,
    ) {
        let net = NetScenario::new(Topology::new(vec![link]))
            .flow(FlowConfig::new(resolve(name).unwrap(), vec![0]).initial_window(init))
            .steps(200)
            .run();
        let single = Scenario::new(link)
            .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(init))
            .steps(200)
            .run();
        prop_assert_eq!(&net.flows[0].window, &single.senders[0].window);
        prop_assert_eq!(&net.flows[0].loss, &single.senders[0].loss);
        for (a, b) in net.flow_rtt(0).iter().zip(single.sender_rtt(0)) {
            prop_assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    /// Composition laws hold at every step of every flow: loss composes
    /// multiplicatively across the path, base RTT sums, and link loads
    /// equal the sum of crossing windows.
    #[test]
    fn composition_laws(
        hop in arb_link(),
        hops in 1usize..4,
        name in arb_protocol_name(),
        long_init in 1.0f64..100.0,
    ) {
        let mut sc = NetScenario::new(Topology::parking_lot(hops, hop)).steps(150);
        sc = sc.flow(
            FlowConfig::new(resolve(name).unwrap(), (0..hops).collect())
                .initial_window(long_init),
        );
        for l in 0..hops {
            sc = sc.flow(FlowConfig::new(resolve(name).unwrap(), vec![l]));
        }
        let net = sc.run();
        for t in 0..net.len() {
            // Link load = long flow + that hop's short flow.
            for l in 0..hops {
                let expect = net.flows[0].window[t] + net.flows[1 + l].window[t];
                prop_assert!((net.link_load[l][t] - expect).abs() < 1e-9);
                prop_assert!(
                    (net.link_loss[l][t] - hop.loss_rate(net.link_load[l][t])).abs() < 1e-12
                );
            }
            // Long-flow loss composes across its path.
            let composed = 1.0
                - (0..hops)
                    .map(|l| 1.0 - net.link_loss[l][t])
                    .product::<f64>();
            prop_assert!((net.flows[0].loss[t] - composed).abs() < 1e-12);
            // Long-flow RTT at least the summed propagation floor.
            prop_assert!(net.flow_rtt(0)[t] >= hops as f64 * hop.min_rtt() - 1e-12);
        }
    }

    /// The network engine is deterministic: identical scenarios give
    /// identical traces.
    #[test]
    fn network_determinism(
        hop in arb_link(),
        name in arb_protocol_name(),
    ) {
        let run = || {
            NetScenario::new(Topology::parking_lot(2, hop))
                .flow(FlowConfig::new(resolve(name).unwrap(), vec![0, 1]))
                .flow(FlowConfig::new(resolve(name).unwrap(), vec![0]))
                .steps(120)
                .run()
        };
        prop_assert_eq!(run(), run());
    }
}
