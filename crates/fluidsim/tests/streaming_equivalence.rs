//! Property test for the tentpole invariant of the streaming engine path:
//! for *arbitrary* scenarios — protocol mixes, links, staggered starts,
//! wire-loss models, bandwidth changes and feedback modes — the
//! [`MetricAccumulator`] produced by the trace-free streaming run scores
//! every axiom **bit-identically** to evaluating the recorded trace.
//!
//! The unit tests in `engine.rs` pin a handful of hand-picked scenarios;
//! this test quantifies over the scenario space.

// Test-only helper fns sit outside #[test], where the workspace's
// allow-unwrap-in-tests exemption does not reach.
#![allow(clippy::unwrap_used)]

use axcc_core::axioms::{
    convergence, efficiency, fairness, fast_utilization, friendliness, latency, loss_avoidance,
    robustness,
};
use axcc_core::LinkParams;
use axcc_fluidsim::{
    try_run_scenario_streaming, FeedbackMode, LossModel, Scenario, SenderConfig, StreamOptions,
};
use axcc_protocols::registry::resolve;
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = LinkParams> {
    (300.0f64..5000.0, 0.01f64..0.1, 0.0f64..200.0)
        .prop_map(|(b, th, tau)| LinkParams::new(b, th, tau))
}

fn arb_protocol_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("reno"),
        Just("cubic"),
        Just("scalable"),
        Just("robust-aimd"),
        Just("pcc"),
        Just("vegas"),
        Just("bbr"),
        Just("mimd(1.05,0.5)"),
        Just("bin(1,0.5,0.5,0.5)"),
    ]
}

fn arb_loss() -> impl Strategy<Value = LossModel> {
    prop_oneof![
        Just(LossModel::None),
        (0.001f64..0.1).prop_map(|rate| LossModel::Constant { rate }),
        (0.001f64..0.1).prop_map(|rate| LossModel::Bernoulli { rate }),
        (0.005f64..0.05, 2.0f64..8.0, 0.05f64..0.4)
            .prop_map(|(p, burst, loss)| LossModel::bursty(p, burst, loss)),
    ]
}

/// All scenario degrees of freedom the engine loop branches on, as one
/// value so the trace and streaming runs are built from identical inputs
/// (`Scenario` owns boxed protocols and is not `Clone`).
#[derive(Debug, Clone)]
struct Params {
    link: LinkParams,
    names: Vec<&'static str>,
    inits: Vec<f64>,
    starts: Vec<u64>,
    loss: LossModel,
    seed: u64,
    per_packet: bool,
    bw_change: Option<f64>,
    steps: usize,
    tail_fraction: f64,
}

fn build(p: &Params) -> Scenario {
    let n = p.names.len().min(p.inits.len()).min(p.starts.len());
    let mut sc = Scenario::new(p.link)
        .steps(p.steps)
        .wire_loss(p.loss)
        .seed(p.seed);
    for i in 0..n {
        sc = sc.sender(
            SenderConfig::new(resolve(p.names[i]).unwrap())
                .initial_window(p.inits[i])
                .start_at(p.starts[i]),
        );
    }
    if p.per_packet {
        sc = sc.feedback(FeedbackMode::PerPacket);
    }
    if let Some(bw) = p.bw_change {
        sc = sc.bandwidth_change((p.steps / 2) as u64, bw);
    }
    sc
}

fn arb_params() -> impl Strategy<Value = Params> {
    (
        arb_link(),
        proptest::collection::vec(arb_protocol_name(), 1..4),
        proptest::collection::vec(0.0f64..200.0, 1..4),
        proptest::collection::vec(0u64..150, 1..4),
        arb_loss(),
        any::<u64>(),
        any::<bool>(),
        (any::<bool>(), 400.0f64..3000.0).prop_map(|(on, bw)| on.then_some(bw)),
        (200usize..500),
        (0.1f64..0.9),
    )
        .prop_map(
            |(
                link,
                names,
                inits,
                starts,
                loss,
                seed,
                per_packet,
                bw_change,
                steps,
                tail_fraction,
            )| {
                Params {
                    link,
                    names,
                    inits,
                    starts,
                    loss,
                    seed,
                    per_packet,
                    bw_change,
                    steps,
                    tail_fraction,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming accumulator ≡ trace evaluation, to the exact f64 bits,
    /// for every axiom and every sender, on arbitrary scenarios.
    #[test]
    fn streaming_equals_trace_bitwise(p in arb_params()) {
        let opts = StreamOptions {
            tail_fraction: p.tail_fraction,
            ..StreamOptions::default()
        };
        let trace = build(&p).try_run().unwrap();
        let acc = try_run_scenario_streaming(build(&p), &opts).unwrap();
        let tail = trace.tail_start(opts.tail_fraction);
        let n = trace.senders.len();

        // Link-level axioms.
        prop_assert_eq!(
            acc.measured_efficiency().to_bits(),
            efficiency::measured_efficiency(&trace, tail).to_bits()
        );
        prop_assert_eq!(
            acc.mean_utilization().to_bits(),
            efficiency::mean_utilization(&trace, tail).to_bits()
        );
        prop_assert_eq!(
            acc.measured_loss_bound().to_bits(),
            loss_avoidance::measured_loss_bound(&trace, tail).to_bits()
        );
        prop_assert_eq!(
            acc.mean_loss().to_bits(),
            loss_avoidance::mean_loss(&trace, tail).to_bits()
        );
        prop_assert_eq!(acc.is_zero_loss(), loss_avoidance::is_zero_loss(&trace, tail));
        prop_assert_eq!(
            acc.measured_latency_inflation().to_bits(),
            latency::measured_latency_inflation(&trace, tail).to_bits()
        );
        prop_assert_eq!(
            acc.measured_fairness().to_bits(),
            fairness::measured_fairness(&trace, tail).to_bits()
        );
        prop_assert_eq!(
            acc.jain_index().to_bits(),
            fairness::jain_index(&trace, tail).to_bits()
        );
        prop_assert_eq!(
            acc.measured_convergence().to_bits(),
            convergence::measured_convergence(&trace, tail).to_bits()
        );

        // Friendliness over every proper prefix split {0..k} vs {k..n}.
        for k in 1..n {
            let p_set: Vec<usize> = (0..k).collect();
            let q_set: Vec<usize> = (k..n).collect();
            prop_assert_eq!(
                acc.measured_friendliness(&p_set, &q_set).to_bits(),
                friendliness::measured_friendliness(&trace, &p_set, &q_set, tail).to_bits()
            );
        }

        // Per-sender axioms and tail summaries.
        for (i, s) in trace.senders.iter().enumerate() {
            prop_assert_eq!(
                acc.measured_fast_utilization(i).map(f64::to_bits),
                fast_utilization::measured_fast_utilization(
                    s,
                    trace.sender_rtt(i),
                    tail,
                    opts.min_horizon
                )
                .map(f64::to_bits)
            );
            prop_assert_eq!(
                acc.window_escapes(i, 0.2),
                robustness::window_escapes(s, opts.escape_beta, 0.2)
            );
            prop_assert_eq!(
                acc.window_diverging(i, 1e-9),
                robustness::window_diverging(s, 1e-9)
            );
            prop_assert_eq!(
                acc.last_window(i).to_bits(),
                s.window.last().copied().unwrap_or(0.0).to_bits()
            );
            prop_assert_eq!(
                acc.tail_mean_window(i).to_bits(),
                s.mean_window_from(tail).to_bits()
            );
            prop_assert_eq!(
                acc.tail_mean_goodput(i).to_bits(),
                s.mean_goodput_from(tail).to_bits()
            );
        }
    }
}
