//! Property tests for the fluid engine: the dynamics of Section 2 hold for
//! arbitrary protocol mixes, links, initial configurations and loss seeds.

use axcc_core::protocol::MAX_WINDOW;
use axcc_core::LinkParams;
use axcc_fluidsim::{LossModel, Scenario, SenderConfig};
use axcc_protocols::registry::resolve;
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = LinkParams> {
    (200.0f64..20_000.0, 0.005f64..0.2, 0.0f64..500.0)
        .prop_map(|(b, th, tau)| LinkParams::new(b, th, tau))
}

fn arb_protocol_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("reno"),
        Just("cubic"),
        Just("scalable"),
        Just("scalable-aimd"),
        Just("robust-aimd"),
        Just("pcc"),
        Just("vegas"),
        Just("bin(1,0.5,1,0)"),
        Just("bin(1,0.5,0.5,0.5)"),
        Just("aimd(2,0.7)"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The recorded trace always satisfies equation (1) and the loss
    /// equation exactly, column by column, for heterogeneous mixes.
    #[test]
    fn dynamics_follow_the_model_equations(
        link in arb_link(),
        names in proptest::collection::vec(arb_protocol_name(), 1..5),
        inits in proptest::collection::vec(0.0f64..400.0, 1..5),
        seed in any::<u64>(),
        loss in 0.0f64..0.2,
    ) {
        let mut sc = Scenario::new(link)
            .steps(200)
            .wire_loss(LossModel::Bernoulli { rate: loss })
            .seed(seed);
        let n = names.len().min(inits.len());
        for i in 0..n {
            sc = sc.sender(
                SenderConfig::new(resolve(names[i]).unwrap()).initial_window(inits[i]),
            );
        }
        let trace = sc.run();
        prop_assert_eq!(trace.validate(MAX_WINDOW), Ok(()));
        for t in 0..trace.len() {
            let x = trace.total_window[t];
            prop_assert!((trace.rtt[t] - link.rtt(x)).abs() < 1e-12);
            prop_assert!((trace.loss[t] - link.loss_rate(x)).abs() < 1e-12);
            // Per-sender loss is at least the congestion loss (wire loss
            // only composes upward) and below 1.
            for s in &trace.senders {
                if s.window[t] > 0.0 {
                    prop_assert!(s.loss[t] >= trace.loss[t] - 1e-12);
                    prop_assert!(s.loss[t] < 1.0);
                }
            }
        }
    }

    /// Without wire loss the engine is a pure function of the scenario —
    /// seeds are irrelevant; with wire loss, it is a pure function of
    /// (scenario, seed).
    #[test]
    fn purity(
        link in arb_link(),
        name in arb_protocol_name(),
        init in 0.0f64..300.0,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let run = |seed: u64, loss: Option<f64>| {
            let mut sc = Scenario::new(link)
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(init))
                .steps(150)
                .seed(seed);
            if let Some(r) = loss {
                sc = sc.wire_loss(LossModel::Bernoulli { rate: r });
            }
            sc.run()
        };
        // Same dynamics regardless of seed when there is no randomness
        // (the trace's recorded `seed` metadata naturally differs).
        let a = run(s1, None);
        let b = run(s2, None);
        prop_assert_eq!(&a.senders, &b.senders);
        prop_assert_eq!(&a.total_window, &b.total_window);
        prop_assert_eq!(&a.rtt, &b.rtt);
        prop_assert_eq!(&a.loss, &b.loss);
        prop_assert_eq!(run(s1, Some(0.05)), run(s1, Some(0.05)));
    }

    /// Sender order doesn't privilege anyone: permuting two identical
    /// senders yields mirrored traces (symmetry of synchronized feedback).
    #[test]
    fn homogeneous_senders_are_symmetric(
        link in arb_link(),
        name in arb_protocol_name(),
        w1 in 0.0f64..300.0,
        w2 in 0.0f64..300.0,
    ) {
        let run = |a: f64, b: f64| {
            Scenario::new(link)
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(a))
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(b))
                .steps(150)
                .run()
        };
        let fwd = run(w1, w2);
        let rev = run(w2, w1);
        prop_assert_eq!(&fwd.senders[0].window, &rev.senders[1].window);
        prop_assert_eq!(&fwd.senders[1].window, &rev.senders[0].window);
        prop_assert_eq!(&fwd.total_window, &rev.total_window);
    }

    /// The Constant loss model delivers exactly its rate to every active
    /// sender at every step (composed with congestion loss).
    #[test]
    fn constant_wire_loss_is_exact(
        link in arb_link(),
        rate in 0.001f64..0.3,
        init in 1.0f64..50.0,
    ) {
        let trace = Scenario::new(link)
            .sender(SenderConfig::new(resolve("robust-aimd").unwrap()).initial_window(init))
            .wire_loss(LossModel::Constant { rate })
            .steps(100)
            .run();
        for t in 0..trace.len() {
            let cong = trace.loss[t];
            let expect = 1.0 - (1.0 - cong) * (1.0 - rate);
            prop_assert!((trace.senders[0].loss[t] - expect).abs() < 1e-12);
        }
    }

    /// Churned runs are a pure function of (scenario, plan): for any plan
    /// parameters the expanded arrival pattern — and hence the full trace —
    /// is bit-identical across repeated runs, and the plan seed alone
    /// selects a reproducible arrival schedule.
    #[test]
    fn churned_runs_are_deterministic_per_plan_seed(
        link in arb_link(),
        name in arb_protocol_name(),
        rate in 0.001f64..0.05,
        lifetime in 20.0f64..400.0,
        plan_seed in any::<u64>(),
        cap in 1usize..8,
    ) {
        let run = || {
            let plan = axcc_fluidsim::ChurnPlan::poisson(rate, lifetime)
                .seed(plan_seed)
                .max_concurrent(cap);
            Scenario::new(link)
                .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(2.0))
                .steps(400)
                .churn(&plan, resolve(name).unwrap().as_ref())
                .unwrap()
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.senders, &b.senders);
        prop_assert_eq!(&a.total_window, &b.total_window);
        prop_assert_eq!(&a.loss, &b.loss);
        prop_assert_eq!(a.validate(MAX_WINDOW), Ok(()));
    }

    /// Max-window clamping binds for every protocol.
    #[test]
    fn max_window_binds(
        name in arb_protocol_name(),
        cap in 5.0f64..50.0,
    ) {
        let link = LinkParams::new(10_000.0, 0.05, 1000.0); // roomy: protocols climb
        let trace = Scenario::new(link)
            .sender(SenderConfig::new(resolve(name).unwrap()).initial_window(1.0))
            .max_window(cap)
            .steps(300)
            .run();
        for &w in &trace.senders[0].window {
            prop_assert!(w <= cap + 1e-12);
        }
    }
}
