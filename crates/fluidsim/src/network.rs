//! Multi-link (network-wide) fluid dynamics — the §6 extension
//! *"generalizing our model to capture network-wide protocol interaction"*.
//!
//! The single-bottleneck model of Section 2 generalizes naturally: a
//! **topology** is a set of links, and each flow follows a **path** (a
//! subset of links). Per global step:
//!
//! * each link `l` carries the total window `X_l = Σ_{f ∋ l} x_f` of the
//!   flows crossing it, and contributes droptail loss `L_l(X_l)` and
//!   queueing delay by its own equation-(1);
//! * a flow's RTT is the sum over its path of per-link propagation and
//!   queueing delays; its loss rate composes independently across links:
//!   `L_f = 1 − Π_{l ∈ path(f)} (1 − L_l)`.
//!
//! Feedback stays synchronized (one global step), which is the direct
//! generalization of the paper's model and keeps the dynamics
//! deterministic. The classic testbed for this model is the **parking
//! lot**: `k` links in a row, one long flow crossing all of them and one
//! short flow per link; proportionally-fair or AIMD dynamics give the
//! long flow less than the short flows — reproduced in this module's
//! tests and the `parking_lot` example.

use axcc_core::protocol::{clamp_window, MAX_WINDOW};
use axcc_core::{LinkParams, Observation, Protocol, SenderTrace};

pub use axcc_topo::Topology;

/// One flow: a protocol, a path (link indices), an initial window, and an
/// activity window (start/stop steps, for churned populations).
pub struct FlowConfig {
    protocol: Box<dyn Protocol>,
    path: Vec<usize>,
    initial_window: f64,
    start_step: u64,
    stop_step: Option<u64>,
}

impl FlowConfig {
    /// A flow running `protocol` over `path` (indices into the topology's
    /// link list), starting from a 1-MSS window at step 0 and never
    /// departing.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn new(protocol: Box<dyn Protocol>, path: Vec<usize>) -> Self {
        assert!(!path.is_empty(), "flow path cannot be empty");
        FlowConfig {
            protocol,
            path,
            initial_window: 1.0,
            start_step: 0,
            stop_step: None,
        }
    }

    /// Set the initial window (MSS).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn initial_window(mut self, w: f64) -> Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "initial window must be finite and >= 0"
        );
        self.initial_window = w;
        self
    }

    /// Delay the flow's entry until the given step.
    pub fn start_at(mut self, step: u64) -> Self {
        self.start_step = step;
        self
    }

    /// Remove the flow at the given step: active for steps in
    /// `[start, stop)`, zero window afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the stop step does not exceed the start step.
    pub fn stop_at(mut self, step: u64) -> Self {
        assert!(step > self.start_step, "stop step must follow the start");
        self.stop_step = Some(step);
        self
    }

    fn active_at(&self, t: u64) -> bool {
        t >= self.start_step && self.stop_step.is_none_or(|s| t < s)
    }
}

/// A network scenario.
pub struct NetScenario {
    topology: Topology,
    flows: Vec<FlowConfig>,
    steps: usize,
    max_window: f64,
}

impl NetScenario {
    /// A scenario on `topology` with no flows yet and 1000 steps.
    pub fn new(topology: Topology) -> Self {
        NetScenario {
            topology,
            flows: Vec::new(),
            steps: 1000,
            max_window: MAX_WINDOW,
        }
    }

    /// Add a flow.
    ///
    /// # Panics
    ///
    /// Panics if the flow's path references a link outside the topology.
    pub fn flow(mut self, cfg: FlowConfig) -> Self {
        for &l in &cfg.path {
            assert!(
                l < self.topology.num_links(),
                "path references link {l}, topology has {}",
                self.topology.num_links()
            );
        }
        self.flows.push(cfg);
        self
    }

    /// Set the number of steps.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn steps(mut self, steps: usize) -> Self {
        assert!(steps > 0, "scenario must run at least one step");
        self.steps = steps;
        self
    }

    /// Add a churned flow population on `path`: expand `plan` over this
    /// scenario's current step count (set [`steps`](NetScenario::steps)
    /// *first*) and add one flow per activity interval, each a clone of
    /// `prototype` entering with a 1-MSS window at its arrival step and
    /// departing at its stop step.
    pub fn churn(
        mut self,
        plan: &axcc_topo::ChurnPlan,
        prototype: &dyn Protocol,
        path: Vec<usize>,
    ) -> Result<Self, axcc_core::ScenarioError> {
        self.topology.validate_path(&path)?;
        for iv in plan.try_expand(self.steps as u64)? {
            self.flows.push(
                FlowConfig::new(prototype.clone_box(), path.clone())
                    .start_at(iv.start)
                    .stop_at(iv.stop),
            );
        }
        Ok(self)
    }

    /// Run the scenario.
    ///
    /// # Panics
    ///
    /// Panics with no flows.
    pub fn run(self) -> NetTrace {
        run_network(self)
    }
}

/// The trace of a network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTrace {
    /// Per-flow traces (window/loss/RTT/goodput per step), flow order.
    pub flows: Vec<SenderTrace>,
    /// Per-flow paths, for interpreting the traces.
    pub paths: Vec<Vec<usize>>,
    /// Per-link total window `X_l^(t)`: `link_load[l][t]`.
    pub link_load: Vec<Vec<f64>>,
    /// Per-link loss rate: `link_loss[l][t]`.
    pub link_loss: Vec<Vec<f64>>,
    /// The topology the run executed on.
    pub topology_links: Vec<LinkParams>,
}

impl NetTrace {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.flows.first().map_or(0, |f| f.len())
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the tail start (`fraction` of the run treated as
    /// transient).
    pub fn tail_start(&self, fraction: f64) -> usize {
        (self.len() as f64 * fraction.clamp(0.0, 1.0)).floor() as usize
    }

    /// A flow's mean goodput over the tail.
    pub fn flow_goodput(&self, flow: usize, tail_start: usize) -> f64 {
        self.flows[flow].mean_goodput_from(tail_start)
    }

    /// Flow `f`'s per-step RTT column. Network flows always record their
    /// own column (paths differ, so RTTs are genuinely per-flow); empty
    /// only for a zero-step run.
    pub fn flow_rtt(&self, f: usize) -> &[f64] {
        self.flows[f].rtt.as_deref().unwrap_or(&[])
    }

    /// A link's mean utilization (`X_l / C_l`) over the tail.
    pub fn link_utilization(&self, l: usize, tail_start: usize) -> f64 {
        let c = self.topology_links[l].capacity();
        let tail = &self.link_load[l][tail_start.min(self.len())..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / (tail.len() as f64 * c)
    }
}

fn run_network(scenario: NetScenario) -> NetTrace {
    let NetScenario {
        topology,
        mut flows,
        steps,
        max_window,
    } = scenario;
    assert!(
        !flows.is_empty(),
        "network scenario needs at least one flow"
    );

    let nf = flows.len();
    let nl = topology.num_links();
    let mut windows: Vec<f64> = vec![0.0; nf];
    let mut min_rtts = vec![f64::INFINITY; nf];

    // Per-flow base propagation RTT: constant across the run, so the sum
    // over the path is hoisted out of the step loop (same left-to-right
    // addition order as the in-loop sum it replaces — bit-identical).
    let base_rtts: Vec<f64> = flows
        .iter()
        .map(|f| f.path.iter().map(|&l| topology.link(l).min_rtt()).sum())
        .collect();

    // Every trace column is prefilled to its final length and written by
    // index: idle flows' exact zeros are already in place, and the step
    // loop below never allocates (the `step-loop-alloc` tidy rule keeps
    // it that way).
    let mut traces: Vec<SenderTrace> = flows
        .iter()
        .map(|f| {
            let mut tr =
                SenderTrace::with_capacity(f.protocol.name(), f.protocol.loss_based(), steps);
            tr.window.resize(steps, 0.0);
            tr.loss.resize(steps, 0.0);
            tr.goodput.resize(steps, 0.0);
            // Paths differ, so flows genuinely see different RTTs: each
            // flow carries its own column instead of the shared-column
            // dedup the single-link engine uses.
            tr.own_rtt_mut().resize(steps, 0.0);
            tr
        })
        .collect();
    let mut link_load = vec![vec![0.0; steps]; nl];
    let mut link_loss = vec![vec![0.0; steps]; nl];
    let mut loads = vec![0.0; nl];
    let mut losses = vec![0.0; nl];
    let mut qdelays = vec![0.0; nl];

    for t in 0..steps as u64 {
        let k = t as usize;

        // Admissions and departures: a flow's window appears at its start
        // step and vanishes at its stop step (idle flows hold exactly 0.0
        // and contribute nothing to any link's load).
        for (f, cfg) in flows.iter().enumerate() {
            if t == cfg.start_step {
                windows[f] = clamp_window(cfg.initial_window, max_window);
            }
            if cfg.stop_step == Some(t) {
                windows[f] = 0.0;
            }
        }

        // Per-link aggregates.
        loads.fill(0.0);
        for (f, cfg) in flows.iter().enumerate() {
            for &l in &cfg.path {
                loads[l] += windows[f];
            }
        }
        for l in 0..nl {
            let link = topology.link(l);
            losses[l] = link.loss_rate(loads[l]);
            // Queueing component of equation (1): RTT − 2Θ, capped by
            // the timeout branch as on the single link.
            qdelays[l] = link.rtt(loads[l]) - link.min_rtt();
            link_load[l][k] = loads[l];
            link_loss[l][k] = losses[l];
        }

        // Per-flow observation and update.
        for (f, cfg) in flows.iter_mut().enumerate() {
            let rtt: f64 = base_rtts[f] + cfg.path.iter().map(|&l| qdelays[l]).sum::<f64>();
            traces[f].own_rtt_mut()[k] = rtt;

            // Idle flows (not yet arrived, or departed) keep the
            // prefilled exact zeros — the path RTT is still recorded so
            // the column stays rectangular and meaningful — and skip the
            // protocol update, matching the single-link engine's churn
            // semantics.
            if !cfg.active_at(t) {
                continue;
            }

            let loss = 1.0 - cfg.path.iter().map(|&l| 1.0 - losses[l]).product::<f64>();
            min_rtts[f] = min_rtts[f].min(rtt);

            let w = windows[f];
            traces[f].window[k] = w;
            traces[f].loss[k] = loss;
            traces[f].goodput[k] = w * (1.0 - loss) / rtt;

            let obs = Observation {
                tick: t,
                window: w,
                loss_rate: loss,
                rtt,
                min_rtt: min_rtts[f],
            };
            windows[f] = clamp_window(cfg.protocol.next_window(&obs), max_window);
        }
    }

    NetTrace {
        flows: traces,
        paths: flows.iter().map(|f| f.path.clone()).collect(),
        link_load,
        link_loss,
        topology_links: topology.links().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_protocols::{Aimd, Vegas};

    /// C = 100 MSS per hop.
    fn hop() -> LinkParams {
        LinkParams::new(1000.0, 0.05, 20.0)
    }

    /// The classic parking lot: long flow over links {0,1}, one short
    /// flow on each link.
    fn parking_lot_2() -> NetTrace {
        NetScenario::new(Topology::parking_lot(2, hop()))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1]))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0]))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![1]))
            .steps(4000)
            .run()
    }

    #[test]
    fn single_link_reduces_to_the_paper_model() {
        // One link, one flow: the network engine must reproduce the
        // single-bottleneck sawtooth.
        let net = NetScenario::new(Topology::new(vec![hop()]))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0]).initial_window(1.0))
            .steps(1000)
            .run();
        let single = crate::Scenario::new(hop())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(1000)
            .run();
        assert_eq!(net.flows[0].window, single.senders[0].window);
        assert_eq!(net.flows[0].loss, single.senders[0].loss);
    }

    #[test]
    fn parking_lot_penalizes_the_long_flow() {
        let net = parking_lot_2();
        let tail = net.tail_start(0.5);
        let long = net.flow_goodput(0, tail);
        let short0 = net.flow_goodput(1, tail);
        let short1 = net.flow_goodput(2, tail);
        // The long flow crosses two bottlenecks (double loss exposure,
        // double RTT): it gets clearly less than either short flow.
        assert!(long < 0.7 * short0, "long {long} vs short {short0}");
        assert!(long < 0.7 * short1, "long {long} vs short {short1}");
        // But it is not starved (AIMD's additive probe keeps it alive).
        assert!(long > 0.05 * short0, "long {long} vs short {short0}");
    }

    #[test]
    fn parking_lot_links_stay_utilized() {
        let net = parking_lot_2();
        let tail = net.tail_start(0.5);
        for l in 0..2 {
            let u = net.link_utilization(l, tail);
            assert!(u > 0.8, "link {l} utilization {u}");
        }
    }

    #[test]
    fn rtt_unfairness_between_path_lengths() {
        // Two AIMD flows into link 1; one also crosses link 0 (longer
        // base RTT, same single shared bottleneck since link 0 is
        // otherwise empty). Classic RTT unfairness: same per-step additive
        // increase in our step-synchronized model means the *loss* and
        // *latency* exposure differ, not the increase rate — the long
        // path still ends up with at most the short flow's share.
        let net = NetScenario::new(Topology::parking_lot(2, hop()))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1]))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![1]))
            .steps(4000)
            .run();
        let tail = net.tail_start(0.5);
        let long = net.flow_goodput(0, tail);
        let short = net.flow_goodput(1, tail);
        assert!(long <= short * 1.05, "long {long} vs short {short}");
    }

    #[test]
    fn flow_loss_composes_across_links() {
        let net = parking_lot_2();
        // At every step the long flow's loss must equal the composition
        // of its links' losses.
        for t in 0..net.len() {
            let expect = 1.0 - (1.0 - net.link_loss[0][t]) * (1.0 - net.link_loss[1][t]);
            assert!((net.flows[0].loss[t] - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn base_rtt_sums_over_path() {
        let net = parking_lot_2();
        // Min RTT of the long flow is 2×(2Θ) = 0.2 s; short flows 0.1 s.
        let long_min = net
            .flow_rtt(0)
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let short_min = net
            .flow_rtt(1)
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!((long_min - 0.2).abs() < 1e-9, "{long_min}");
        assert!((short_min - 0.1).abs() < 1e-9, "{short_min}");
    }

    #[test]
    fn vegas_in_a_network_keeps_queues_short() {
        let net = NetScenario::new(Topology::parking_lot(2, hop()))
            .flow(FlowConfig::new(Box::new(Vegas::classic()), vec![0, 1]))
            .flow(FlowConfig::new(Box::new(Vegas::classic()), vec![0]))
            .flow(FlowConfig::new(Box::new(Vegas::classic()), vec![1]))
            .steps(3000)
            .run();
        let tail = net.tail_start(0.5);
        // No loss anywhere in the tail…
        for l in 0..2 {
            assert!(net.link_loss[l][tail..].iter().all(|&x| x == 0.0));
        }
        // …and both links near (not over) capacity.
        for l in 0..2 {
            let u = net.link_utilization(l, tail);
            assert!(u > 0.85 && u < 1.1, "link {l} utilization {u}");
        }
    }

    #[test]
    fn churned_flows_are_idle_outside_their_intervals() {
        let plan = axcc_topo::ChurnPlan::poisson(0.01, 150.0).seed(4);
        let ivs = plan.expand(2000);
        assert!(!ivs.is_empty(), "plan expands to at least one arrival");
        let net = NetScenario::new(Topology::parking_lot(2, hop()))
            .steps(2000)
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1]))
            .churn(&plan, &Aimd::reno(), vec![0, 1])
            .unwrap()
            .run();
        assert_eq!(net.flows.len(), 1 + ivs.len());
        for (k, iv) in ivs.iter().enumerate() {
            let f = 1 + k;
            for t in 0..2000 {
                let w = net.flows[f].window[t];
                if (t as u64) < iv.start || (t as u64) >= iv.stop {
                    assert_eq!(w, 0.0, "flow {f} idle at step {t}");
                    assert_eq!(net.flows[f].goodput[t], 0.0, "flow {f} step {t}");
                } else if t as u64 == iv.start {
                    // Admitted with a 1-MSS window at its arrival step.
                    assert_eq!(w, 1.0, "flow {f} arrival step {t}");
                }
            }
        }
    }

    #[test]
    fn churned_network_runs_are_deterministic() {
        let build = || {
            let plan = axcc_topo::ChurnPlan::poisson(0.008, 200.0).seed(11);
            NetScenario::new(Topology::parking_lot(3, hop()))
                .steps(1500)
                .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1, 2]))
                .churn(&plan, &Aimd::reno(), vec![1])
                .unwrap()
                .run()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
    }

    #[test]
    fn link_load_counts_only_active_flows() {
        // One permanent flow plus one that departs midway: after the
        // departure the link load must equal the survivor's window alone.
        let net = NetScenario::new(Topology::new(vec![hop()]))
            .steps(1000)
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0]))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0]).stop_at(500))
            .run();
        for t in 500..1000 {
            assert_eq!(
                net.link_load[0][t].to_bits(),
                net.flows[0].window[t].to_bits(),
                "step {t}"
            );
        }
        // Before the departure both contribute.
        assert!(net.link_load[0][300] > net.flows[0].window[300]);
    }

    #[test]
    #[should_panic(expected = "references link")]
    fn out_of_range_path_rejected() {
        NetScenario::new(Topology::new(vec![hop()]))
            .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![1]));
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_scenario_rejected() {
        NetScenario::new(Topology::new(vec![hop()])).run();
    }

    /// The pre-hoisting network engine, kept verbatim as the equivalence
    /// reference for the allocation-free rewrite of [`run_network`].
    fn run_network_reference(scenario: NetScenario) -> NetTrace {
        let NetScenario {
            topology,
            mut flows,
            steps,
            max_window,
        } = scenario;
        assert!(
            !flows.is_empty(),
            "network scenario needs at least one flow"
        );

        let nf = flows.len();
        let nl = topology.num_links();
        let mut windows: Vec<f64> = vec![0.0; nf];
        let mut min_rtts = vec![f64::INFINITY; nf];

        let mut traces: Vec<SenderTrace> = flows
            .iter()
            .map(|f| SenderTrace::with_capacity(f.protocol.name(), f.protocol.loss_based(), steps))
            .collect();
        let mut link_load = vec![Vec::with_capacity(steps); nl];
        let mut link_loss = vec![Vec::with_capacity(steps); nl];

        for t in 0..steps as u64 {
            for (f, cfg) in flows.iter().enumerate() {
                if t == cfg.start_step {
                    windows[f] = clamp_window(cfg.initial_window, max_window);
                }
                if cfg.stop_step == Some(t) {
                    windows[f] = 0.0;
                }
            }

            let mut loads = vec![0.0; nl];
            for (f, cfg) in flows.iter().enumerate() {
                for &l in &cfg.path {
                    loads[l] += windows[f];
                }
            }
            let losses: Vec<f64> = (0..nl)
                .map(|l| topology.link(l).loss_rate(loads[l]))
                .collect();
            let qdelays: Vec<f64> = (0..nl)
                .map(|l| {
                    let link = topology.link(l);
                    link.rtt(loads[l]) - link.min_rtt()
                })
                .collect();
            for l in 0..nl {
                link_load[l].push(loads[l]);
                link_loss[l].push(losses[l]);
            }

            for (f, cfg) in flows.iter_mut().enumerate() {
                let base_rtt: f64 = cfg.path.iter().map(|&l| topology.link(l).min_rtt()).sum();
                let rtt: f64 = base_rtt + cfg.path.iter().map(|&l| qdelays[l]).sum::<f64>();

                if !cfg.active_at(t) {
                    traces[f].window.push(0.0);
                    traces[f].loss.push(0.0);
                    traces[f].own_rtt_mut().push(rtt);
                    traces[f].goodput.push(0.0);
                    continue;
                }

                let loss = 1.0 - cfg.path.iter().map(|&l| 1.0 - losses[l]).product::<f64>();
                min_rtts[f] = min_rtts[f].min(rtt);

                let w = windows[f];
                traces[f].window.push(w);
                traces[f].loss.push(loss);
                traces[f].own_rtt_mut().push(rtt);
                traces[f].goodput.push(w * (1.0 - loss) / rtt);

                let obs = Observation {
                    tick: t,
                    window: w,
                    loss_rate: loss,
                    rtt,
                    min_rtt: min_rtts[f],
                };
                windows[f] = clamp_window(cfg.protocol.next_window(&obs), max_window);
            }
        }

        NetTrace {
            flows: traces,
            paths: flows.iter().map(|f| f.path.clone()).collect(),
            link_load,
            link_loss,
            topology_links: topology.links().to_vec(),
        }
    }

    /// `FlowConfig` is deliberately not `Clone` (it owns a protocol box),
    /// so equivalence checks build the scenario twice from a closure.
    fn assert_network_engines_match(build: impl Fn() -> NetScenario) {
        let hoisted = run_network(build());
        let reference = run_network_reference(build());
        assert_eq!(
            hoisted, reference,
            "hoisted network engine diverged from the push-based reference"
        );
    }

    #[test]
    fn hoisted_engine_matches_reference_on_the_parking_lot() {
        assert_network_engines_match(|| {
            NetScenario::new(Topology::parking_lot(2, hop()))
                .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1]))
                .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0]))
                .flow(FlowConfig::new(Box::new(Vegas::classic()), vec![1]))
                .steps(2000)
        });
    }

    #[test]
    fn hoisted_engine_matches_reference_under_churn() {
        assert_network_engines_match(|| {
            let plan = axcc_topo::ChurnPlan::poisson(0.01, 150.0).seed(4);
            NetScenario::new(Topology::parking_lot(3, hop()))
                .steps(1500)
                .flow(FlowConfig::new(Box::new(Aimd::reno()), vec![0, 1, 2]))
                .flow(
                    FlowConfig::new(Box::new(Aimd::reno()), vec![1])
                        .start_at(200)
                        .stop_at(900),
                )
                .churn(&plan, &Aimd::reno(), vec![0, 1])
                .unwrap()
        });
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The allocation-free network engine is bit-identical to the
            /// push-based reference across random parking lots: hop
            /// counts, protocols, flow populations, activity windows.
            #[test]
            fn hoisted_engine_matches_reference(
                hops in 1usize..4,
                steps in 50usize..400,
                protos in proptest::collection::vec(0u8..2, 1..5),
                initial in 0.5f64..40.0,
                stagger in any::<bool>(),
            ) {
                let build = || {
                    let mut sc = NetScenario::new(Topology::parking_lot(hops, hop())).steps(steps);
                    // One long flow across every hop, then a short flow
                    // per remaining protocol, round-robin over links.
                    sc = sc.flow(
                        FlowConfig::new(Box::new(Aimd::reno()), (0..hops).collect())
                            .initial_window(initial),
                    );
                    for (k, &p) in protos.iter().enumerate() {
                        let proto: Box<dyn Protocol> = match p {
                            0 => Box::new(Aimd::reno()),
                            _ => Box::new(Vegas::classic()),
                        };
                        let mut cfg = FlowConfig::new(proto, vec![k % hops])
                            .initial_window(initial + k as f64);
                        if stagger && k % 2 == 1 {
                            cfg = cfg
                                .start_at(steps as u64 / 4)
                                .stop_at((3 * steps as u64 / 4).max(steps as u64 / 4 + 1));
                        }
                        sc = sc.flow(cfg);
                    }
                    sc
                };
                assert_network_engines_match(build);
            }
        }
    }
}
