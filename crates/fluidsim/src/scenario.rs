//! Scenario description: link, senders, run length, loss injection.

use crate::loss::LossModel;
use serde::{Deserialize, Serialize};
use axcc_core::protocol::MAX_WINDOW;
use axcc_core::{LinkParams, Protocol, RunTrace};

/// One sender in a scenario: a protocol, an initial window, and a start
/// step (for late-joiner dynamics).
pub struct SenderConfig {
    pub(crate) protocol: Box<dyn Protocol>,
    pub(crate) initial_window: f64,
    pub(crate) start_tick: u64,
}

impl SenderConfig {
    /// A sender running `protocol`, starting at step 0 with a 1-MSS window.
    pub fn new(protocol: Box<dyn Protocol>) -> Self {
        SenderConfig {
            protocol,
            initial_window: 1.0,
            start_tick: 0,
        }
    }

    /// Set the initial congestion window `x_i^(0)` (MSS).
    ///
    /// # Panics
    ///
    /// Panics if negative or non-finite (the model picks initial windows in
    /// `{0, 1, …, M}`).
    pub fn initial_window(mut self, w: f64) -> Self {
        assert!(w.is_finite() && w >= 0.0, "initial window must be finite and >= 0");
        self.initial_window = w;
        self
    }

    /// Delay the sender's entry until the given step.
    pub fn start_at(mut self, tick: u64) -> Self {
        self.start_tick = tick;
        self
    }
}

/// How congestion loss is delivered to senders.
///
/// The paper's model assumes *"senders experience synchronized feedback"*:
/// every sender observes the same droptail loss rate each step. Its
/// Section 6 lists *"unsynchronized network feedback"* as a future-work
/// model extension; [`FeedbackMode::PerPacket`] provides it — each
/// sender's congestion loss is sampled per packet
/// (`Binomial(⌈x_i⌉, L)/⌈x_i⌉`), so small senders often see no loss at
/// all in a lossy step, and large senders bear proportionally more
/// back-offs. This breaks MIMD's ratio-preservation, the mechanism
/// behind its worst-case unfairness (see the crate tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedbackMode {
    /// All senders observe the exact link loss rate (the paper's model).
    Synchronized,
    /// Each sender's loss is sampled per packet from the link loss rate
    /// (seeded; deterministic per scenario seed).
    PerPacket,
}

/// A complete simulation scenario. Build with the fluent methods, then
/// [`run`](Scenario::run).
pub struct Scenario {
    pub(crate) link: LinkParams,
    pub(crate) senders: Vec<SenderConfig>,
    pub(crate) steps: usize,
    pub(crate) max_window: f64,
    pub(crate) loss_model: LossModel,
    pub(crate) seed: u64,
    /// Scheduled bandwidth changes `(step, new bandwidth in MSS/s)`,
    /// applied at the *start* of the given step. Kept sorted by step.
    pub(crate) bandwidth_changes: Vec<(u64, f64)>,
    pub(crate) feedback: FeedbackMode,
}

impl Scenario {
    /// A scenario on the given link with no senders yet, 1000 steps, no
    /// wire loss, seed 0, and the model's default `M`.
    pub fn new(link: LinkParams) -> Self {
        Scenario {
            link,
            senders: Vec::new(),
            steps: 1000,
            max_window: MAX_WINDOW,
            loss_model: LossModel::None,
            seed: 0,
            bandwidth_changes: Vec::new(),
            feedback: FeedbackMode::Synchronized,
        }
    }

    /// Add a sender.
    pub fn sender(mut self, cfg: SenderConfig) -> Self {
        self.senders.push(cfg);
        self
    }

    /// Add `n` identical senders cloned from a prototype, all with the
    /// given initial window (the "all senders employ P" quantifier of
    /// Metrics I–V).
    pub fn homogeneous(mut self, prototype: &dyn Protocol, n: usize, initial_window: f64) -> Self {
        for _ in 0..n {
            self.senders.push(
                SenderConfig::new(prototype.clone_box()).initial_window(initial_window),
            );
        }
        self
    }

    /// Set the number of time steps to simulate.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn steps(mut self, steps: usize) -> Self {
        assert!(steps > 0, "scenario must run at least one step");
        self.steps = steps;
        self
    }

    /// Cap windows at `m` instead of the default `M` (mostly for tests).
    ///
    /// # Panics
    ///
    /// Panics if non-positive.
    pub fn max_window(mut self, m: f64) -> Self {
        assert!(m > 0.0, "max window must be positive");
        self.max_window = m;
        self
    }

    /// Apply a wire-loss model (Metric VI scenarios).
    ///
    /// # Panics
    ///
    /// Panics if the model's parameters are invalid.
    pub fn wire_loss(mut self, model: LossModel) -> Self {
        model.validate().expect("invalid loss model");
        self.loss_model = model;
        self
    }

    /// Seed the wire-loss RNG (runs with the same scenario and seed are
    /// bit-for-bit identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule a bandwidth change: from step `at_step` onwards the link
    /// serves `new_bandwidth` MSS/s (propagation delay and buffer are
    /// unchanged, so the capacity `C = B·2Θ` moves with it).
    ///
    /// This extends the paper's static model towards its "more realistic
    /// network model" future-work direction, and powers the
    /// *responsiveness* extension metric
    /// ([`axcc_core::axioms`] documents the paper's original eight).
    ///
    /// # Panics
    ///
    /// Panics if `new_bandwidth ≤ 0`.
    pub fn bandwidth_change(mut self, at_step: u64, new_bandwidth: f64) -> Self {
        assert!(new_bandwidth > 0.0, "bandwidth must stay positive");
        self.bandwidth_changes.push((at_step, new_bandwidth));
        self.bandwidth_changes.sort_by_key(|&(t, _)| t);
        self
    }

    /// Select the congestion-feedback mode (default:
    /// [`FeedbackMode::Synchronized`], the paper's model).
    pub fn feedback(mut self, mode: FeedbackMode) -> Self {
        self.feedback = mode;
        self
    }

    /// Execute the scenario and return the trace.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no senders.
    pub fn run(self) -> RunTrace {
        crate::engine::run_scenario(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_protocols::Aimd;

    #[test]
    fn builder_defaults() {
        let s = Scenario::new(LinkParams::new(1000.0, 0.05, 20.0));
        assert_eq!(s.steps, 1000);
        assert_eq!(s.seed, 0);
        assert!(matches!(s.loss_model, LossModel::None));
        assert!(s.senders.is_empty());
    }

    #[test]
    fn homogeneous_clones_n_senders() {
        let reno = Aimd::reno();
        let s = Scenario::new(LinkParams::new(1000.0, 0.05, 20.0)).homogeneous(&reno, 4, 2.0);
        assert_eq!(s.senders.len(), 4);
        for cfg in &s.senders {
            assert_eq!(cfg.initial_window, 2.0);
            assert_eq!(cfg.protocol.name(), "AIMD(1,0.5)");
        }
    }

    #[test]
    fn sender_config_builders() {
        let cfg = SenderConfig::new(Box::new(Aimd::reno()))
            .initial_window(30.0)
            .start_at(100);
        assert_eq!(cfg.initial_window, 30.0);
        assert_eq!(cfg.start_tick, 100);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        Scenario::new(LinkParams::new(1000.0, 0.05, 20.0)).steps(0);
    }

    #[test]
    #[should_panic(expected = "initial window")]
    fn negative_initial_window_rejected() {
        SenderConfig::new(Box::new(Aimd::reno())).initial_window(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid loss model")]
    fn invalid_loss_model_rejected() {
        Scenario::new(LinkParams::new(1000.0, 0.05, 20.0))
            .wire_loss(LossModel::Constant { rate: 1.5 });
    }
}
