//! Scenario description: link, senders, run length, loss injection.

use crate::loss::LossModel;
use axcc_core::protocol::MAX_WINDOW;
use axcc_core::{LinkParams, Protocol, RunTrace, ScenarioError};
use serde::{Deserialize, Serialize};

/// One sender in a scenario: a protocol, an initial window, a start step
/// (for late-joiner dynamics), and an optional stop step (for departures
/// in churned populations).
pub struct SenderConfig {
    pub(crate) protocol: Box<dyn Protocol>,
    pub(crate) initial_window: f64,
    pub(crate) start_tick: u64,
    pub(crate) stop_tick: Option<u64>,
}

impl SenderConfig {
    /// A sender running `protocol`, starting at step 0 with a 1-MSS window.
    pub fn new(protocol: Box<dyn Protocol>) -> Self {
        SenderConfig {
            protocol,
            initial_window: 1.0,
            start_tick: 0,
            stop_tick: None,
        }
    }

    /// Set the initial congestion window `x_i^(0)` (MSS). Must be finite
    /// and non-negative (the model picks initial windows in `{0, 1, …, M}`);
    /// violations surface from [`Scenario::validate`].
    pub fn initial_window(mut self, w: f64) -> Self {
        self.initial_window = w;
        self
    }

    /// Delay the sender's entry until the given step.
    pub fn start_at(mut self, tick: u64) -> Self {
        self.start_tick = tick;
        self
    }

    /// Remove the sender from the link at the given step: it is active for
    /// steps in `[start, stop)` and holds a zero window afterwards. Must
    /// exceed the start step; checked by [`Scenario::validate`].
    pub fn stop_at(mut self, tick: u64) -> Self {
        self.stop_tick = Some(tick);
        self
    }
}

/// How congestion loss is delivered to senders.
///
/// The paper's model assumes *"senders experience synchronized feedback"*:
/// every sender observes the same droptail loss rate each step. Its
/// Section 6 lists *"unsynchronized network feedback"* as a future-work
/// model extension; [`FeedbackMode::PerPacket`] provides it — each
/// sender's congestion loss is sampled per packet
/// (`Binomial(⌈x_i⌉, L)/⌈x_i⌉`), so small senders often see no loss at
/// all in a lossy step, and large senders bear proportionally more
/// back-offs. This breaks MIMD's ratio-preservation, the mechanism
/// behind its worst-case unfairness (see the crate tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedbackMode {
    /// All senders observe the exact link loss rate (the paper's model).
    Synchronized,
    /// Each sender's loss is sampled per packet from the link loss rate
    /// (seeded; deterministic per scenario seed).
    PerPacket,
}

/// Floating-point contract for the engine's reductions.
///
/// [`Exact`](MathMode::Exact) (the default) pins every f64 reduction to
/// the historical scalar order — the total window is a strict
/// left-to-right `iter().sum()` and goodput is `w * (1 - l) / rtt` — so
/// runs are bit-identical to the pre-SoA engine and to the streaming
/// bit-identity contract. [`Fast`](MathMode::Fast) (the CLI's
/// `--fast-math`) licenses reassociation where the paper does not need
/// bit-identity: the total becomes a four-accumulator chunked sum and
/// goodput uses `mul_add` — same math, different rounding, vectorizable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MathMode {
    /// Strict scalar f64 ordering — bit-identical to the reference engine.
    #[default]
    Exact,
    /// Reassociated reductions (`--fast-math`): chunked sums + `mul_add`.
    Fast,
}

/// A complete simulation scenario. Build with the fluent methods, then
/// [`run`](Scenario::run) (panics on invalid configuration) or
/// [`try_run`](Scenario::try_run) (returns [`ScenarioError`]).
///
/// Setters are non-panicking: all validation is centralized in
/// [`validate`](Scenario::validate), which both run paths call first.
pub struct Scenario {
    pub(crate) link: LinkParams,
    pub(crate) senders: Vec<SenderConfig>,
    pub(crate) steps: usize,
    pub(crate) max_window: f64,
    pub(crate) loss_model: LossModel,
    pub(crate) seed: u64,
    /// Scheduled bandwidth changes `(step, new bandwidth in MSS/s)`,
    /// applied at the *start* of the given step. Kept sorted by step.
    pub(crate) bandwidth_changes: Vec<(u64, f64)>,
    pub(crate) feedback: FeedbackMode,
    pub(crate) math: MathMode,
}

impl Scenario {
    /// A scenario on the given link with no senders yet, 1000 steps, no
    /// wire loss, seed 0, and the model's default `M`.
    pub fn new(link: LinkParams) -> Self {
        Scenario {
            link,
            senders: Vec::new(),
            steps: 1000,
            max_window: MAX_WINDOW,
            loss_model: LossModel::None,
            seed: 0,
            bandwidth_changes: Vec::new(),
            feedback: FeedbackMode::Synchronized,
            math: MathMode::Exact,
        }
    }

    /// Add a sender.
    pub fn sender(mut self, cfg: SenderConfig) -> Self {
        self.senders.push(cfg);
        self
    }

    /// Add `n` identical senders cloned from a prototype, all with the
    /// given initial window (the "all senders employ P" quantifier of
    /// Metrics I–V).
    pub fn homogeneous(mut self, prototype: &dyn Protocol, n: usize, initial_window: f64) -> Self {
        for _ in 0..n {
            self.senders
                .push(SenderConfig::new(prototype.clone_box()).initial_window(initial_window));
        }
        self
    }

    /// Set the number of time steps to simulate (must be at least one;
    /// checked by [`validate`](Scenario::validate)).
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Cap windows at `m` instead of the default `M` (mostly for tests).
    /// Must be positive; checked by [`validate`](Scenario::validate).
    pub fn max_window(mut self, m: f64) -> Self {
        self.max_window = m;
        self
    }

    /// Apply a wire-loss model (Metric VI scenarios and the adverse-network
    /// gauntlet). Parameter errors surface from
    /// [`validate`](Scenario::validate).
    pub fn wire_loss(mut self, model: LossModel) -> Self {
        self.loss_model = model;
        self
    }

    /// Seed the wire-loss RNG (runs with the same scenario and seed are
    /// bit-for-bit identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule a bandwidth change: from step `at_step` onwards the link
    /// serves `new_bandwidth` MSS/s (propagation delay and buffer are
    /// unchanged, so the capacity `C = B·2Θ` moves with it). Must stay
    /// positive; checked by [`validate`](Scenario::validate).
    ///
    /// This extends the paper's static model towards its "more realistic
    /// network model" future-work direction, and powers the
    /// *responsiveness* extension metric
    /// ([`axcc_core::axioms`] documents the paper's original eight).
    pub fn bandwidth_change(mut self, at_step: u64, new_bandwidth: f64) -> Self {
        self.bandwidth_changes.push((at_step, new_bandwidth));
        self.bandwidth_changes.sort_by_key(|&(t, _)| t);
        self
    }

    /// Schedule a link outage: for steps in `[from_step, to_step)` the
    /// bandwidth collapses to a residual trickle (10⁻⁶ of nominal — the
    /// fluid model needs strictly positive bandwidth), then recovers to
    /// the nominal rate. A fault-layer convenience over
    /// [`bandwidth_change`](Scenario::bandwidth_change).
    pub fn outage(self, from_step: u64, to_step: u64) -> Self {
        let nominal = self.link.bandwidth;
        self.bandwidth_change(from_step, nominal * 1e-6)
            .bandwidth_change(to_step, nominal)
    }

    /// Select the floating-point contract (default: [`MathMode::Exact`],
    /// the bit-identity contract; [`MathMode::Fast`] is the CLI's
    /// `--fast-math`).
    pub fn math(mut self, mode: MathMode) -> Self {
        self.math = mode;
        self
    }

    /// Select the congestion-feedback mode (default:
    /// [`FeedbackMode::Synchronized`], the paper's model).
    pub fn feedback(mut self, mode: FeedbackMode) -> Self {
        self.feedback = mode;
        self
    }

    /// Add a churned flow population: expand `plan` over this scenario's
    /// current step count (set [`steps`](Scenario::steps) *first*) and add
    /// one sender per activity interval, each a clone of `prototype`
    /// entering with a 1-MSS window at its arrival step and departing at
    /// its stop step. Plan parameter errors surface immediately.
    pub fn churn(
        mut self,
        plan: &axcc_topo::ChurnPlan,
        prototype: &dyn Protocol,
    ) -> Result<Self, ScenarioError> {
        for iv in plan.try_expand(self.steps as u64)? {
            self.senders.push(
                SenderConfig::new(prototype.clone_box())
                    .initial_window(1.0)
                    .start_at(iv.start)
                    .stop_at(iv.stop),
            );
        }
        Ok(self)
    }

    /// Check the full configuration. Both [`run`](Scenario::run) and
    /// [`try_run`](Scenario::try_run) call this before simulating; it is
    /// public so schedulers can validate scenarios they did not build.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.senders.is_empty() {
            return Err(ScenarioError::NoSenders);
        }
        if self.steps == 0 {
            return Err(ScenarioError::InvalidParameter {
                field: "steps",
                value: 0.0,
                constraint: "at least one step",
            });
        }
        if !(self.max_window.is_finite() && self.max_window > 0.0) {
            return Err(ScenarioError::InvalidParameter {
                field: "max_window",
                value: self.max_window,
                constraint: "positive and finite",
            });
        }
        self.loss_model
            .validate()
            .map_err(ScenarioError::InvalidLossModel)?;
        for (i, cfg) in self.senders.iter().enumerate() {
            if !(cfg.initial_window.is_finite() && cfg.initial_window >= 0.0) {
                return Err(ScenarioError::InvalidSender {
                    index: i,
                    field: "initial_window",
                    value: cfg.initial_window,
                    constraint: "finite and >= 0",
                });
            }
            if let Some(stop) = cfg.stop_tick {
                if stop <= cfg.start_tick {
                    return Err(ScenarioError::InvalidSender {
                        index: i,
                        field: "stop_tick",
                        value: stop as f64,
                        constraint: "after the sender's start step",
                    });
                }
            }
        }
        for &(_, bw) in &self.bandwidth_changes {
            if !(bw > 0.0 && bw.is_finite()) {
                return Err(ScenarioError::InvalidParameter {
                    field: "bandwidth_change",
                    value: bw,
                    constraint: "positive and finite (bandwidth must stay positive)",
                });
            }
        }
        Ok(())
    }

    /// Execute the scenario and return the trace, or a typed error for an
    /// invalid configuration or a numerically divergent run.
    pub fn try_run(self) -> Result<RunTrace, ScenarioError> {
        crate::engine::try_run_scenario(self)
    }

    /// Execute the scenario and return the trace.
    ///
    /// # Panics
    ///
    /// Panics (with the [`ScenarioError`] message) on an invalid
    /// configuration — e.g. no senders, zero steps, an out-of-range loss
    /// model — or if the simulation diverges numerically. Use
    /// [`try_run`](Scenario::try_run) to handle these as values.
    pub fn run(self) -> RunTrace {
        // tidy-allow: panic-freedom — documented panicking façade over try_run; fallible callers use the try_ path
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcc_protocols::Aimd;

    fn link() -> LinkParams {
        LinkParams::new(1000.0, 0.05, 20.0)
    }

    #[test]
    fn builder_defaults() {
        let s = Scenario::new(link());
        assert_eq!(s.steps, 1000);
        assert_eq!(s.seed, 0);
        assert!(matches!(s.loss_model, LossModel::None));
        assert!(s.senders.is_empty());
    }

    #[test]
    fn homogeneous_clones_n_senders() {
        let reno = Aimd::reno();
        let s = Scenario::new(link()).homogeneous(&reno, 4, 2.0);
        assert_eq!(s.senders.len(), 4);
        for cfg in &s.senders {
            assert_eq!(cfg.initial_window, 2.0);
            assert_eq!(cfg.protocol.name(), "AIMD(1,0.5)");
        }
    }

    #[test]
    fn sender_config_builders() {
        let cfg = SenderConfig::new(Box::new(Aimd::reno()))
            .initial_window(30.0)
            .start_at(100);
        assert_eq!(cfg.initial_window, 30.0);
        assert_eq!(cfg.start_tick, 100);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(0)
            .run();
    }

    #[test]
    #[should_panic(expected = "initial_window")]
    fn negative_initial_window_rejected() {
        Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(-1.0))
            .run();
    }

    #[test]
    #[should_panic(expected = "invalid loss model")]
    fn invalid_loss_model_rejected() {
        Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .wire_loss(LossModel::Constant { rate: 1.5 })
            .run();
    }

    #[test]
    fn try_run_returns_typed_errors_instead_of_panicking() {
        let err = Scenario::new(link()).try_run().unwrap_err();
        assert_eq!(err, ScenarioError::NoSenders);

        let err = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(0)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidParameter { field: "steps", .. }
        ));

        let err = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .wire_loss(LossModel::Bernoulli { rate: -0.5 })
            .try_run()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidLossModel(_)));

        let err = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .max_window(0.0)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidParameter {
                field: "max_window",
                ..
            }
        ));

        let err = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .bandwidth_change(10, -5.0)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidParameter {
                field: "bandwidth_change",
                ..
            }
        ));
    }

    #[test]
    fn validate_accepts_a_well_formed_scenario() {
        let s = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 2, 1.0)
            .wire_loss(LossModel::bursty(0.01, 8.0, 0.2))
            .bandwidth_change(100, 500.0)
            .steps(200);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn outage_schedules_collapse_and_recovery() {
        let s = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .outage(100, 150);
        assert_eq!(s.bandwidth_changes.len(), 2);
        assert_eq!(s.bandwidth_changes[0].0, 100);
        assert!(s.bandwidth_changes[0].1 < 1.0);
        assert_eq!(s.bandwidth_changes[1], (150, 1000.0));
        assert_eq!(s.validate(), Ok(()));
    }
}
