//! Non-congestion ("wire") loss injection.
//!
//! Metric VI quantifies robustness against *"constant random packet loss
//! rate of at most α"* on a link of infinite capacity — loss that does not
//! signal congestion (wireless corruption, shallow-buffered middleboxes,
//! etc.; the scenario PCC's authors use to motivate that protocol).
//!
//! The fluid model carries loss as a per-step *rate*, so wire loss composes
//! with congestion loss independently:
//!
//! ```text
//! L_eff = 1 − (1 − L_congestion) · (1 − L_wire)
//! ```
//!
//! Three wire-loss models are provided:
//!
//! * [`LossModel::Constant`] — every step experiences exactly the given
//!   rate; this is the literal reading of the axiom and is fully
//!   deterministic.
//! * [`LossModel::Bernoulli`] — each step's loss fraction is sampled as
//!   `k/w` with `k ~ Binomial(⌈w⌉, rate)`: the packet-level reality the
//!   rate abstracts. Small windows then see *bursty* loss (often 0,
//!   occasionally ≥ 1 packet), which is exactly what breaks TCP in
//!   practice and makes the robustness experiments more faithful.
//! * [`LossModel::GilbertElliott`] — a two-state Markov chain per sender:
//!   a mostly-clean *good* state and a lossy *bad* state with geometric
//!   sojourn times. This is the classic model of *correlated* loss
//!   (wireless fades, microwave links, interference bursts) and the
//!   substrate of the adverse-network gauntlet: uniform and bursty models
//!   share a mean rate but stress protocols very differently.
//!
//! Gilbert–Elliott is *stateful* (the chain's state persists across
//! steps), so sampling goes through [`LossProcess`], which owns one chain
//! per sender. The stateless variants pass through unchanged — their RNG
//! draw sequences are identical to the pre-fault-layer engine, keeping
//! old seeds bit-compatible.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A non-congestion loss model applied per sender per time step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No wire loss (the paper's deterministic core model).
    None,
    /// Constant loss rate each step — the literal Metric VI scenario.
    Constant {
        /// The loss rate applied every step, in `[0, 1)`.
        rate: f64,
    },
    /// Per-packet Bernoulli loss: the step's loss fraction is
    /// `k / ⌈w⌉` with `k ~ Binomial(⌈w⌉, rate)`.
    Bernoulli {
        /// Per-packet drop probability, in `[0, 1)`.
        rate: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) bursty loss. Each sender carries
    /// its own chain; per step the chain's current state emits its loss
    /// rate, then transitions.
    GilbertElliott {
        /// P(good → bad) per step, in `[0, 1]`.
        p_enter: f64,
        /// P(bad → good) per step, in `(0, 1]`. Mean burst length is
        /// `1/p_exit` steps.
        p_exit: f64,
        /// Loss rate emitted in the good state, in `[0, 1)` (usually 0).
        loss_good: f64,
        /// Loss rate emitted in the bad state, in `[0, 1)`.
        loss_bad: f64,
    },
}

impl LossModel {
    /// A Gilbert–Elliott model parameterized the way experiments think
    /// about it: a long-run `mean_rate`, a mean burst length of
    /// `burst_len` steps, and a bad-state loss rate `loss_bad`
    /// (good state is clean).
    ///
    /// Solving the stationary distribution `π_bad = p_enter/(p_enter+p_exit)`:
    /// `π_bad = mean_rate/loss_bad`, `p_exit = 1/burst_len`, and
    /// `p_enter = π_bad·p_exit/(1−π_bad)`.
    ///
    /// With `burst_len = 1` the chain has no memory beyond a single step —
    /// the closest GE analogue of uniform loss — so sweeping `burst_len`
    /// at fixed `mean_rate` isolates *burstiness* as the experimental
    /// variable.
    pub fn bursty(mean_rate: f64, burst_len: f64, loss_bad: f64) -> Self {
        let pi_bad = if loss_bad > 0.0 {
            mean_rate / loss_bad
        } else {
            f64::NAN
        };
        let p_exit = if burst_len > 0.0 {
            1.0 / burst_len
        } else {
            f64::NAN
        };
        let p_enter = pi_bad * p_exit / (1.0 - pi_bad);
        LossModel::GilbertElliott {
            p_enter,
            p_exit,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// The model's long-run mean rate (0 for [`LossModel::None`]).
    pub fn nominal_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Constant { rate } | LossModel::Bernoulli { rate } => rate,
            LossModel::GilbertElliott {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                let pi_bad = p_enter / (p_enter + p_exit);
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
        }
    }

    /// Validate the model's parameters.
    pub fn validate(&self) -> Result<(), String> {
        let rate_ok = |r: f64| (0.0..1.0).contains(&r);
        match *self {
            LossModel::None => Ok(()),
            LossModel::Constant { rate } | LossModel::Bernoulli { rate } => {
                if rate_ok(rate) {
                    Ok(())
                } else {
                    Err(format!("wire loss rate {rate} outside [0,1)"))
                }
            }
            LossModel::GilbertElliott {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                if !(0.0..=1.0).contains(&p_enter) || !p_enter.is_finite() {
                    return Err(format!("Gilbert-Elliott p_enter {p_enter} outside [0,1]"));
                }
                if !(p_exit > 0.0 && p_exit <= 1.0) {
                    return Err(format!("Gilbert-Elliott p_exit {p_exit} outside (0,1]"));
                }
                if !rate_ok(loss_good) {
                    return Err(format!(
                        "Gilbert-Elliott loss_good {loss_good} outside [0,1)"
                    ));
                }
                if !rate_ok(loss_bad) {
                    return Err(format!("Gilbert-Elliott loss_bad {loss_bad} outside [0,1)"));
                }
                Ok(())
            }
        }
    }
}

/// The runtime sampler for a [`LossModel`]: owns the per-sender
/// Gilbert–Elliott chain states (all chains start in the good state).
///
/// For the stateless variants this is a zero-state pass-through whose RNG
/// consumption exactly matches the historical engine: `None`/`Constant`
/// never draw, `Bernoulli` draws per packet. Gilbert–Elliott draws exactly
/// one transition uniform per sampled step.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    /// Per-sender "currently in bad state" flags (Gilbert–Elliott only).
    in_bad: Vec<bool>,
}

impl LossProcess {
    /// A process for `model` serving `n_senders` independent chains.
    pub fn new(model: LossModel, n_senders: usize) -> Self {
        LossProcess {
            model,
            in_bad: vec![false; n_senders],
        }
    }

    /// The wire-loss fraction sender `sender` with window `window`
    /// experiences this step.
    pub fn sample(&mut self, rng: &mut ChaCha8Rng, sender: usize, window: f64) -> f64 {
        match self.model {
            LossModel::None => 0.0,
            LossModel::Constant { rate } => rate,
            LossModel::Bernoulli { rate } => sample_loss_fraction(rng, window, rate),
            LossModel::GilbertElliott {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                let bad = self.in_bad[sender];
                let emitted = if bad { loss_bad } else { loss_good };
                let u = rng.gen::<f64>();
                self.in_bad[sender] = if bad { u >= p_exit } else { u < p_enter };
                emitted
            }
        }
    }
}

/// Compose congestion loss and wire loss as independent drop processes.
///
/// The model's loss rates are strictly below 1 (`1 − (C+τ)/X` and the
/// samplers both are), but composing two near-1 rates can *round* to
/// exactly 1.0 in `f64`; the result is clamped back under 1 so traces
/// always satisfy the `L ∈ [0, 1)` invariant.
pub fn compose_loss(congestion: f64, wire: f64) -> f64 {
    (1.0 - (1.0 - congestion) * (1.0 - wire)).min(1.0 - f64::EPSILON)
}

/// Sample the loss *fraction* a window of `window` MSS experiences when
/// each of its packets is dropped independently with probability `rate`:
/// `k/⌈window⌉` with `k ~ Binomial(⌈window⌉, rate)`.
///
/// Shared by the Bernoulli wire-loss model and the per-packet
/// (unsynchronized) congestion-feedback mode.
pub fn sample_loss_fraction(rng: &mut ChaCha8Rng, window: f64, rate: f64) -> f64 {
    if window <= 0.0 || rate <= 0.0 {
        return 0.0;
    }
    let n = window.ceil() as u64;
    let k = sample_binomial(rng, n, rate.min(1.0 - f64::EPSILON));
    (k as f64 / n as f64).min(1.0 - f64::EPSILON)
}

/// Draw from Binomial(n, p).
///
/// Exact Bernoulli summation for small `n`; for large `n` a normal
/// approximation (clamped to `[0, n]`) keeps steps O(1) — at `n·p ≫ 10` the
/// approximation error is far below the model's own fidelity.
fn sample_binomial(rng: &mut ChaCha8Rng, n: u64, p: f64) -> u64 {
    if n <= 1024 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box-Muller from two uniforms.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn one(model: LossModel, r: &mut ChaCha8Rng, window: f64) -> f64 {
        LossProcess::new(model, 1).sample(r, 0, window)
    }

    #[test]
    fn none_is_zero() {
        let mut r = rng(1);
        assert_eq!(one(LossModel::None, &mut r, 100.0), 0.0);
        assert_eq!(LossModel::None.nominal_rate(), 0.0);
    }

    #[test]
    fn constant_is_exact() {
        let mut r = rng(1);
        let m = LossModel::Constant { rate: 0.01 };
        for w in [0.5, 1.0, 100.0, 1e6] {
            assert_eq!(one(m, &mut r, w), 0.01);
        }
    }

    #[test]
    fn bernoulli_mean_converges_to_rate() {
        let mut r = rng(42);
        let mut p = LossProcess::new(LossModel::Bernoulli { rate: 0.05 }, 1);
        let trials = 4000;
        let mean: f64 =
            (0..trials).map(|_| p.sample(&mut r, 0, 100.0)).sum::<f64>() / trials as f64;
        assert!((mean - 0.05).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bernoulli_large_window_normal_path() {
        let mut r = rng(7);
        let mut p = LossProcess::new(LossModel::Bernoulli { rate: 0.01 }, 1);
        let trials = 2000;
        let mean: f64 = (0..trials)
            .map(|_| p.sample(&mut r, 0, 50_000.0))
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn bernoulli_zero_window_is_lossless() {
        let mut r = rng(3);
        assert_eq!(one(LossModel::Bernoulli { rate: 0.5 }, &mut r, 0.0), 0.0);
    }

    #[test]
    fn bernoulli_small_window_is_bursty() {
        // With w = 2 and rate 0.05 most steps see zero loss, a few see 50%+.
        let mut r = rng(9);
        let mut p = LossProcess::new(LossModel::Bernoulli { rate: 0.05 }, 1);
        let samples: Vec<f64> = (0..500).map(|_| p.sample(&mut r, 0, 2.0)).collect();
        let zeros = samples.iter().filter(|&&s| s == 0.0).count();
        let bursts = samples.iter().filter(|&&s| s >= 0.5).count();
        assert!(zeros > 400, "zeros {zeros}");
        assert!(bursts > 5, "bursts {bursts}");
    }

    #[test]
    fn sample_never_reaches_one() {
        let mut r = rng(11);
        let mut p = LossProcess::new(LossModel::Bernoulli { rate: 0.99 }, 1);
        for _ in 0..200 {
            assert!(p.sample(&mut r, 0, 3.0) < 1.0);
        }
    }

    #[test]
    fn composition_algebra() {
        assert_eq!(compose_loss(0.0, 0.0), 0.0);
        assert!((compose_loss(0.5, 0.0) - 0.5).abs() < 1e-12);
        assert!((compose_loss(0.0, 0.01) - 0.01).abs() < 1e-12);
        // Independent composition: 1 − 0.9·0.8 = 0.28.
        assert!((compose_loss(0.1, 0.2) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let m = LossModel::Bernoulli { rate: 0.1 };
        let mut r1 = rng(5);
        let mut r2 = rng(5);
        let mut p1 = LossProcess::new(m, 1);
        let mut p2 = LossProcess::new(m, 1);
        for _ in 0..100 {
            assert_eq!(p1.sample(&mut r1, 0, 50.0), p2.sample(&mut r2, 0, 50.0));
        }
    }

    #[test]
    fn validation() {
        assert!(LossModel::Constant { rate: 0.5 }.validate().is_ok());
        assert!(LossModel::Constant { rate: 1.0 }.validate().is_err());
        assert!(LossModel::Bernoulli { rate: -0.1 }.validate().is_err());
        assert!(LossModel::None.validate().is_ok());
    }

    #[test]
    fn gilbert_elliott_validation() {
        assert!(LossModel::bursty(0.01, 8.0, 0.2).validate().is_ok());
        // Mean rate above loss_bad is unrealizable (π_bad would exceed 1).
        assert!(LossModel::bursty(0.3, 8.0, 0.2).validate().is_err());
        assert!(LossModel::GilbertElliott {
            p_enter: 0.1,
            p_exit: 0.0,
            loss_good: 0.0,
            loss_bad: 0.5
        }
        .validate()
        .is_err());
        assert!(LossModel::GilbertElliott {
            p_enter: -0.1,
            p_exit: 0.5,
            loss_good: 0.0,
            loss_bad: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn bursty_constructor_hits_requested_mean() {
        for (mean, burst) in [(0.01, 1.0), (0.01, 8.0), (0.05, 16.0)] {
            let m = LossModel::bursty(mean, burst, 0.2);
            m.validate().unwrap();
            assert!(
                (m.nominal_rate() - mean).abs() < 1e-12,
                "nominal {} vs requested {mean}",
                m.nominal_rate()
            );
        }
    }

    #[test]
    fn gilbert_elliott_long_run_rate_matches_stationary() {
        let m = LossModel::bursty(0.02, 8.0, 0.25);
        let mut r = rng(17);
        let mut p = LossProcess::new(m, 1);
        let steps = 200_000;
        let mean: f64 = (0..steps).map(|_| p.sample(&mut r, 0, 100.0)).sum::<f64>() / steps as f64;
        assert!((mean - 0.02).abs() < 0.003, "long-run mean {mean}");
    }

    #[test]
    fn gilbert_elliott_emits_bursts_not_uniform_dust() {
        // With burst_len = 10 the loss arrives in runs of bad-state steps.
        let m = LossModel::bursty(0.02, 10.0, 0.2);
        let mut r = rng(23);
        let mut p = LossProcess::new(m, 1);
        let samples: Vec<f64> = (0..20_000).map(|_| p.sample(&mut r, 0, 50.0)).collect();
        // Count maximal runs of lossy steps and their mean length.
        let mut runs = Vec::new();
        let mut current = 0usize;
        for &s in &samples {
            if s > 0.0 {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        if current > 0 {
            runs.push(current);
        }
        assert!(!runs.is_empty());
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(
            (mean_run - 10.0).abs() < 2.5,
            "mean burst length {mean_run}, expected ~10"
        );
    }

    #[test]
    fn gilbert_elliott_chains_are_per_sender() {
        // Two senders' chains evolve independently: their loss sequences
        // must differ (each consumes its own transition draws).
        let m = LossModel::bursty(0.05, 5.0, 0.5);
        let mut r = rng(31);
        let mut p = LossProcess::new(m, 2);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..5000 {
            a.push(p.sample(&mut r, 0, 10.0));
            b.push(p.sample(&mut r, 1, 10.0));
        }
        assert_ne!(a, b);
        assert!(a.iter().any(|&x| x > 0.0));
        assert!(b.iter().any(|&x| x > 0.0));
    }
}
