//! Non-congestion ("wire") loss injection.
//!
//! Metric VI quantifies robustness against *"constant random packet loss
//! rate of at most α"* on a link of infinite capacity — loss that does not
//! signal congestion (wireless corruption, shallow-buffered middleboxes,
//! etc.; the scenario PCC's authors use to motivate that protocol).
//!
//! The fluid model carries loss as a per-step *rate*, so wire loss composes
//! with congestion loss independently:
//!
//! ```text
//! L_eff = 1 − (1 − L_congestion) · (1 − L_wire)
//! ```
//!
//! Two wire-loss models are provided:
//!
//! * [`LossModel::Constant`] — every step experiences exactly the given
//!   rate; this is the literal reading of the axiom and is fully
//!   deterministic.
//! * [`LossModel::Bernoulli`] — each step's loss fraction is sampled as
//!   `k/w` with `k ~ Binomial(⌈w⌉, rate)`: the packet-level reality the
//!   rate abstracts. Small windows then see *bursty* loss (often 0,
//!   occasionally ≥ 1 packet), which is exactly what breaks TCP in
//!   practice and makes the robustness experiments more faithful.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A non-congestion loss model applied per sender per time step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No wire loss (the paper's deterministic core model).
    None,
    /// Constant loss rate each step — the literal Metric VI scenario.
    Constant {
        /// The loss rate applied every step, in `[0, 1)`.
        rate: f64,
    },
    /// Per-packet Bernoulli loss: the step's loss fraction is
    /// `k / ⌈w⌉` with `k ~ Binomial(⌈w⌉, rate)`.
    Bernoulli {
        /// Per-packet drop probability, in `[0, 1)`.
        rate: f64,
    },
}

impl LossModel {
    /// The wire-loss fraction a sender with window `window` experiences
    /// this step. `rng` is only consulted by the [`LossModel::Bernoulli`]
    /// variant, keeping [`LossModel::None`]/[`LossModel::Constant`] runs
    /// bit-for-bit deterministic.
    pub fn sample(&self, rng: &mut ChaCha8Rng, window: f64) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Constant { rate } => rate,
            LossModel::Bernoulli { rate } => sample_loss_fraction(rng, window, rate),
        }
    }

    /// The model's nominal rate (0 for [`LossModel::None`]).
    pub fn nominal_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Constant { rate } | LossModel::Bernoulli { rate } => rate,
        }
    }

    /// Validate the model's parameters (rates must be in `[0, 1)`).
    pub fn validate(&self) -> Result<(), String> {
        let r = self.nominal_rate();
        if (0.0..1.0).contains(&r) {
            Ok(())
        } else {
            Err(format!("wire loss rate {r} outside [0,1)"))
        }
    }
}

/// Compose congestion loss and wire loss as independent drop processes.
///
/// The model's loss rates are strictly below 1 (`1 − (C+τ)/X` and the
/// samplers both are), but composing two near-1 rates can *round* to
/// exactly 1.0 in `f64`; the result is clamped back under 1 so traces
/// always satisfy the `L ∈ [0, 1)` invariant.
pub fn compose_loss(congestion: f64, wire: f64) -> f64 {
    (1.0 - (1.0 - congestion) * (1.0 - wire)).min(1.0 - f64::EPSILON)
}

/// Sample the loss *fraction* a window of `window` MSS experiences when
/// each of its packets is dropped independently with probability `rate`:
/// `k/⌈window⌉` with `k ~ Binomial(⌈window⌉, rate)`.
///
/// Shared by the Bernoulli wire-loss model and the per-packet
/// (unsynchronized) congestion-feedback mode.
pub fn sample_loss_fraction(rng: &mut ChaCha8Rng, window: f64, rate: f64) -> f64 {
    if window <= 0.0 || rate <= 0.0 {
        return 0.0;
    }
    let n = window.ceil() as u64;
    let k = sample_binomial(rng, n, rate.min(1.0 - f64::EPSILON));
    (k as f64 / n as f64).min(1.0 - f64::EPSILON)
}

/// Draw from Binomial(n, p).
///
/// Exact Bernoulli summation for small `n`; for large `n` a normal
/// approximation (clamped to `[0, n]`) keeps steps O(1) — at `n·p ≫ 10` the
/// approximation error is far below the model's own fidelity.
fn sample_binomial(rng: &mut ChaCha8Rng, n: u64, p: f64) -> u64 {
    if n <= 1024 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box-Muller from two uniforms.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn none_is_zero() {
        let mut r = rng(1);
        assert_eq!(LossModel::None.sample(&mut r, 100.0), 0.0);
        assert_eq!(LossModel::None.nominal_rate(), 0.0);
    }

    #[test]
    fn constant_is_exact() {
        let mut r = rng(1);
        let m = LossModel::Constant { rate: 0.01 };
        for w in [0.5, 1.0, 100.0, 1e6] {
            assert_eq!(m.sample(&mut r, w), 0.01);
        }
    }

    #[test]
    fn bernoulli_mean_converges_to_rate() {
        let mut r = rng(42);
        let m = LossModel::Bernoulli { rate: 0.05 };
        let trials = 4000;
        let mean: f64 = (0..trials).map(|_| m.sample(&mut r, 100.0)).sum::<f64>() / trials as f64;
        assert!((mean - 0.05).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bernoulli_large_window_normal_path() {
        let mut r = rng(7);
        let m = LossModel::Bernoulli { rate: 0.01 };
        let trials = 2000;
        let mean: f64 =
            (0..trials).map(|_| m.sample(&mut r, 50_000.0)).sum::<f64>() / trials as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn bernoulli_zero_window_is_lossless() {
        let mut r = rng(3);
        let m = LossModel::Bernoulli { rate: 0.5 };
        assert_eq!(m.sample(&mut r, 0.0), 0.0);
    }

    #[test]
    fn bernoulli_small_window_is_bursty() {
        // With w = 2 and rate 0.05 most steps see zero loss, a few see 50%+.
        let mut r = rng(9);
        let m = LossModel::Bernoulli { rate: 0.05 };
        let samples: Vec<f64> = (0..500).map(|_| m.sample(&mut r, 2.0)).collect();
        let zeros = samples.iter().filter(|&&s| s == 0.0).count();
        let bursts = samples.iter().filter(|&&s| s >= 0.5).count();
        assert!(zeros > 400, "zeros {zeros}");
        assert!(bursts > 5, "bursts {bursts}");
    }

    #[test]
    fn sample_never_reaches_one() {
        let mut r = rng(11);
        let m = LossModel::Bernoulli { rate: 0.99 };
        for _ in 0..200 {
            assert!(m.sample(&mut r, 3.0) < 1.0);
        }
    }

    #[test]
    fn composition_algebra() {
        assert_eq!(compose_loss(0.0, 0.0), 0.0);
        assert!((compose_loss(0.5, 0.0) - 0.5).abs() < 1e-12);
        assert!((compose_loss(0.0, 0.01) - 0.01).abs() < 1e-12);
        // Independent composition: 1 − 0.9·0.8 = 0.28.
        assert!((compose_loss(0.1, 0.2) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let m = LossModel::Bernoulli { rate: 0.1 };
        let mut r1 = rng(5);
        let mut r2 = rng(5);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut r1, 50.0), m.sample(&mut r2, 50.0));
        }
    }

    #[test]
    fn validation() {
        assert!(LossModel::Constant { rate: 0.5 }.validate().is_ok());
        assert!(LossModel::Constant { rate: 1.0 }.validate().is_err());
        assert!(LossModel::Bernoulli { rate: -0.1 }.validate().is_err());
        assert!(LossModel::None.validate().is_ok());
    }
}
