//! Accounting of trace allocations avoided by the streaming path.
//!
//! A recorded fluid run allocates, per step, three shared link columns
//! plus three per-sender columns (window, loss, goodput — the per-sender
//! RTT column is deduplicated into the shared one), all `f64`. The
//! streaming path allocates none of them; every streaming run credits its
//! would-be footprint here so `bench-engine` can report the eliminated
//! bytes alongside wall-clock. Counters are atomic because sweep workers
//! run streaming jobs concurrently; they feed reporting only, never
//! results.

use std::sync::atomic::{AtomicU64, Ordering};

static ELIMINATED_BYTES: AtomicU64 = AtomicU64::new(0);
static STREAMED_RUNS: AtomicU64 = AtomicU64::new(0);
static STREAMED_STEPS: AtomicU64 = AtomicU64::new(0);
static STREAMED_SENDER_STEPS: AtomicU64 = AtomicU64::new(0);

/// Bytes of trace columns a recorded run of this shape allocates: per
/// step, 3 shared `f64` columns plus 3 per-sender `f64` columns.
pub fn trace_bytes(steps: usize, senders: usize) -> u64 {
    8 * (steps as u64) * (3 * senders as u64 + 3)
}

/// Credit one completed streaming run of the given shape.
pub(crate) fn record_streamed(steps: usize, senders: usize) {
    ELIMINATED_BYTES.fetch_add(trace_bytes(steps, senders), Ordering::Relaxed);
    STREAMED_RUNS.fetch_add(1, Ordering::Relaxed);
    STREAMED_STEPS.fetch_add(steps as u64, Ordering::Relaxed);
    STREAMED_SENDER_STEPS.fetch_add(steps as u64 * senders as u64, Ordering::Relaxed);
}

/// Snapshot of the streaming-path accounting since the last [`take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamingStats {
    /// Completed streaming runs.
    pub runs: u64,
    /// Total trace bytes those runs did not allocate.
    pub eliminated_bytes: u64,
    /// Total simulation steps those runs executed.
    pub steps: u64,
    /// Total sender-steps (steps × senders) those runs executed — the
    /// denominator for per-lane throughput (`bench-engine`'s
    /// steps-per-second and ns-per-step columns).
    pub sender_steps: u64,
}

/// Read and reset the counters (process-wide).
pub fn take() -> StreamingStats {
    StreamingStats {
        runs: STREAMED_RUNS.swap(0, Ordering::Relaxed),
        eliminated_bytes: ELIMINATED_BYTES.swap(0, Ordering::Relaxed),
        steps: STREAMED_STEPS.swap(0, Ordering::Relaxed),
        sender_steps: STREAMED_SENDER_STEPS.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_bytes_formula() {
        // 100 steps × (3·2 + 3) columns × 8 bytes.
        assert_eq!(trace_bytes(100, 2), 7200);
        assert_eq!(trace_bytes(0, 5), 0);
    }
}
