//! # axcc-fluidsim — the paper's fluid-flow discrete-time simulator
//!
//! Implements the dynamics of Section 2 exactly: time is an infinite
//! sequence of RTT-length steps with **synchronized feedback**; at each step
//! every sender observes the step's RTT (equation 1) and droptail loss
//! rate, and its protocol deterministically selects the next congestion
//! window in `[0, M]`.
//!
//! On top of the paper's deterministic core, the engine supports:
//!
//! * **staggered entry** — each sender has a start step, modeling
//!   "connections (with smaller window sizes) starting to send after other
//!   connections";
//! * **non-congestion loss injection** ([`loss::LossModel`]) — the
//!   constant/random wire loss of Metric VI and the PCC motivating
//!   scenario, plus Gilbert–Elliott bursty loss and link outages for the
//!   adverse-network gauntlet, all driven by a seeded ChaCha8 RNG so every
//!   run is reproducible;
//! * **typed errors** — [`Scenario::try_run`] returns
//!   [`ScenarioError`](axcc_core::ScenarioError) for invalid
//!   configurations and numerically divergent runs instead of panicking;
//! * **trace recording** — the engine emits the [`RunTrace`] consumed by
//!   every axiom evaluator in `axcc-core` / `axcc-analysis`;
//! * **streaming evaluation** — the same loop can instead drive a
//!   [`MetricAccumulator`] ([`try_run_scenario_streaming`]), folding each
//!   step straight into the axiom scores in O(senders) memory with
//!   bit-identical results; [`try_run_scenario_with`] exposes the
//!   underlying [`StepSink`] visitor for custom consumers;
//! * **flow churn** — sender populations can grow and shrink mid-run:
//!   every sender has an optional stop step, and [`Scenario::churn`] /
//!   [`NetScenario::churn`] expand a deterministic seeded
//!   [`ChurnPlan`](axcc_topo::ChurnPlan) (Poisson arrivals, exponential
//!   lifetimes, optional on/off phases) into a concrete staggered sender
//!   population shared bit-for-bit with the packet-level engine.
//!
//! ```
//! use axcc_core::LinkParams;
//! use axcc_fluidsim::{Scenario, SenderConfig};
//! use axcc_protocols::Aimd;
//!
//! // Two Reno senders on a C = 100 MSS link, as in the paper's model.
//! let link = LinkParams::new(1000.0, 0.05, 20.0);
//! let trace = Scenario::new(link)
//!     .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
//!     .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(80.0))
//!     .steps(2000)
//!     .run();
//! // Converged and fair: both senders' tail-average windows are close.
//! let tail = trace.tail_start(0.5);
//! let a = trace.senders[0].mean_window_from(tail);
//! let b = trace.senders[1].mean_window_from(tail);
//! assert!((a / b - 1.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

mod engine;
pub mod loss;
pub mod network;
mod scenario;
pub mod stats;

pub use engine::{
    metric_accumulator_for, run_scenario, run_scenario_streaming, run_scenario_streaming_into,
    try_run_scenario, try_run_scenario_streaming, try_run_scenario_streaming_into,
    try_run_scenario_with, try_run_scenario_with_workspace, EngineWorkspace, StepSink,
    StreamOptions, TraceSink,
};
pub use loss::{LossModel, LossProcess};
pub use network::{FlowConfig, NetScenario, NetTrace, Topology};
pub use scenario::{FeedbackMode, MathMode, Scenario, SenderConfig};

pub use axcc_core::axioms::streaming::{
    MetricAccumulator, MetricConfig, MetricSet, StepBlock, StepRecord,
};
pub use axcc_core::{LinkParams, RunTrace, ScenarioError, SenderTrace};
pub use axcc_topo::{ChurnPlan, FlowInterval, OnOffPhases};
