//! The simulation loop: synchronized discrete-time dynamics (Section 2).

use crate::loss::{compose_loss, sample_loss_fraction, LossProcess};
use crate::scenario::{FeedbackMode, Scenario};
use axcc_core::protocol::clamp_window;
use axcc_core::{Observation, RunTrace, ScenarioError, SenderTrace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Run a scenario to completion, producing the full trace, or a typed
/// error for an invalid configuration or a numerically divergent run.
///
/// At each step `t`:
///
/// 1. senders whose start step is `t` enter with their initial windows;
/// 2. the total active window `X^(t)` determines the step's RTT
///    (equation 1) and congestion loss rate (both shared by all senders —
///    synchronized feedback);
/// 3. each active sender's wire loss is sampled and composed with the
///    congestion loss; the sender's protocol observes its window, composed
///    loss, RTT and running min-RTT, and selects the next window;
/// 4. the requested windows are checked for divergence (a NaN or infinite
///    request aborts with [`ScenarioError::NumericalDivergence`] rather
///    than emitting a garbage trace), clamped to `[0, M]`, and become
///    `x̄^(t+1)`.
///
/// Senders that have not yet entered are recorded with zero window and
/// goodput so traces stay rectangular.
pub fn try_run_scenario(scenario: Scenario) -> Result<RunTrace, ScenarioError> {
    scenario.validate()?;
    let Scenario {
        link,
        mut senders,
        steps,
        max_window,
        loss_model,
        seed,
        bandwidth_changes,
        feedback,
    } = scenario;

    // The active link: bandwidth may change mid-run (an extension of the
    // paper's static model; see `Scenario::bandwidth_change`). Propagation
    // delay and buffer never change, so the trace's recorded link keeps
    // the correct RTT floor for validation.
    let mut active_link = link;
    let mut pending_changes = bandwidth_changes.into_iter().peekable();

    let n = senders.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut wire_loss = LossProcess::new(loss_model, n);

    let mut windows: Vec<f64> = vec![0.0; n];
    let mut started: Vec<bool> = vec![false; n];
    let mut min_rtts: Vec<f64> = vec![f64::INFINITY; n];

    let mut traces: Vec<SenderTrace> = senders
        .iter()
        .map(|s| SenderTrace::with_capacity(s.protocol.name(), s.protocol.loss_based(), steps))
        .collect();
    let mut total_col = Vec::with_capacity(steps);
    let mut rtt_col = Vec::with_capacity(steps);
    let mut loss_col = Vec::with_capacity(steps);

    for t in 0..steps as u64 {
        // (0) scheduled link changes.
        while let Some(&(at, new_bw)) = pending_changes.peek() {
            if at > t {
                break;
            }
            pending_changes.next();
            active_link = axcc_core::LinkParams::new(new_bw, link.prop_delay, link.buffer);
        }

        // (1) admissions.
        for (i, cfg) in senders.iter().enumerate() {
            if !started[i] && t >= cfg.start_tick {
                started[i] = true;
                windows[i] = clamp_window(cfg.initial_window, max_window);
            }
        }

        // (2) shared link state.
        let total: f64 = windows
            .iter()
            .zip(&started)
            .filter(|(_, &s)| s)
            .map(|(w, _)| *w)
            .sum();
        let rtt = active_link.rtt(total);
        let congestion_loss = active_link.loss_rate(total);

        total_col.push(total);
        rtt_col.push(rtt);
        loss_col.push(congestion_loss);

        // (3)+(4) per-sender observation and update.
        for i in 0..n {
            if !started[i] {
                traces[i].window.push(0.0);
                traces[i].loss.push(0.0);
                traces[i].rtt.push(rtt);
                traces[i].goodput.push(0.0);
                continue;
            }
            let wire = wire_loss.sample(&mut rng, i, windows[i]);
            let observed_congestion = match feedback {
                FeedbackMode::Synchronized => congestion_loss,
                FeedbackMode::PerPacket => {
                    sample_loss_fraction(&mut rng, windows[i], congestion_loss)
                }
            };
            let loss = compose_loss(observed_congestion, wire);
            min_rtts[i] = min_rtts[i].min(rtt);

            let w = windows[i];
            traces[i].window.push(w);
            traces[i].loss.push(loss);
            traces[i].rtt.push(rtt);
            traces[i].goodput.push(w * (1.0 - loss) / rtt);

            let obs = Observation {
                tick: t,
                window: w,
                loss_rate: loss,
                rtt,
                min_rtt: min_rtts[i],
            };
            let requested = senders[i].protocol.next_window(&obs);
            if !requested.is_finite() {
                return Err(ScenarioError::NumericalDivergence {
                    step: t,
                    sender: i,
                    context: "requested window",
                    value: requested,
                });
            }
            windows[i] = clamp_window(requested, max_window);
        }
    }

    let trace = RunTrace {
        link,
        senders: traces,
        total_window: total_col,
        rtt: rtt_col,
        loss: loss_col,
        seed,
    };
    debug_assert_eq!(trace.validate(max_window), Ok(()));
    Ok(trace)
}

/// Run a scenario to completion, producing the full trace.
///
/// Legacy panicking wrapper over [`try_run_scenario`]: the panic message
/// is the [`ScenarioError`] display string, preserving the historical
/// messages ("scenario needs at least one sender", …).
///
/// # Panics
///
/// Panics on an invalid scenario or a numerically divergent run.
pub fn run_scenario(scenario: Scenario) -> RunTrace {
    // tidy-allow: panic-freedom — documented panicking façade over try_run_scenario; fallible callers use the try_ path
    try_run_scenario(scenario).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use crate::scenario::SenderConfig;
    use axcc_core::LinkParams;
    use axcc_protocols::{Aimd, Mimd, RobustAimd, Vegas};

    /// C = 100 MSS, τ = 20 MSS.
    fn link() -> LinkParams {
        LinkParams::new(1000.0, 0.05, 20.0)
    }

    #[test]
    fn single_reno_fills_the_pipe() {
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(1000)
            .run();
        trace.validate(axcc_core::protocol::MAX_WINDOW).unwrap();
        let tail = trace.tail_start(0.5);
        // Sawtooth between 0.5·(C+τ) = 60 and C+τ = 120: mean utilization
        // well above the worst-case b = 0.5.
        let eff = axcc_core::axioms::efficiency::measured_efficiency(&trace, tail);
        assert!(eff >= 0.5, "efficiency {eff}");
        let mean = axcc_core::axioms::efficiency::mean_utilization(&trace, tail);
        assert!(mean > 0.8, "mean utilization {mean}");
    }

    #[test]
    fn reno_sawtooth_is_periodic_and_lossy_at_peaks() {
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(600)
            .run();
        let tail = trace.tail_start(0.5);
        // Loss recurs (Claim 1: a fast-utilizing loss-based protocol cannot
        // be 0-loss)…
        let events: usize = trace.loss[tail..].iter().filter(|&&l| l > 0.0).count();
        assert!(events >= 2, "loss events in tail: {events}");
        // …but single-step loss is bounded by the overshoot of one +1 step.
        let max_loss = trace.loss[tail..].iter().copied().fold(0.0, f64::max);
        assert!(max_loss < 0.05, "max loss {max_loss}");
    }

    #[test]
    fn two_renos_converge_to_fairness_from_skewed_start() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(100.0))
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .steps(3000)
            .run();
        let tail = trace.tail_start(0.5);
        let f = axcc_core::axioms::fairness::measured_fairness(&trace, tail);
        assert!(f > 0.8, "fairness {f}");
    }

    #[test]
    fn two_mimds_preserve_imbalance() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(40.0))
            .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(10.0))
            .steps(2000)
            .run();
        let tail = trace.tail_start(0.5);
        let f = axcc_core::axioms::fairness::measured_fairness(&trace, tail);
        // Ratio stays 1:4 — far from fair (Table 1's <0> fairness).
        assert!(f < 0.3, "fairness {f}");
    }

    #[test]
    fn late_joiner_enters_at_start_tick() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .sender(
                SenderConfig::new(Box::new(Aimd::reno()))
                    .initial_window(1.0)
                    .start_at(200),
            )
            .steps(400)
            .run();
        // Before step 200 the second sender is idle.
        assert!(trace.senders[1].window[..200].iter().all(|&w| w == 0.0));
        assert_eq!(trace.senders[1].window[200], 1.0);
        assert!(trace.senders[1].window[399] > 1.0);
    }

    #[test]
    fn deterministic_without_wire_loss() {
        let run = || {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 3, 2.0)
                .steps(500)
                .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deterministic_per_seed_with_wire_loss() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 2.0)
                .wire_loss(LossModel::Bernoulli { rate: 0.01 })
                .seed(seed)
                .steps(500)
                .run()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn deterministic_per_seed_with_bursty_loss() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 2.0)
                .wire_loss(LossModel::bursty(0.01, 8.0, 0.2))
                .seed(seed)
                .steps(500)
                .run()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn bursty_loss_reaches_the_senders() {
        // The composed per-sender loss column must show wire loss above
        // the congestion floor in bad-state steps.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .wire_loss(LossModel::bursty(0.02, 8.0, 0.2))
            .seed(3)
            .steps(1000)
            .run();
        let lossy = trace.senders[0].loss.iter().filter(|&&l| l >= 0.19).count();
        assert!(lossy > 10, "bad-state steps observed: {lossy}");
    }

    #[test]
    fn robustness_scenario_robust_aimd_escapes_reno_collapses() {
        // Metric VI: infinite capacity (huge link), constant 0.5% loss.
        let big = LinkParams::new(1.0e9, 0.05, 1.0e9);
        let run = |p: Box<dyn axcc_core::Protocol>| {
            Scenario::new(big)
                .sender(SenderConfig::new(p).initial_window(10.0))
                .wire_loss(LossModel::Constant { rate: 0.005 })
                .steps(2000)
                .run()
        };
        let robust = run(Box::new(RobustAimd::table2()));
        let reno = run(Box::new(Aimd::reno()));
        let r_final = *robust.senders[0].window.last().unwrap();
        let t_final = *reno.senders[0].window.last().unwrap();
        // Robust-AIMD climbs ~1 MSS/step; Reno halves every step.
        assert!(r_final > 1000.0, "robust final {r_final}");
        assert!(t_final < 2.0, "reno final {t_final}");
    }

    #[test]
    fn vegas_holds_rtt_near_floor() {
        let trace = Scenario::new(link())
            .homogeneous(&Vegas::classic(), 2, 1.0)
            .steps(1500)
            .run();
        let tail = trace.tail_start(0.5);
        let inflation = axcc_core::axioms::latency::measured_latency_inflation(&trace, tail);
        // 2 senders × β = 4 packets of standing queue over C = 100:
        // inflation ≈ 8% worst case.
        assert!(inflation < 0.12, "latency inflation {inflation}");
        // And no loss at all in the tail.
        assert!(axcc_core::axioms::loss_avoidance::is_zero_loss(
            &trace, tail
        ));
    }

    #[test]
    fn max_window_is_respected() {
        let trace = Scenario::new(link())
            .homogeneous(&Mimd::scalable(), 1, 1.0)
            .max_window(50.0)
            .steps(300)
            .run();
        assert!(trace.senders[0].window.iter().all(|&w| w <= 50.0));
        trace.validate(50.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_scenario_panics() {
        Scenario::new(link()).run();
    }

    /// A pathological protocol whose window arithmetic blows up after a
    /// set number of steps — exercises the engine's divergence guard.
    #[derive(Debug, Clone)]
    struct DivergeAfter {
        remaining: u64,
        emit: f64,
    }

    impl axcc_core::Protocol for DivergeAfter {
        fn name(&self) -> String {
            "DivergeAfter".into()
        }
        fn next_window(&mut self, obs: &Observation) -> f64 {
            if self.remaining == 0 {
                self.emit
            } else {
                self.remaining -= 1;
                obs.window + 1.0
            }
        }
        fn loss_based(&self) -> bool {
            true
        }
        fn reset(&mut self) {}
        fn clone_box(&self) -> Box<dyn axcc_core::Protocol> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn nan_window_is_caught_as_numerical_divergence() {
        let err = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 5,
                emit: f64::NAN,
            })))
            .steps(100)
            .try_run()
            .unwrap_err();
        match err {
            ScenarioError::NumericalDivergence {
                step,
                sender,
                context,
                value,
            } => {
                assert_eq!(step, 5);
                assert_eq!(sender, 0);
                assert_eq!(context, "requested window");
                assert!(value.is_nan());
            }
            other => panic!("expected NumericalDivergence, got {other:?}"),
        }
    }

    #[test]
    fn infinite_window_is_caught_as_numerical_divergence() {
        let err = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 0,
                emit: f64::INFINITY,
            })))
            .steps(10)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::NumericalDivergence {
                step: 0,
                sender: 0,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "numerical divergence")]
    fn run_panics_on_divergence_with_diagnostic_message() {
        Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 2,
                emit: f64::NAN,
            })))
            .steps(10)
            .run();
    }

    #[test]
    fn per_packet_feedback_breaks_mimd_ratio_preservation() {
        // Under the paper's synchronized feedback, two MIMD senders keep
        // their initial 4:1 imbalance forever. Under per-packet
        // (unsynchronized) feedback — the §6 extension — the larger
        // sender statistically sees loss more often and the pair drifts
        // towards fairness.
        let run = |mode: FeedbackMode| {
            let trace = Scenario::new(link())
                .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(40.0))
                .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(10.0))
                .feedback(mode)
                .seed(5)
                .steps(4000)
                .run();
            let tail = trace.tail_start(0.5);
            axcc_core::axioms::fairness::measured_fairness(&trace, tail)
        };
        let sync = run(FeedbackMode::Synchronized);
        let unsync = run(FeedbackMode::PerPacket);
        assert!(sync < 0.3, "synchronized fairness {sync}");
        assert!(
            unsync > sync + 0.2,
            "unsynchronized {unsync} should improve on synchronized {sync}"
        );
    }

    #[test]
    fn per_packet_feedback_is_seeded() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 2.0)
                .feedback(FeedbackMode::PerPacket)
                .seed(seed)
                .steps(400)
                .run()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).senders[0].window, run(2).senders[0].window);
    }

    use crate::scenario::FeedbackMode;

    #[test]
    fn bandwidth_change_moves_the_operating_point() {
        // Halve the bandwidth mid-run: C drops 100 → 50, so the Reno
        // sawtooth re-converges around the smaller loss threshold.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .bandwidth_change(600, 500.0)
            .steps(1200)
            .run();
        let before = axcc_core::trace::mean(&trace.total_window[400..600]);
        let after = axcc_core::trace::mean(&trace.total_window[1000..1200]);
        // Before: sawtooth in [60, 120] (mean ≈ 90); after: C = 50,
        // threshold 70, sawtooth in [35, 70] (mean ≈ 52).
        assert!(before > 80.0, "before {before}");
        assert!(after < 65.0, "after {after}");
        assert!(after > 30.0, "after {after}");
    }

    #[test]
    fn bandwidth_increase_is_reclaimed() {
        // Double the bandwidth at step 500; the sender must grow into the
        // new capacity (this is what the responsiveness extension metric
        // measures).
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .bandwidth_change(500, 2000.0)
            .steps(1500)
            .run();
        let tail_mean = axcc_core::trace::mean(&trace.total_window[1200..]);
        // New C = 200, threshold 220: the sawtooth mean should exceed the
        // old threshold of 120.
        assert!(tail_mean > 140.0, "tail mean {tail_mean}");
    }

    #[test]
    fn outage_collapses_goodput_then_recovers() {
        // A 100-step outage: total goodput during the blackout is a
        // trickle; after recovery the sender re-fills the pipe.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .outage(500, 600)
            .steps(1500)
            .run();
        let during = axcc_core::trace::mean(&trace.senders[0].goodput[520..600]);
        let after = axcc_core::trace::mean(&trace.senders[0].goodput[1200..]);
        // During the outage the residual bandwidth (and the ballooned RTT)
        // cap goodput at a trickle — the buffer still holds a standing
        // window, so the *window* barely moves, but deliveries stop…
        assert!(during < 1.0, "mean goodput during outage {during}");
        // …and afterwards the sawtooth refills the nominal 1000 MSS/s pipe.
        assert!(after > 500.0, "mean goodput after recovery {after}");
    }

    #[test]
    fn trace_shape_matches_steps_and_senders() {
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 3, 1.0)
            .steps(123)
            .run();
        assert_eq!(trace.len(), 123);
        assert_eq!(trace.num_senders(), 3);
        for s in &trace.senders {
            assert_eq!(s.len(), 123);
        }
    }
}
