//! The simulation loop: synchronized discrete-time dynamics (Section 2).
//!
//! The loop is written once, as [`try_run_scenario_with`], against a
//! per-step visitor ([`StepSink`]). Two sinks cover every consumer:
//!
//! * [`TraceSink`] appends each step to trace columns and yields the full
//!   [`RunTrace`] — the historical behavior, still what
//!   [`try_run_scenario`] returns and what plotting/CSV export needs;
//! * [`MetricAccumulator`] (via [`try_run_scenario_streaming`]) folds each
//!   step straight into the axiom scores in O(senders) memory, never
//!   materializing a trajectory — the fast path for metric-only sweeps,
//!   bit-identical to evaluating the axioms on the recorded trace.

use crate::loss::{compose_loss, sample_loss_fraction, LossModel, LossProcess};
use crate::scenario::{FeedbackMode, MathMode, Scenario};
use axcc_core::axioms::streaming::{
    MetricAccumulator, MetricConfig, MetricSet, StepBlock, StepRecord,
};
use axcc_core::protocol::clamp_window;
use axcc_core::{LaneObs, RunTrace, ScenarioError, SenderTrace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;

/// Per-step visitor over the simulation loop.
///
/// `records` holds one entry per sender, in sender order, exactly the
/// values the trace path would append to that sender's columns (idle
/// senders appear with zero window and goodput so consumers see a
/// rectangular run). `total`, `rtt` and `loss` are the shared link-state
/// columns. The slice is a buffer reused across steps — sinks must copy
/// what they keep.
pub trait StepSink {
    /// Consume step `t`.
    fn on_step(&mut self, t: u64, total: f64, rtt: f64, loss: f64, records: &[StepRecord]);

    /// Consume a whole [`StepBlock`] of staged steps at once. The engine
    /// hot path delivers blocks, not single steps; the default replays
    /// each row through [`on_step`](Self::on_step) so existing sinks keep
    /// working unchanged, and sinks with a native batch ingest (the trace
    /// columns, the metric accumulators) override it to consume the
    /// block's contiguous columns directly. Overrides must be
    /// bit-identical to the default replay.
    fn on_steps(&mut self, block: &StepBlock) {
        let n = block.num_senders();
        let mut records = Vec::with_capacity(n);
        for k in 0..block.len() {
            records.clear();
            for i in 0..n {
                records.push(block.record(i, k));
            }
            self.on_step(
                (block.start_step() + k) as u64,
                block.totals()[k],
                block.rtts()[k],
                block.link_losses()[k],
                &records,
            );
        }
    }
}

/// The recording sink: builds the same [`RunTrace`] the engine always
/// produced. This (together with its packet-level counterpart) is the
/// sanctioned construction site for [`RunTrace`] — everything else goes
/// through a sink so the two evaluation paths cannot drift.
pub struct TraceSink {
    link: axcc_core::LinkParams,
    seed: u64,
    senders: Vec<SenderTrace>,
    total_col: Vec<f64>,
    rtt_col: Vec<f64>,
    loss_col: Vec<f64>,
}

impl TraceSink {
    /// A sink sized for `scenario`, capturing the metadata (link, seed,
    /// protocol names) the finished trace records.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        TraceSink {
            link: scenario.link,
            seed: scenario.seed,
            senders: scenario
                .senders
                .iter()
                .map(|s| {
                    SenderTrace::with_capacity(
                        s.protocol.name(),
                        s.protocol.loss_based(),
                        scenario.steps,
                    )
                })
                .collect(),
            total_col: Vec::with_capacity(scenario.steps),
            rtt_col: Vec::with_capacity(scenario.steps),
            loss_col: Vec::with_capacity(scenario.steps),
        }
    }

    /// The finished trace. Per-sender RTT columns stay `None`: in the
    /// synchronized fluid model every sender's RTT equals the shared link
    /// column, which [`RunTrace::sender_rtt`] resolves on read.
    pub fn into_trace(self) -> RunTrace {
        RunTrace {
            link: self.link,
            senders: self.senders,
            total_window: self.total_col,
            rtt: self.rtt_col,
            loss: self.loss_col,
            seed: self.seed,
        }
    }
}

impl StepSink for TraceSink {
    fn on_step(&mut self, _t: u64, total: f64, rtt: f64, loss: f64, records: &[StepRecord]) {
        self.total_col.push(total);
        self.rtt_col.push(rtt);
        self.loss_col.push(loss);
        for (s, r) in self.senders.iter_mut().zip(records) {
            s.window.push(r.window);
            s.loss.push(r.loss);
            s.goodput.push(r.goodput);
        }
    }

    // Column-to-column copies: the block already holds each sender's rows
    // contiguously, so recording a block is six memcpy-shaped extends.
    fn on_steps(&mut self, block: &StepBlock) {
        self.total_col.extend_from_slice(block.totals());
        self.rtt_col.extend_from_slice(block.rtts());
        self.loss_col.extend_from_slice(block.link_losses());
        for (i, s) in self.senders.iter_mut().enumerate() {
            s.window.extend_from_slice(block.windows(i));
            s.loss.extend_from_slice(block.sender_losses(i));
            s.goodput.extend_from_slice(block.goodputs(i));
        }
    }
}

impl StepSink for MetricAccumulator {
    fn on_step(&mut self, _t: u64, total: f64, rtt: f64, loss: f64, records: &[StepRecord]) {
        self.push_step(total, rtt, loss, records);
    }

    fn on_steps(&mut self, block: &StepBlock) {
        self.push_steps(block);
    }
}

impl StepSink for axcc_core::axioms::churn::ChurnAccumulator {
    fn on_step(&mut self, _t: u64, total: f64, _rtt: f64, _loss: f64, records: &[StepRecord]) {
        self.push_step(total, records);
    }

    fn on_steps(&mut self, block: &StepBlock) {
        self.push_steps(block);
    }
}

/// Struct-of-arrays per-sender state: one contiguous lane per field, so
/// the engine's per-step passes (total-window reduction, loss
/// application, goodput, protocol updates) each sweep a flat `f64` slice
/// instead of hopping across an array of structs.
#[derive(Debug, Default)]
struct SenderLanes {
    /// Current congestion windows `x_i^(t)` (idle senders hold 0.0).
    windows: Vec<f64>,
    /// Composed per-sender loss for the step in flight.
    losses: Vec<f64>,
    /// Per-sender goodput for the step in flight.
    goodputs: Vec<f64>,
    /// Running per-sender min-RTT.
    min_rtts: Vec<f64>,
    /// Requested next windows, staged before the divergence scan.
    requests: Vec<f64>,
    /// Admission flags (a sender is active iff started and not stopped).
    started: Vec<bool>,
    /// Departure flags.
    stopped: Vec<bool>,
}

fn reset_lane(v: &mut Vec<f64>, n: usize, x: f64) {
    v.clear();
    v.resize(n, x);
}

/// The engine's per-run arena: every buffer a simulation needs, owned in
/// one reusable bundle so back-to-back runs (sweep workers, the serve
/// daemon) stop paying per-run allocation. [`EngineWorkspace::new`] is
/// free — lanes size themselves lazily on first run — and a workspace can
/// be reused across runs of *different* shapes (each run re-sizes and
/// re-zeroes what it needs; the bit-identity tests cover reuse).
#[derive(Debug, Default)]
pub struct EngineWorkspace {
    lanes: SenderLanes,
    /// Indices of currently-active senders, ascending — rebuilt at every
    /// activity boundary so the step loop iterates exactly the senders
    /// that matter without per-sender flag checks.
    active: Vec<usize>,
    /// Activity-span boundaries (see `try_run_scenario_with_workspace`).
    boundaries: Vec<u64>,
    /// The staging block batched into the sink.
    block: StepBlock,
}

impl EngineWorkspace {
    /// A fresh, empty workspace (no allocation until first use).
    pub fn new() -> Self {
        EngineWorkspace::default()
    }

    /// Size every lane for an `n`-sender run and clear run state.
    fn prepare(&mut self, n: usize) {
        reset_lane(&mut self.lanes.windows, n, 0.0);
        reset_lane(&mut self.lanes.losses, n, 0.0);
        reset_lane(&mut self.lanes.goodputs, n, 0.0);
        reset_lane(&mut self.lanes.min_rtts, n, f64::INFINITY);
        reset_lane(&mut self.lanes.requests, n, 0.0);
        self.lanes.started.clear();
        self.lanes.started.resize(n, false);
        self.lanes.stopped.clear();
        self.lanes.stopped.resize(n, false);
        self.active.clear();
        self.active.reserve(n);
        self.boundaries.clear();
        self.block.reshape(n, StepBlock::DEFAULT_CAPACITY);
    }
}

thread_local! {
    /// The per-thread engine workspace backing [`try_run_scenario_with`]:
    /// one arena reused across every run this thread executes, so
    /// long-lived sweep workers allocate per-run state once. The
    /// workspace is *taken out* of the cell while a run is in flight, so
    /// a re-entrant call (a sink that itself runs a scenario) falls back
    /// to a fresh workspace instead of aliasing the busy one.
    static WORKSPACE: RefCell<EngineWorkspace> = RefCell::new(EngineWorkspace::new());
}

fn with_workspace<R>(f: impl FnOnce(&mut EngineWorkspace) -> R) -> R {
    WORKSPACE.with(|cell| {
        let mut ws = cell.replace(EngineWorkspace::new());
        let out = f(&mut ws);
        cell.replace(ws);
        out
    })
}

/// Four-accumulator chunked sum — the [`MathMode::Fast`] total-window
/// reduction. Splitting the fold across four independent accumulators
/// breaks the strict left-to-right association of `iter().sum()` (same
/// math, different rounding), which is exactly the reordering `Fast`
/// licenses; the payoff is an instruction-parallel, vectorizable
/// reduction.
fn chunked_sum(xs: &[f64]) -> f64 {
    let chunks = xs.chunks_exact(4);
    let tail = chunks.remainder();
    let mut acc = [0.0f64; 4];
    for c in chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let rest: f64 = tail.iter().sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + rest
}

/// Run a scenario to completion, feeding every step to `sink`, or return
/// a typed error for an invalid configuration or a numerically divergent
/// run (the sink then holds a partial prefix and must be discarded).
///
/// At each step `t`:
///
/// 1. senders whose start step is `t` enter with their initial windows,
///    and senders whose stop step is `t` depart — their window drops to
///    zero and stays there (churned populations; see
///    `SenderConfig::stop_at`);
/// 2. the total active window `X^(t)` determines the step's RTT
///    (equation 1) and congestion loss rate (both shared by all senders —
///    synchronized feedback);
/// 3. each active sender's wire loss is sampled and composed with the
///    congestion loss; the sender's protocol observes its window, composed
///    loss, RTT and running min-RTT, and selects the next window;
/// 4. the requested windows are checked for divergence (a NaN or infinite
///    request aborts with [`ScenarioError::NumericalDivergence`] rather
///    than emitting garbage), clamped to `[0, M]`, and become `x̄^(t+1)`.
///
/// Senders that have not yet entered (or have departed) are reported with
/// zero window and goodput so every step is rectangular.
///
/// Uses the calling thread's cached [`EngineWorkspace`];
/// [`try_run_scenario_with_workspace`] takes an explicit one.
pub fn try_run_scenario_with<S: StepSink>(
    scenario: Scenario,
    sink: &mut S,
) -> Result<(), ScenarioError> {
    with_workspace(|ws| try_run_scenario_with_workspace(scenario, sink, ws))
}

/// [`try_run_scenario_with`] against a caller-held [`EngineWorkspace`].
///
/// The hot path is organized around two refactors of the scalar loop,
/// both bit-identity-preserving (the equivalence proptests pin the new
/// engine to a verbatim copy of the scalar one):
///
/// * **activity spans** — admissions, departures and bandwidth changes
///   can only take effect at a precomputed set of boundary steps, so the
///   per-step scans are hoisted out of the inner loop entirely and the
///   active-sender set is rebuilt once per span;
/// * **lane passes** — per-sender work runs as tight passes over the
///   workspace's contiguous lanes (loss fill or sampled loss, min-RTT,
///   goodput, protocol requests, divergence scan + clamp), and finished
///   rows are staged into a [`StepBlock`] delivered to the sink in
///   batches ([`StepSink::on_steps`]).
///
/// Every f64 reduction keeps the scalar engine's exact evaluation order
/// under [`MathMode::Exact`]; [`MathMode::Fast`] substitutes the chunked
/// total and a `mul_add` goodput.
pub fn try_run_scenario_with_workspace<S: StepSink>(
    scenario: Scenario,
    sink: &mut S,
    ws: &mut EngineWorkspace,
) -> Result<(), ScenarioError> {
    scenario.validate()?;
    let Scenario {
        link,
        mut senders,
        steps,
        max_window,
        loss_model,
        seed,
        bandwidth_changes,
        feedback,
        math,
    } = scenario;

    let n = senders.len();
    let horizon = steps as u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut wire_loss = LossProcess::new(loss_model, n);

    // When no per-sender RNG draw is involved, the composed loss is one
    // shared value per step and the loss pass is a fill instead of n
    // samples. (`compose_loss` is still applied — even with wire = 0.0
    // its clamp must run for bit-identity with the sampled path.)
    let uniform_wire = match (loss_model, feedback) {
        (LossModel::None, FeedbackMode::Synchronized) => Some(0.0),
        (LossModel::Constant { rate }, FeedbackMode::Synchronized) => Some(rate),
        _ => None,
    };

    ws.prepare(n);
    let EngineWorkspace {
        lanes,
        active,
        boundaries,
        block,
    } = ws;
    let SenderLanes {
        windows,
        losses,
        goodputs,
        min_rtts,
        requests,
        started,
        stopped,
    } = lanes;

    // Activity boundaries: the only steps where the active population or
    // the link can change. The scalar engine re-checked all three every
    // step; between consecutive boundaries those checks are provably
    // no-ops, so the inner loop hoists them. Boundary 0 covers everything
    // scheduled at or before the first step; events scheduled at or past
    // the horizon never fire (exactly as in the per-step scans).
    boundaries.push(0);
    for cfg in &senders {
        if cfg.start_tick > 0 && cfg.start_tick < horizon {
            boundaries.push(cfg.start_tick);
        }
        if let Some(stop) = cfg.stop_tick {
            if stop > 0 && stop < horizon {
                boundaries.push(stop);
            }
        }
    }
    for &(at, _) in &bandwidth_changes {
        if at > 0 && at < horizon {
            boundaries.push(at);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    // With a fixed population every sender is staged every step, so the
    // block's idle-lane zeroing between flushes is skipped.
    let static_dense = senders
        .iter()
        .all(|s| s.start_tick == 0 && s.stop_tick.is_none());

    // The active link: bandwidth may change mid-run (an extension of the
    // paper's static model; see `Scenario::bandwidth_change`). Propagation
    // delay and buffer never change, so the trace's recorded link keeps
    // the correct RTT floor for validation.
    let mut active_link = link;
    let mut pending_changes = bandwidth_changes.iter().copied().peekable();

    for bi in 0..boundaries.len() {
        let span_start = boundaries[bi];
        let span_end = boundaries.get(bi + 1).copied().unwrap_or(horizon);

        // (0) scheduled link changes up to this span.
        while let Some(&(at, new_bw)) = pending_changes.peek() {
            if at > span_start {
                break;
            }
            pending_changes.next();
            active_link = axcc_core::LinkParams::new(new_bw, link.prop_delay, link.buffer);
        }

        // (1) admissions and departures due at this span, then the span's
        // active set (ascending, so RNG draw order matches the scalar
        // engine's 0..n sweep).
        for (i, cfg) in senders.iter().enumerate() {
            if !started[i] && span_start >= cfg.start_tick {
                started[i] = true;
                windows[i] = clamp_window(cfg.initial_window, max_window);
            }
            if let Some(stop) = cfg.stop_tick {
                if !stopped[i] && span_start >= stop {
                    stopped[i] = true;
                    windows[i] = 0.0;
                }
            }
        }
        active.clear();
        for i in 0..n {
            if started[i] && !stopped[i] {
                active.push(i);
            }
        }
        let dense = active.len() == n;

        // Below link capacity the step RTT sits on its `2Θ` floor and the
        // congestion-loss branch is dead, so when even the largest
        // representable total — `n` clamped windows plus summation
        // rounding headroom — cannot reach capacity, both per-step link
        // equations hoist to span constants. The robustness sweeps'
        // infinite-capacity link is the motivating case; `min_rtt()` is
        // the same `2.0 * prop_delay` expression `rtt()` floors to.
        let flat_link = (n as f64) * max_window * (1.0 + 1e-9) < active_link.capacity();
        let flat_rtt = active_link.min_rtt();

        if n == 1 && dense {
            // Single-lane fast path: the robustness-sweep shape (one
            // sender, staged every step). Statement-for-statement the
            // general body below with the lane sweeps collapsed to index
            // 0; `0.0 + w` is exactly the one-lane fold of both
            // `iter().sum()` and `chunked_sum`, so totals are
            // bit-identical in either math mode.
            for t in span_start..span_end {
                let w0 = windows[0];
                let total = 0.0 + w0;
                let (rtt, congestion_loss) = if flat_link {
                    (flat_rtt, 0.0)
                } else {
                    (active_link.rtt(total), active_link.loss_rate(total))
                };
                let loss = if let Some(wire) = uniform_wire {
                    compose_loss(congestion_loss, wire)
                } else {
                    let wire = wire_loss.sample(&mut rng, 0, w0);
                    let observed = match feedback {
                        FeedbackMode::Synchronized => congestion_loss,
                        FeedbackMode::PerPacket => {
                            sample_loss_fraction(&mut rng, w0, congestion_loss)
                        }
                    };
                    compose_loss(observed, wire)
                };
                losses[0] = loss;
                min_rtts[0] = min_rtts[0].min(rtt);
                let goodput = match math {
                    MathMode::Exact => w0 * (1.0 - loss) / rtt,
                    MathMode::Fast => w0.mul_add(-loss, w0) / rtt,
                };
                goodputs[0] = goodput;
                block.stage_shared(total, rtt, congestion_loss);
                block.stage_sender(0, w0, loss, goodput);
                let lane_obs = LaneObs {
                    tick: t,
                    rtt,
                    windows: &windows[..],
                    losses: &losses[..],
                    min_rtts: &min_rtts[..],
                };
                let requested = senders[0].protocol.next_window_lane(&lane_obs, 0);
                if !requested.is_finite() {
                    return Err(ScenarioError::NumericalDivergence {
                        step: t,
                        sender: 0,
                        context: "requested window",
                        value: requested,
                    });
                }
                windows[0] = clamp_window(requested, max_window);
                if block.advance() {
                    sink.on_steps(block);
                    block.begin(t as usize + 1);
                    if !static_dense {
                        block.zero_senders();
                    }
                }
            }
            continue;
        }

        for t in span_start..span_end {
            // (2) shared link state. Idle senders hold exactly 0.0, and
            // adding +0.0 to a non-negative partial sum is exact, so
            // summing every slot is bit-identical to filtering on the
            // active set. (A delta-incremental running total is
            // deliberately NOT used: f64 addition is non-associative, so
            // incremental updates would drift from the recorded column
            // and break the streaming path's bit-identity contract.)
            let total = match math {
                MathMode::Exact => windows.iter().sum(),
                MathMode::Fast => chunked_sum(windows),
            };
            let rtt = active_link.rtt(total);
            let congestion_loss = active_link.loss_rate(total);

            // (3) the loss pass.
            if let Some(wire) = uniform_wire {
                let loss = compose_loss(congestion_loss, wire);
                if dense {
                    losses.fill(loss);
                } else {
                    for &i in active.iter() {
                        losses[i] = loss;
                    }
                }
            } else {
                for &i in active.iter() {
                    let wire = wire_loss.sample(&mut rng, i, windows[i]);
                    let observed = match feedback {
                        FeedbackMode::Synchronized => congestion_loss,
                        FeedbackMode::PerPacket => {
                            sample_loss_fraction(&mut rng, windows[i], congestion_loss)
                        }
                    };
                    losses[i] = compose_loss(observed, wire);
                }
            }

            // min-RTT and goodput passes over the lanes.
            if dense {
                for m in min_rtts.iter_mut() {
                    *m = m.min(rtt);
                }
                match math {
                    MathMode::Exact => {
                        for i in 0..n {
                            goodputs[i] = windows[i] * (1.0 - losses[i]) / rtt;
                        }
                    }
                    MathMode::Fast => {
                        for i in 0..n {
                            goodputs[i] = windows[i].mul_add(-losses[i], windows[i]) / rtt;
                        }
                    }
                }
            } else {
                for &i in active.iter() {
                    min_rtts[i] = min_rtts[i].min(rtt);
                }
                match math {
                    MathMode::Exact => {
                        for &i in active.iter() {
                            goodputs[i] = windows[i] * (1.0 - losses[i]) / rtt;
                        }
                    }
                    MathMode::Fast => {
                        for &i in active.iter() {
                            goodputs[i] = windows[i].mul_add(-losses[i], windows[i]) / rtt;
                        }
                    }
                }
            }

            // Stage the finished row. Idle senders' columns hold staged
            // zeros (the block is zeroed between flushes when the
            // population churns), matching the scalar engine's explicit
            // zero records.
            block.stage_shared(total, rtt, congestion_loss);
            if dense {
                for i in 0..n {
                    block.stage_sender(i, windows[i], losses[i], goodputs[i]);
                }
            } else {
                for &i in active.iter() {
                    block.stage_sender(i, windows[i], losses[i], goodputs[i]);
                }
            }

            // (4) protocol updates straight off the lanes, then the
            // divergence scan + clamp. The scan reports the lowest-index
            // offender, exactly as the scalar engine's interleaved check
            // did (protocol state past the offender differs, but an
            // errored run's protocols and sink are both discarded).
            let lane_obs = LaneObs {
                tick: t,
                rtt,
                windows: &windows[..],
                losses: &losses[..],
                min_rtts: &min_rtts[..],
            };
            for &i in active.iter() {
                requests[i] = senders[i].protocol.next_window_lane(&lane_obs, i);
            }
            for &i in active.iter() {
                let requested = requests[i];
                if !requested.is_finite() {
                    return Err(ScenarioError::NumericalDivergence {
                        step: t,
                        sender: i,
                        context: "requested window",
                        value: requested,
                    });
                }
                windows[i] = clamp_window(requested, max_window);
            }

            if block.advance() {
                sink.on_steps(block);
                block.begin(t as usize + 1);
                if !static_dense {
                    block.zero_senders();
                }
            }
        }
    }
    if !block.is_empty() {
        sink.on_steps(block);
    }
    Ok(())
}

/// Run a scenario to completion, producing the full trace, or a typed
/// error for an invalid configuration or a numerically divergent run.
///
/// Thin wrapper: [`try_run_scenario_with`] driving a [`TraceSink`].
pub fn try_run_scenario(scenario: Scenario) -> Result<RunTrace, ScenarioError> {
    let max_window = scenario.max_window;
    let mut sink = TraceSink::for_scenario(&scenario);
    try_run_scenario_with(scenario, &mut sink)?;
    let trace = sink.into_trace();
    debug_assert_eq!(trace.validate(max_window), Ok(()));
    Ok(trace)
}

/// Evaluation parameters for the streaming path — the knobs the axiom
/// evaluators take as arguments on the trace path.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Fraction of the run treated as transient (`RunTrace::tail_start`).
    pub tail_fraction: f64,
    /// Minimum fast-utilization segment horizon.
    pub min_horizon: usize,
    /// Escape threshold β for the robustness accumulator.
    pub escape_beta: f64,
    /// Which metric families the accumulator maintains. Sweeps that read
    /// a known subset of scores (a robustness cell only asks
    /// "did the window escape?") restrict this so the sink skips every
    /// other family's per-block fold; [`MetricSet::ALL`] keeps the full
    /// evaluator.
    pub metrics: MetricSet,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            tail_fraction: axcc_core::axioms::DEFAULT_TAIL_FRACTION,
            min_horizon: axcc_core::axioms::fast_utilization::DEFAULT_MIN_HORIZON,
            escape_beta: 50.0,
            metrics: MetricSet::ALL,
        }
    }
}

/// The [`MetricAccumulator`] matching `scenario`'s shape: same link, step
/// count and per-sender `loss_based` flags the trace path would record.
pub fn metric_accumulator_for(scenario: &Scenario, options: &StreamOptions) -> MetricAccumulator {
    MetricAccumulator::new(&MetricConfig {
        link: scenario.link,
        steps: scenario.steps,
        loss_based: scenario
            .senders
            .iter()
            .map(|s| s.protocol.loss_based())
            .collect(),
        tail_fraction: options.tail_fraction,
        min_horizon: options.min_horizon,
        escape_beta: options.escape_beta,
        metrics: options.metrics,
    })
}

/// Run a scenario through the trace-free streaming path, returning the
/// populated accumulator. Bit-identical to running [`try_run_scenario`]
/// and evaluating the axioms on the trace, without the O(steps × senders)
/// trace allocation.
pub fn try_run_scenario_streaming(
    scenario: Scenario,
    options: &StreamOptions,
) -> Result<MetricAccumulator, ScenarioError> {
    let mut acc = metric_accumulator_for(&scenario, options);
    try_run_scenario_streaming_into(scenario, &mut acc)?;
    Ok(acc)
}

/// Like [`try_run_scenario_streaming`], but reusing a caller-held
/// accumulator (reset first) so sweep jobs running many same-shape
/// scenarios allocate it once. The accumulator must have been built for
/// this scenario's shape (same sender count and step count).
pub fn try_run_scenario_streaming_into(
    scenario: Scenario,
    acc: &mut MetricAccumulator,
) -> Result<(), ScenarioError> {
    debug_assert_eq!(acc.num_senders(), scenario.senders.len());
    debug_assert_eq!(acc.steps_expected(), scenario.steps);
    acc.reset();
    let (steps, n) = (scenario.steps, scenario.senders.len());
    try_run_scenario_with(scenario, acc)?;
    crate::stats::record_streamed(steps, n);
    Ok(())
}

/// Run a scenario to completion, producing the full trace.
///
/// Legacy panicking wrapper over [`try_run_scenario`]: the panic message
/// is the [`ScenarioError`] display string, preserving the historical
/// messages ("scenario needs at least one sender", …).
///
/// # Panics
///
/// Panics on an invalid scenario or a numerically divergent run.
pub fn run_scenario(scenario: Scenario) -> RunTrace {
    // tidy-allow: panic-freedom — documented panicking façade over try_run_scenario; fallible callers use the try_ path
    try_run_scenario(scenario).unwrap_or_else(|e| panic!("{e}"))
}

/// Streaming counterpart of [`run_scenario`]: run the scenario and fold it
/// straight into a fresh [`MetricAccumulator`].
///
/// # Panics
///
/// Panics on an invalid scenario or a numerically divergent run.
pub fn run_scenario_streaming(scenario: Scenario, options: &StreamOptions) -> MetricAccumulator {
    // tidy-allow: panic-freedom — documented panicking façade over try_run_scenario_streaming; fallible callers use the try_ path
    try_run_scenario_streaming(scenario, options).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_scenario_streaming`], but reusing a caller-held accumulator
/// (see [`try_run_scenario_streaming_into`]).
///
/// # Panics
///
/// Panics on an invalid scenario or a numerically divergent run.
pub fn run_scenario_streaming_into(scenario: Scenario, acc: &mut MetricAccumulator) {
    // tidy-allow: panic-freedom — documented panicking façade over try_run_scenario_streaming_into; fallible callers use the try_ path
    try_run_scenario_streaming_into(scenario, acc).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use crate::scenario::SenderConfig;
    use axcc_core::{LinkParams, Observation};
    use axcc_protocols::{Aimd, Mimd, RobustAimd, Vegas};

    /// C = 100 MSS, τ = 20 MSS.
    fn link() -> LinkParams {
        LinkParams::new(1000.0, 0.05, 20.0)
    }

    /// A verbatim copy of the pre-SoA scalar engine: per-step admission,
    /// departure and bandwidth scans, array-of-records emission, one
    /// `on_step` per step. This is the bit-identity reference the lane
    /// engine is pinned against ([`MathMode::Exact`] only — the reference
    /// predates `Fast`).
    fn run_reference<S: StepSink>(scenario: Scenario, sink: &mut S) -> Result<(), ScenarioError> {
        scenario.validate()?;
        let Scenario {
            link,
            mut senders,
            steps,
            max_window,
            loss_model,
            seed,
            bandwidth_changes,
            feedback,
            math: _,
        } = scenario;

        let mut active_link = link;
        let mut pending_changes = bandwidth_changes.into_iter().peekable();

        let n = senders.len();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut wire_loss = LossProcess::new(loss_model, n);

        let mut windows: Vec<f64> = vec![0.0; n];
        let mut started: Vec<bool> = vec![false; n];
        let mut stopped: Vec<bool> = vec![false; n];
        let mut min_rtts: Vec<f64> = vec![f64::INFINITY; n];
        let mut records: Vec<StepRecord> = Vec::with_capacity(n);

        let mut pending_admissions = n;
        let mut pending_departures = senders.iter().filter(|s| s.stop_tick.is_some()).count();

        for t in 0..steps as u64 {
            while let Some(&(at, new_bw)) = pending_changes.peek() {
                if at > t {
                    break;
                }
                pending_changes.next();
                active_link = axcc_core::LinkParams::new(new_bw, link.prop_delay, link.buffer);
            }

            if pending_admissions > 0 {
                for (i, cfg) in senders.iter().enumerate() {
                    if !started[i] && t >= cfg.start_tick {
                        started[i] = true;
                        windows[i] = clamp_window(cfg.initial_window, max_window);
                        pending_admissions -= 1;
                    }
                }
            }
            if pending_departures > 0 {
                for (i, cfg) in senders.iter().enumerate() {
                    if let Some(stop) = cfg.stop_tick {
                        if !stopped[i] && t >= stop {
                            stopped[i] = true;
                            windows[i] = 0.0;
                            pending_departures -= 1;
                        }
                    }
                }
            }

            let total: f64 = windows.iter().sum();
            let rtt = active_link.rtt(total);
            let congestion_loss = active_link.loss_rate(total);

            records.clear();
            for i in 0..n {
                if !started[i] || stopped[i] {
                    records.push(StepRecord {
                        window: 0.0,
                        loss: 0.0,
                        rtt,
                        goodput: 0.0,
                    });
                    continue;
                }
                let wire = wire_loss.sample(&mut rng, i, windows[i]);
                let observed_congestion = match feedback {
                    FeedbackMode::Synchronized => congestion_loss,
                    FeedbackMode::PerPacket => {
                        sample_loss_fraction(&mut rng, windows[i], congestion_loss)
                    }
                };
                let loss = compose_loss(observed_congestion, wire);
                min_rtts[i] = min_rtts[i].min(rtt);

                let w = windows[i];
                records.push(StepRecord {
                    window: w,
                    loss,
                    rtt,
                    goodput: w * (1.0 - loss) / rtt,
                });

                let obs = Observation {
                    tick: t,
                    window: w,
                    loss_rate: loss,
                    rtt,
                    min_rtt: min_rtts[i],
                };
                let requested = senders[i].protocol.next_window(&obs);
                if !requested.is_finite() {
                    return Err(ScenarioError::NumericalDivergence {
                        step: t,
                        sender: i,
                        context: "requested window",
                        value: requested,
                    });
                }
                windows[i] = clamp_window(requested, max_window);
            }

            sink.on_step(t, total, rtt, congestion_loss, &records);
        }
        Ok(())
    }

    /// Run `build()` through both engines and require bit-identical
    /// traces (or identical typed errors).
    fn assert_engines_match(build: impl Fn() -> Scenario) {
        let sc = build();
        let mut reference = TraceSink::for_scenario(&sc);
        let ra = run_reference(sc, &mut reference);
        let sc = build();
        let mut lanes = TraceSink::for_scenario(&sc);
        let rb = try_run_scenario_with(sc, &mut lanes);
        match (ra, rb) {
            (Ok(()), Ok(())) => {
                let a = reference.into_trace();
                let b = lanes.into_trace();
                assert_eq!(a, b, "lane engine diverged from scalar reference");
            }
            (Err(ea), Err(eb)) => assert_eq!(format!("{ea:?}"), format!("{eb:?}")),
            (ra, rb) => panic!("engines disagree on outcome: {ra:?} vs {rb:?}"),
        }
    }

    #[test]
    fn single_reno_fills_the_pipe() {
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(1000)
            .run();
        trace.validate(axcc_core::protocol::MAX_WINDOW).unwrap();
        let tail = trace.tail_start(0.5);
        // Sawtooth between 0.5·(C+τ) = 60 and C+τ = 120: mean utilization
        // well above the worst-case b = 0.5.
        let eff = axcc_core::axioms::efficiency::measured_efficiency(&trace, tail);
        assert!(eff >= 0.5, "efficiency {eff}");
        let mean = axcc_core::axioms::efficiency::mean_utilization(&trace, tail);
        assert!(mean > 0.8, "mean utilization {mean}");
    }

    #[test]
    fn reno_sawtooth_is_periodic_and_lossy_at_peaks() {
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .steps(600)
            .run();
        let tail = trace.tail_start(0.5);
        // Loss recurs (Claim 1: a fast-utilizing loss-based protocol cannot
        // be 0-loss)…
        let events: usize = trace.loss[tail..].iter().filter(|&&l| l > 0.0).count();
        assert!(events >= 2, "loss events in tail: {events}");
        // …but single-step loss is bounded by the overshoot of one +1 step.
        let max_loss = trace.loss[tail..].iter().copied().fold(0.0, f64::max);
        assert!(max_loss < 0.05, "max loss {max_loss}");
    }

    #[test]
    fn two_renos_converge_to_fairness_from_skewed_start() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(100.0))
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .steps(3000)
            .run();
        let tail = trace.tail_start(0.5);
        let f = axcc_core::axioms::fairness::measured_fairness(&trace, tail);
        assert!(f > 0.8, "fairness {f}");
    }

    #[test]
    fn two_mimds_preserve_imbalance() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(40.0))
            .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(10.0))
            .steps(2000)
            .run();
        let tail = trace.tail_start(0.5);
        let f = axcc_core::axioms::fairness::measured_fairness(&trace, tail);
        // Ratio stays 1:4 — far from fair (Table 1's <0> fairness).
        assert!(f < 0.3, "fairness {f}");
    }

    #[test]
    fn late_joiner_enters_at_start_tick() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .sender(
                SenderConfig::new(Box::new(Aimd::reno()))
                    .initial_window(1.0)
                    .start_at(200),
            )
            .steps(400)
            .run();
        // Before step 200 the second sender is idle.
        assert!(trace.senders[1].window[..200].iter().all(|&w| w == 0.0));
        assert_eq!(trace.senders[1].window[200], 1.0);
        assert!(trace.senders[1].window[399] > 1.0);
    }

    #[test]
    fn departing_sender_holds_zero_window_after_stop() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .sender(
                SenderConfig::new(Box::new(Aimd::reno()))
                    .initial_window(1.0)
                    .start_at(100)
                    .stop_at(300),
            )
            .steps(500)
            .run();
        // Active exactly in [100, 300).
        assert!(trace.senders[1].window[..100].iter().all(|&w| w == 0.0));
        assert_eq!(trace.senders[1].window[100], 1.0);
        assert!(trace.senders[1].window[150] > 1.0);
        assert!(trace.senders[1].window[300..].iter().all(|&w| w == 0.0));
        assert!(trace.senders[1].goodput[300..].iter().all(|&g| g == 0.0));
        // The survivor reclaims the vacated capacity.
        let before = axcc_core::trace::mean(&trace.senders[0].window[250..300]);
        let after = axcc_core::trace::mean(&trace.senders[0].window[450..]);
        assert!(after > before, "after {after} vs before {before}");
    }

    #[test]
    fn departed_sender_never_contributes_to_the_total() {
        let trace = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
            .sender(
                SenderConfig::new(Box::new(Aimd::reno()))
                    .initial_window(50.0)
                    .stop_at(50),
            )
            .steps(200)
            .run();
        for t in 50..200 {
            assert_eq!(
                trace.total_window[t].to_bits(),
                trace.senders[0].window[t].to_bits(),
                "step {t}"
            );
        }
    }

    #[test]
    fn stop_at_or_before_start_is_rejected() {
        let err = Scenario::new(link())
            .sender(
                SenderConfig::new(Box::new(Aimd::reno()))
                    .start_at(100)
                    .stop_at(100),
            )
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidSender {
                field: "stop_tick",
                ..
            }
        ));
    }

    #[test]
    fn churn_builder_expands_the_plan_into_senders() {
        let plan = axcc_topo::ChurnPlan::poisson(0.02, 200.0).seed(9);
        let sc = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 2, 1.0)
            .steps(1000)
            .churn(&plan, &Aimd::reno())
            .unwrap();
        let n_churned = sc.senders.len() - 2;
        let expected = plan.try_expand(1000).unwrap();
        assert_eq!(n_churned, expected.len());
        assert!(n_churned > 0, "plan produced no arrivals at this scale");
        let trace = sc.run();
        // Every churned sender is idle outside its interval.
        for (k, iv) in expected.iter().enumerate() {
            let s = &trace.senders[2 + k];
            for t in 0..trace.len() as u64 {
                if !iv.contains(t) {
                    assert_eq!(s.window[t as usize], 0.0, "sender {k} step {t}");
                }
            }
        }
    }

    #[test]
    fn churned_runs_are_deterministic_per_seed() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 1.0)
                .steps(800)
                .churn(
                    &axcc_topo::ChurnPlan::poisson(0.01, 150.0).seed(seed),
                    &Aimd::reno(),
                )
                .unwrap()
                .run()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }

    #[test]
    fn deterministic_without_wire_loss() {
        let run = || {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 3, 2.0)
                .steps(500)
                .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deterministic_per_seed_with_wire_loss() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 2.0)
                .wire_loss(LossModel::Bernoulli { rate: 0.01 })
                .seed(seed)
                .steps(500)
                .run()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn deterministic_per_seed_with_bursty_loss() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 2.0)
                .wire_loss(LossModel::bursty(0.01, 8.0, 0.2))
                .seed(seed)
                .steps(500)
                .run()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn bursty_loss_reaches_the_senders() {
        // The composed per-sender loss column must show wire loss above
        // the congestion floor in bad-state steps.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .wire_loss(LossModel::bursty(0.02, 8.0, 0.2))
            .seed(3)
            .steps(1000)
            .run();
        let lossy = trace.senders[0].loss.iter().filter(|&&l| l >= 0.19).count();
        assert!(lossy > 10, "bad-state steps observed: {lossy}");
    }

    #[test]
    fn robustness_scenario_robust_aimd_escapes_reno_collapses() {
        // Metric VI: infinite capacity (huge link), constant 0.5% loss.
        let big = LinkParams::new(1.0e9, 0.05, 1.0e9);
        let run = |p: Box<dyn axcc_core::Protocol>| {
            Scenario::new(big)
                .sender(SenderConfig::new(p).initial_window(10.0))
                .wire_loss(LossModel::Constant { rate: 0.005 })
                .steps(2000)
                .run()
        };
        let robust = run(Box::new(RobustAimd::table2()));
        let reno = run(Box::new(Aimd::reno()));
        let r_final = *robust.senders[0].window.last().unwrap();
        let t_final = *reno.senders[0].window.last().unwrap();
        // Robust-AIMD climbs ~1 MSS/step; Reno halves every step.
        assert!(r_final > 1000.0, "robust final {r_final}");
        assert!(t_final < 2.0, "reno final {t_final}");
    }

    #[test]
    fn vegas_holds_rtt_near_floor() {
        let trace = Scenario::new(link())
            .homogeneous(&Vegas::classic(), 2, 1.0)
            .steps(1500)
            .run();
        let tail = trace.tail_start(0.5);
        let inflation = axcc_core::axioms::latency::measured_latency_inflation(&trace, tail);
        // 2 senders × β = 4 packets of standing queue over C = 100:
        // inflation ≈ 8% worst case.
        assert!(inflation < 0.12, "latency inflation {inflation}");
        // And no loss at all in the tail.
        assert!(axcc_core::axioms::loss_avoidance::is_zero_loss(
            &trace, tail
        ));
    }

    #[test]
    fn max_window_is_respected() {
        let trace = Scenario::new(link())
            .homogeneous(&Mimd::scalable(), 1, 1.0)
            .max_window(50.0)
            .steps(300)
            .run();
        assert!(trace.senders[0].window.iter().all(|&w| w <= 50.0));
        trace.validate(50.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_scenario_panics() {
        Scenario::new(link()).run();
    }

    /// A pathological protocol whose window arithmetic blows up after a
    /// set number of steps — exercises the engine's divergence guard.
    #[derive(Debug, Clone)]
    struct DivergeAfter {
        remaining: u64,
        emit: f64,
    }

    impl axcc_core::Protocol for DivergeAfter {
        fn name(&self) -> String {
            "DivergeAfter".into()
        }
        fn next_window(&mut self, obs: &Observation) -> f64 {
            if self.remaining == 0 {
                self.emit
            } else {
                self.remaining -= 1;
                obs.window + 1.0
            }
        }
        fn loss_based(&self) -> bool {
            true
        }
        fn reset(&mut self) {}
        fn clone_box(&self) -> Box<dyn axcc_core::Protocol> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn nan_window_is_caught_as_numerical_divergence() {
        let err = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 5,
                emit: f64::NAN,
            })))
            .steps(100)
            .try_run()
            .unwrap_err();
        match err {
            ScenarioError::NumericalDivergence {
                step,
                sender,
                context,
                value,
            } => {
                assert_eq!(step, 5);
                assert_eq!(sender, 0);
                assert_eq!(context, "requested window");
                assert!(value.is_nan());
            }
            other => panic!("expected NumericalDivergence, got {other:?}"),
        }
    }

    #[test]
    fn infinite_window_is_caught_as_numerical_divergence() {
        let err = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 0,
                emit: f64::INFINITY,
            })))
            .steps(10)
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::NumericalDivergence {
                step: 0,
                sender: 0,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "numerical divergence")]
    fn run_panics_on_divergence_with_diagnostic_message() {
        Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 2,
                emit: f64::NAN,
            })))
            .steps(10)
            .run();
    }

    #[test]
    fn per_packet_feedback_breaks_mimd_ratio_preservation() {
        // Under the paper's synchronized feedback, two MIMD senders keep
        // their initial 4:1 imbalance forever. Under per-packet
        // (unsynchronized) feedback — the §6 extension — the larger
        // sender statistically sees loss more often and the pair drifts
        // towards fairness.
        let run = |mode: FeedbackMode| {
            let trace = Scenario::new(link())
                .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(40.0))
                .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(10.0))
                .feedback(mode)
                .seed(5)
                .steps(4000)
                .run();
            let tail = trace.tail_start(0.5);
            axcc_core::axioms::fairness::measured_fairness(&trace, tail)
        };
        let sync = run(FeedbackMode::Synchronized);
        let unsync = run(FeedbackMode::PerPacket);
        assert!(sync < 0.3, "synchronized fairness {sync}");
        assert!(
            unsync > sync + 0.2,
            "unsynchronized {unsync} should improve on synchronized {sync}"
        );
    }

    #[test]
    fn per_packet_feedback_is_seeded() {
        let run = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 2.0)
                .feedback(FeedbackMode::PerPacket)
                .seed(seed)
                .steps(400)
                .run()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).senders[0].window, run(2).senders[0].window);
    }

    #[test]
    fn bandwidth_change_moves_the_operating_point() {
        // Halve the bandwidth mid-run: C drops 100 → 50, so the Reno
        // sawtooth re-converges around the smaller loss threshold.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .bandwidth_change(600, 500.0)
            .steps(1200)
            .run();
        let before = axcc_core::trace::mean(&trace.total_window[400..600]);
        let after = axcc_core::trace::mean(&trace.total_window[1000..1200]);
        // Before: sawtooth in [60, 120] (mean ≈ 90); after: C = 50,
        // threshold 70, sawtooth in [35, 70] (mean ≈ 52).
        assert!(before > 80.0, "before {before}");
        assert!(after < 65.0, "after {after}");
        assert!(after > 30.0, "after {after}");
    }

    #[test]
    fn bandwidth_increase_is_reclaimed() {
        // Double the bandwidth at step 500; the sender must grow into the
        // new capacity (this is what the responsiveness extension metric
        // measures).
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .bandwidth_change(500, 2000.0)
            .steps(1500)
            .run();
        let tail_mean = axcc_core::trace::mean(&trace.total_window[1200..]);
        // New C = 200, threshold 220: the sawtooth mean should exceed the
        // old threshold of 120.
        assert!(tail_mean > 140.0, "tail mean {tail_mean}");
    }

    #[test]
    fn outage_collapses_goodput_then_recovers() {
        // A 100-step outage: total goodput during the blackout is a
        // trickle; after recovery the sender re-fills the pipe.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 1, 1.0)
            .outage(500, 600)
            .steps(1500)
            .run();
        let during = axcc_core::trace::mean(&trace.senders[0].goodput[520..600]);
        let after = axcc_core::trace::mean(&trace.senders[0].goodput[1200..]);
        // During the outage the residual bandwidth (and the ballooned RTT)
        // cap goodput at a trickle — the buffer still holds a standing
        // window, so the *window* barely moves, but deliveries stop…
        assert!(during < 1.0, "mean goodput during outage {during}");
        // …and afterwards the sawtooth refills the nominal 1000 MSS/s pipe.
        assert!(after > 500.0, "mean goodput after recovery {after}");
    }

    #[test]
    fn trace_shape_matches_steps_and_senders() {
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 3, 1.0)
            .steps(123)
            .run();
        assert_eq!(trace.len(), 123);
        assert_eq!(trace.num_senders(), 3);
        for s in &trace.senders {
            assert_eq!(s.len(), 123);
        }
    }

    #[test]
    fn fluid_traces_share_the_rtt_column() {
        // Dedup satellite: the fluid engine records no per-sender RTT
        // copies; readers resolve through the shared column.
        let trace = Scenario::new(link())
            .homogeneous(&Aimd::reno(), 3, 1.0)
            .steps(50)
            .run();
        for (i, s) in trace.senders.iter().enumerate() {
            assert!(s.rtt.is_none(), "sender {i} holds a redundant RTT copy");
            assert_eq!(trace.sender_rtt(i), &trace.rtt[..]);
        }
    }

    /// The two sinks over one loop: streaming scores must equal the trace
    /// path's bit-for-bit.
    fn assert_streaming_matches(build: impl Fn() -> Scenario, opts: StreamOptions) {
        use axcc_core::axioms::{
            convergence, efficiency, fairness, fast_utilization, latency, loss_avoidance,
            robustness,
        };
        let trace = build().try_run().unwrap();
        let acc = try_run_scenario_streaming(build(), &opts).unwrap();
        let tail = trace.tail_start(opts.tail_fraction);
        assert_eq!(
            acc.measured_efficiency().to_bits(),
            efficiency::measured_efficiency(&trace, tail).to_bits()
        );
        assert_eq!(
            acc.mean_utilization().to_bits(),
            efficiency::mean_utilization(&trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_loss_bound().to_bits(),
            loss_avoidance::measured_loss_bound(&trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_latency_inflation().to_bits(),
            latency::measured_latency_inflation(&trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_fairness().to_bits(),
            fairness::measured_fairness(&trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_convergence().to_bits(),
            convergence::measured_convergence(&trace, tail).to_bits()
        );
        for (i, s) in trace.senders.iter().enumerate() {
            assert_eq!(
                acc.measured_fast_utilization(i).map(f64::to_bits),
                fast_utilization::measured_fast_utilization(
                    s,
                    trace.sender_rtt(i),
                    tail,
                    opts.min_horizon
                )
                .map(f64::to_bits)
            );
            assert_eq!(
                acc.window_escapes(i, 0.2),
                robustness::window_escapes(s, opts.escape_beta, 0.2)
            );
        }
    }

    #[test]
    fn streaming_matches_trace_for_reno_pair() {
        assert_streaming_matches(
            || {
                Scenario::new(link())
                    .homogeneous(&Aimd::reno(), 2, 1.0)
                    .steps(800)
            },
            StreamOptions::default(),
        );
    }

    #[test]
    fn streaming_matches_trace_with_wire_loss_and_late_joiner() {
        assert_streaming_matches(
            || {
                Scenario::new(link())
                    .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0))
                    .sender(
                        SenderConfig::new(Box::new(Vegas::classic()))
                            .initial_window(1.0)
                            .start_at(150),
                    )
                    .wire_loss(LossModel::bursty(0.01, 4.0, 0.2))
                    .seed(11)
                    .steps(600)
            },
            StreamOptions::default(),
        );
    }

    #[test]
    fn streaming_matches_trace_with_bandwidth_change_and_per_packet_feedback() {
        assert_streaming_matches(
            || {
                Scenario::new(link())
                    .homogeneous(&Mimd::scalable(), 2, 4.0)
                    .bandwidth_change(200, 500.0)
                    .feedback(FeedbackMode::PerPacket)
                    .seed(3)
                    .steps(500)
            },
            StreamOptions {
                tail_fraction: 0.25,
                ..StreamOptions::default()
            },
        );
    }

    #[test]
    fn streaming_matches_trace_with_departures_and_churn() {
        assert_streaming_matches(
            || {
                Scenario::new(link())
                    .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0))
                    .sender(
                        SenderConfig::new(Box::new(Aimd::reno()))
                            .initial_window(1.0)
                            .start_at(100)
                            .stop_at(400),
                    )
                    .steps(600)
                    .churn(
                        &axcc_topo::ChurnPlan::poisson(0.01, 120.0).seed(2),
                        &Aimd::reno(),
                    )
                    .unwrap()
            },
            StreamOptions::default(),
        );
    }

    #[test]
    fn churn_accumulator_streams_bit_identically_to_the_trace() {
        use axcc_core::axioms::churn::{self, ChurnAccumulator, ChurnConfig};
        let plan = axcc_topo::ChurnPlan::poisson(0.015, 150.0).seed(6);
        let steps = 800usize;
        let base = 2usize;
        let build = || {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), base, 1.0)
                .steps(steps)
                .churn(&plan, &Aimd::reno())
                .unwrap()
        };
        let intervals = plan.try_expand(steps as u64).unwrap();
        let arrivals: Vec<u64> = intervals.iter().map(|iv| iv.start).collect();
        let mut boundaries: Vec<usize> = intervals
            .iter()
            .flat_map(|iv| [iv.start as usize, iv.stop as usize])
            .collect();
        boundaries.sort_unstable();
        let mut activity: Vec<(u64, u64)> = vec![(0, steps as u64); base];
        activity.extend(intervals.iter().map(|iv| (iv.start, iv.stop)));
        let cfg = ChurnConfig {
            capacity: link().capacity(),
            steps,
            settle_threshold: 0.8 * link().capacity(),
            arrivals: arrivals.clone(),
            boundaries: boundaries.clone(),
            activity: activity.clone(),
        };

        // Streaming: drive the ChurnAccumulator straight off the loop.
        let mut acc = ChurnAccumulator::new(&cfg, base + intervals.len());
        try_run_scenario_with(build(), &mut acc).unwrap();

        // Traced: record, then evaluate the slice forms.
        let trace = build().try_run().unwrap();
        let goodputs: Vec<&[f64]> = trace.senders.iter().map(|s| s.goodput.as_slice()).collect();
        assert_eq!(
            acc.mean_settle_after_arrival().to_bits(),
            churn::mean_settle_after_arrival(&trace.total_window, &arrivals, cfg.settle_threshold)
                .to_bits()
        );
        assert_eq!(
            acc.coexistence_fairness().to_bits(),
            churn::coexistence_fairness(&goodputs, &boundaries, steps).to_bits()
        );
        assert_eq!(
            acc.utilization_under_churn().to_bits(),
            churn::utilization_under_churn(&trace.total_window, cfg.capacity, &activity).to_bits()
        );
    }

    #[test]
    fn streaming_into_reuses_one_accumulator_across_runs() {
        let build = |seed| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 1.0)
                .wire_loss(LossModel::Bernoulli { rate: 0.005 })
                .seed(seed)
                .steps(400)
        };
        let opts = StreamOptions::default();
        let mut acc = metric_accumulator_for(&build(1), &opts);
        let mut scores = Vec::new();
        for seed in [1, 2, 1] {
            try_run_scenario_streaming_into(build(seed), &mut acc).unwrap();
            scores.push(acc.measured_efficiency().to_bits());
        }
        // Same seed ⇒ same score through the reused accumulator; the
        // middle run (different seed) must not leak into the third.
        assert_eq!(scores[0], scores[2]);
        let fresh = try_run_scenario_streaming(build(1), &opts).unwrap();
        assert_eq!(scores[2], fresh.measured_efficiency().to_bits());
    }

    #[test]
    fn streaming_propagates_divergence_errors() {
        let scenario = Scenario::new(link())
            .sender(SenderConfig::new(Box::new(DivergeAfter {
                remaining: 5,
                emit: f64::NAN,
            })))
            .steps(100);
        let err = try_run_scenario_streaming(scenario, &StreamOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::NumericalDivergence { step: 5, .. }
        ));
    }

    #[test]
    fn lane_engine_matches_reference_on_canonical_shapes() {
        // The named scenarios every other engine test leans on, pinned
        // against the scalar reference bit-for-bit.
        assert_engines_match(|| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 2, 1.0)
                .steps(600)
        });
        assert_engines_match(|| {
            Scenario::new(link())
                .sender(SenderConfig::new(Box::new(Mimd::scalable())).initial_window(40.0))
                .sender(SenderConfig::new(Box::new(Vegas::classic())).initial_window(10.0))
                .wire_loss(LossModel::bursty(0.01, 6.0, 0.2))
                .seed(11)
                .steps(500)
        });
        assert_engines_match(|| {
            Scenario::new(link())
                .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(10.0))
                .sender(
                    SenderConfig::new(Box::new(Aimd::reno()))
                        .initial_window(1.0)
                        .start_at(100)
                        .stop_at(400),
                )
                .bandwidth_change(250, 500.0)
                .feedback(FeedbackMode::PerPacket)
                .seed(7)
                .steps(600)
        });
    }

    #[test]
    fn lane_engine_matches_reference_with_events_at_and_past_the_horizon() {
        // Admissions, departures and bandwidth changes scheduled at or
        // past the last step must never fire in either engine (they are
        // not activity boundaries).
        assert_engines_match(|| {
            Scenario::new(link())
                .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
                .sender(
                    SenderConfig::new(Box::new(Aimd::reno()))
                        .initial_window(5.0)
                        .start_at(100),
                )
                .sender(
                    SenderConfig::new(Box::new(Aimd::reno()))
                        .initial_window(5.0)
                        .stop_at(99),
                )
                .sender(
                    SenderConfig::new(Box::new(Aimd::reno()))
                        .initial_window(5.0)
                        .stop_at(1000),
                )
                .bandwidth_change(100, 500.0)
                .bandwidth_change(4000, 2000.0)
                .steps(100)
        });
    }

    #[test]
    fn lane_engine_matches_reference_on_divergent_runs() {
        assert_engines_match(|| {
            Scenario::new(link())
                .sender(SenderConfig::new(Box::new(Aimd::reno())).initial_window(1.0))
                .sender(SenderConfig::new(Box::new(DivergeAfter {
                    remaining: 17,
                    emit: f64::NAN,
                })))
                .steps(100)
        });
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation_across_shapes() {
        // One workspace, back-to-back runs of *different* shapes (sender
        // count, churn, loss model): every run must equal the same run on
        // a fresh workspace.
        let shapes: Vec<Box<dyn Fn() -> Scenario>> = vec![
            Box::new(|| {
                Scenario::new(link())
                    .homogeneous(&Aimd::reno(), 3, 1.0)
                    .steps(400)
            }),
            Box::new(|| {
                Scenario::new(link())
                    .homogeneous(&Mimd::scalable(), 1, 4.0)
                    .wire_loss(LossModel::Bernoulli { rate: 0.01 })
                    .seed(5)
                    .steps(273)
            }),
            Box::new(|| {
                Scenario::new(link())
                    .homogeneous(&Aimd::reno(), 2, 1.0)
                    .steps(500)
                    .churn(
                        &axcc_topo::ChurnPlan::poisson(0.01, 120.0).seed(3),
                        &Aimd::reno(),
                    )
                    .unwrap()
            }),
            Box::new(|| {
                Scenario::new(link())
                    .homogeneous(&Aimd::reno(), 3, 1.0)
                    .steps(400)
            }),
        ];
        let mut shared = EngineWorkspace::new();
        for build in &shapes {
            let mut with_shared = TraceSink::for_scenario(&build());
            try_run_scenario_with_workspace(build(), &mut with_shared, &mut shared).unwrap();
            let mut with_fresh = TraceSink::for_scenario(&build());
            try_run_scenario_with_workspace(build(), &mut with_fresh, &mut EngineWorkspace::new())
                .unwrap();
            assert_eq!(with_shared.into_trace(), with_fresh.into_trace());
        }
    }

    #[test]
    fn fast_math_stays_close_to_exact() {
        // Fast mode licenses reassociation, not different math: scores
        // track the exact path to ~1e-9 relative on a well-conditioned
        // run (bit-identity is deliberately NOT asserted).
        let build = |mode| {
            Scenario::new(link())
                .homogeneous(&Aimd::reno(), 5, 1.0)
                .math(mode)
                .steps(2000)
        };
        let exact = build(MathMode::Exact).try_run().unwrap();
        let fast = build(MathMode::Fast).try_run().unwrap();
        assert_eq!(exact.len(), fast.len());
        for (a, b) in exact.total_window.iter().zip(&fast.total_window) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
        let tail = exact.tail_start(0.5);
        let ea = axcc_core::axioms::efficiency::measured_efficiency(&exact, tail);
        let eb = axcc_core::axioms::efficiency::measured_efficiency(&fast, tail);
        assert!((ea - eb).abs() < 1e-6, "{ea} vs {eb}");
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        struct Params {
            n: usize,
            steps: usize,
            proto: u8,
            initial: f64,
            loss_sel: u8,
            seed: u64,
            per_packet: bool,
            shape: u8,
        }

        fn arb_params() -> impl Strategy<Value = Params> {
            (
                1usize..5,
                40usize..220,
                0u8..4,
                0.5f64..60.0,
                0u8..4,
                any::<u64>(),
                any::<bool>(),
                0u8..4,
            )
                .prop_map(
                    |(n, steps, proto, initial, loss_sel, seed, per_packet, shape)| Params {
                        n,
                        steps,
                        proto,
                        initial,
                        loss_sel,
                        seed,
                        per_packet,
                        shape,
                    },
                )
        }

        fn build(p: &Params) -> Scenario {
            let proto: Box<dyn axcc_core::Protocol> = match p.proto {
                0 => Box::new(Aimd::reno()),
                1 => Box::new(Mimd::scalable()),
                2 => Box::new(Vegas::classic()),
                _ => Box::new(RobustAimd::table2()),
            };
            let steps = p.steps as u64;
            let mut sc = Scenario::new(link()).seed(p.seed).steps(p.steps);
            for k in 0..p.n {
                let mut cfg =
                    SenderConfig::new(proto.clone_box()).initial_window(p.initial + 3.0 * k as f64);
                // Shape 1: every other sender churns in and out mid-run.
                if p.shape == 1 && k % 2 == 1 {
                    cfg = cfg
                        .start_at(steps / 4)
                        .stop_at((3 * steps / 4).max(steps / 4 + 1));
                }
                sc = sc.sender(cfg);
            }
            sc = match p.loss_sel {
                0 => sc,
                1 => sc.wire_loss(LossModel::Constant { rate: 0.01 }),
                2 => sc.wire_loss(LossModel::Bernoulli { rate: 0.02 }),
                _ => sc.wire_loss(LossModel::bursty(0.01, 6.0, 0.25)),
            };
            if p.per_packet {
                sc = sc.feedback(FeedbackMode::PerPacket);
            }
            match p.shape {
                2 => {
                    sc = sc
                        .bandwidth_change(steps / 3, 500.0)
                        .bandwidth_change(2 * steps / 3, 1500.0)
                }
                3 => {
                    sc = sc
                        .churn(
                            &axcc_topo::ChurnPlan::poisson(0.02, p.steps as f64 / 4.0)
                                .seed(p.seed ^ 1),
                            &Aimd::reno(),
                        )
                        .unwrap()
                }
                _ => {}
            }
            sc
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The SoA lane engine is bit-identical to the scalar
            /// reference over random scenarios: protocols × loss models ×
            /// feedback modes × staggered/churned populations × bandwidth
            /// schedules.
            #[test]
            fn lane_engine_matches_scalar_reference(p in arb_params()) {
                assert_engines_match(|| build(&p));
            }
        }
    }
}
