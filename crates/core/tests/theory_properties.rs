//! Property tests for the theory layer: the closed forms of Table 1, the
//! theorem bounds, and the feasibility checker must satisfy their
//! structural relations for *arbitrary* in-domain parameters.

#![allow(clippy::float_cmp)] // exact comparisons are deliberate in tests
use axcc_core::theory::feasibility::{infeasibilities_loss_based, is_consistent_loss_based};
use axcc_core::theory::theorems::{
    theorem1_efficiency_lower_bound, theorem2_friendliness_upper_bound,
    theorem3_friendliness_upper_bound,
};
use axcc_core::theory::ProtocolSpec;
use proptest::prelude::*;

fn arb_aimd() -> impl Strategy<Value = ProtocolSpec> {
    (0.1f64..5.0, 0.05f64..0.95).prop_map(|(a, b)| ProtocolSpec::Aimd { a, b })
}

fn arb_spec() -> impl Strategy<Value = ProtocolSpec> {
    prop_oneof![
        arb_aimd(),
        (1.001f64..2.0, 0.05f64..0.95).prop_map(|(a, b)| ProtocolSpec::Mimd { a, b }),
        (0.1f64..3.0, 0.05f64..1.0, 0.0f64..2.0, 0.0f64..1.0)
            .prop_map(|(a, b, k, l)| ProtocolSpec::Bin { a, b, k, l }),
        (0.05f64..1.5, 0.05f64..0.95).prop_map(|(c, b)| ProtocolSpec::Cubic { c, b }),
        (0.1f64..3.0, 0.05f64..0.95, 0.001f64..0.2)
            .prop_map(|(a, b, eps)| ProtocolSpec::RobustAimd { a, b, eps }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every Table 1 cell stays in its documented range, for every family
    /// and link.
    #[test]
    fn table1_cells_in_range(
        spec in arb_spec(),
        c in 10.0f64..10_000.0,
        tau in 0.1f64..2_000.0,
        n in 1.0f64..64.0,
    ) {
        let eff = spec.efficiency(c, tau);
        prop_assert!((0.0..=1.0).contains(&eff), "{spec:?} eff {eff}");
        prop_assert!(eff >= spec.efficiency_worst() - 1e-12);

        let loss = spec.loss_bound(c, tau, n);
        prop_assert!((0.0..=1.0).contains(&loss), "{spec:?} loss {loss}");
        prop_assert!(loss <= spec.loss_bound_worst() + 1e-12);

        let fair = spec.fairness_worst();
        prop_assert!(fair == 0.0 || fair == 1.0);

        let conv = spec.convergence_worst();
        prop_assert!((0.0..=1.0).contains(&conv), "{spec:?} conv {conv}");

        let fr = spec.tcp_friendliness(c, tau);
        prop_assert!(fr >= 0.0, "{spec:?} friendliness {fr}");
    }

    /// Efficiency improves with buffer depth; loss worsens with sender
    /// count (for the additive-increase families where the cell depends
    /// on n).
    #[test]
    fn table1_monotonicities(
        spec in arb_spec(),
        c in 10.0f64..10_000.0,
        tau in 0.1f64..1_000.0,
        dtau in 0.1f64..500.0,
        n in 1.0f64..32.0,
        dn in 1.0f64..32.0,
    ) {
        prop_assert!(spec.efficiency(c, tau + dtau) >= spec.efficiency(c, tau) - 1e-12);
        prop_assert!(spec.loss_bound(c, tau, n + dn) >= spec.loss_bound(c, tau, n) - 1e-12);
    }

    /// Theorem bounds: Theorem 1's bound is monotone in convergence and
    /// within [0, 1]; Theorem 2's bound decreases in both arguments;
    /// Theorem 3's bound is strictly below Theorem 2's.
    #[test]
    fn theorem_bound_shapes(
        alpha in 0.05f64..5.0,
        beta in 0.0f64..0.99,
        dbeta in 0.001f64..0.5,
        eps in 0.001f64..0.5,
        ct in 10.0f64..10_000.0,
    ) {
        let beta2 = (beta + dbeta).min(0.999);
        prop_assert!(
            theorem2_friendliness_upper_bound(alpha, beta2)
                <= theorem2_friendliness_upper_bound(alpha, beta) + 1e-12
        );
        prop_assert!(
            theorem2_friendliness_upper_bound(alpha * 2.0, beta)
                <= theorem2_friendliness_upper_bound(alpha, beta) + 1e-12
        );
        let conv = beta; // reuse as a convergence score
        let t1 = theorem1_efficiency_lower_bound(conv);
        prop_assert!((0.0..=1.0).contains(&t1));
        if ct > alpha / 2.0 {
            let t3 = theorem3_friendliness_upper_bound(alpha, beta, eps, ct);
            let t2 = theorem2_friendliness_upper_bound(alpha, beta);
            prop_assert!(t3 <= t2 + 1e-12, "t3 {t3} vs t2 {t2}");
            prop_assert!(t3 >= 0.0);
        }
    }

    /// Theorem 2 is tight for AIMD: the worst-case Table 1 row of any
    /// AIMD(a, b) sits exactly on the bound — and therefore every AIMD
    /// worst-case row passes the feasibility checker.
    #[test]
    fn aimd_rows_sit_on_theorem2(spec in arb_aimd()) {
        let ProtocolSpec::Aimd { a, b } = spec else { unreachable!() };
        let row = spec.scores_worst();
        let bound = theorem2_friendliness_upper_bound(a, b);
        prop_assert!((row.tcp_friendliness - bound).abs() < 1e-12);
        prop_assert!(is_consistent_loss_based(&row, 1_000.0));
    }

    /// Every family's worst-case row is theorem-consistent, and inflating
    /// its friendliness beyond the Theorem 2 cap is always caught.
    #[test]
    fn feasibility_checker_is_sound_on_worst_rows(
        spec in arb_spec(),
        inflation in 1.2f64..10.0,
        ct in 50.0f64..5_000.0,
    ) {
        let row = spec.scores_worst();
        prop_assert!(
            infeasibilities_loss_based(&row, ct, None).is_empty(),
            "{spec:?}"
        );
        // Inflate friendliness beyond the Theorem 2 cap: must be caught
        // whenever the hypotheses apply (positive, finite fast-utilization).
        if row.fast_utilization > 0.0 && row.fast_utilization.is_finite() {
            let cap = theorem2_friendliness_upper_bound(
                row.fast_utilization,
                row.efficiency,
            );
            let mut bad = row;
            bad.tcp_friendliness = cap * inflation + 1e-6;
            prop_assert!(
                !infeasibilities_loss_based(&bad, ct, None).is_empty(),
                "{spec:?} inflated to {} past cap {cap}",
                bad.tcp_friendliness
            );
        }
    }
}
