//! Property tests for the axiom evaluators and the link model: structural
//! facts that must hold for *every* trace and link, not just the examples
//! in the unit tests.

#![allow(clippy::float_cmp)] // exact comparisons are deliberate in tests
use axcc_core::axioms::{
    convergence, efficiency, fairness, fast_utilization, latency, loss_avoidance,
};
use axcc_core::trace::{RunTrace, SenderTrace};
use axcc_core::LinkParams;
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = LinkParams> {
    (100.0f64..50_000.0, 0.001f64..0.3, 0.0f64..1000.0)
        .prop_map(|(b, th, tau)| LinkParams::new(b, th, tau))
}

/// Build a consistent trace from arbitrary window trajectories.
fn trace_from(link: LinkParams, windows: Vec<Vec<f64>>) -> RunTrace {
    let steps = windows[0].len();
    let mut senders: Vec<SenderTrace> = windows
        .iter()
        .enumerate()
        .map(|(i, _)| SenderTrace::with_capacity(format!("S{i}"), true, steps))
        .collect();
    let mut total = Vec::new();
    let mut rtts = Vec::new();
    let mut losses = Vec::new();
    for t in 0..steps {
        let x: f64 = windows.iter().map(|w| w[t]).sum();
        let rtt = link.rtt(x);
        let loss = link.loss_rate(x);
        total.push(x);
        rtts.push(rtt);
        losses.push(loss);
        for (s, w) in senders.iter_mut().zip(&windows) {
            s.window.push(w[t]);
            s.loss.push(loss);
            s.goodput.push(w[t] * (1.0 - loss) / rtt);
        }
    }
    RunTrace {
        link,
        senders,
        total_window: total,
        rtt: rtts,
        loss: losses,
        seed: 0,
    }
}

fn arb_windows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..4, 4usize..60).prop_flat_map(|(n, steps)| {
        proptest::collection::vec(
            proptest::collection::vec(0.0f64..4000.0, steps..=steps),
            n..=n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// RTT equation: never below the propagation floor, never above Δ,
    /// and monotone in the total window below the loss threshold.
    #[test]
    fn rtt_equation_bounds(link in arb_link(), x in 0.0f64..1e7, dx in 0.0f64..100.0) {
        let r = link.rtt(x);
        prop_assert!(r >= link.min_rtt() - 1e-12);
        prop_assert!(r <= link.timeout_delta + 1e-12);
        if x + dx < link.loss_threshold() {
            prop_assert!(link.rtt(x + dx) >= r - 1e-12);
        }
    }

    /// Loss equation: in [0, 1), zero exactly up to the threshold, and
    /// monotone above it.
    #[test]
    fn loss_equation_bounds(link in arb_link(), x in 0.0f64..1e7, dx in 0.0f64..100.0) {
        let l = link.loss_rate(x);
        prop_assert!((0.0..1.0).contains(&l));
        if x <= link.loss_threshold() {
            prop_assert_eq!(l, 0.0);
        } else {
            prop_assert!(link.loss_rate(x + dx) >= l);
        }
    }

    /// All tail-based scores are within their documented ranges, for any
    /// trace and any tail start.
    #[test]
    fn scores_stay_in_range(link in arb_link(), windows in arb_windows(), frac in 0.0f64..1.0) {
        let trace = trace_from(link, windows);
        let tail = trace.tail_start(frac);
        let eff = efficiency::measured_efficiency(&trace, tail);
        prop_assert!((0.0..=1.0).contains(&eff));
        let loss = loss_avoidance::measured_loss_bound(&trace, tail);
        prop_assert!((0.0..1.0).contains(&loss));
        let fair = fairness::measured_fairness(&trace, tail);
        prop_assert!((0.0..=1.0).contains(&fair));
        let jain = fairness::jain_index(&trace, tail);
        prop_assert!(jain >= 1.0 / trace.num_senders() as f64 - 1e-9);
        prop_assert!(jain <= 1.0 + 1e-9);
        let conv = convergence::measured_convergence(&trace, tail);
        prop_assert!((0.0..=1.0).contains(&conv));
        let lat = latency::measured_latency_inflation(&trace, tail);
        prop_assert!(lat >= 0.0);
    }

    /// Growing the tail (starting it later) can only improve or preserve
    /// every "from T onwards" score — the existential over T is monotone.
    #[test]
    fn later_tail_never_hurts(link in arb_link(), windows in arb_windows()) {
        let trace = trace_from(link, windows);
        let t1 = trace.tail_start(0.25);
        let t2 = trace.tail_start(0.75);
        prop_assert!(
            efficiency::measured_efficiency(&trace, t2)
                >= efficiency::measured_efficiency(&trace, t1) - 1e-12
        );
        prop_assert!(
            loss_avoidance::measured_loss_bound(&trace, t2)
                <= loss_avoidance::measured_loss_bound(&trace, t1) + 1e-12
        );
        let l1 = latency::measured_latency_inflation(&trace, t1);
        let l2 = latency::measured_latency_inflation(&trace, t2);
        prop_assert!(l2 <= l1 || (l1.is_infinite() && l2.is_infinite()) || l2.is_finite());
    }

    /// `satisfies_*` predicates agree with their `measured_*` scores.
    #[test]
    fn predicates_agree_with_scores(link in arb_link(), windows in arb_windows(), alpha in 0.0f64..1.2) {
        let trace = trace_from(link, windows);
        let tail = trace.tail_start(0.5);
        prop_assert_eq!(
            efficiency::satisfies_efficiency(&trace, tail, alpha),
            efficiency::measured_efficiency(&trace, tail) >= alpha - 1e-12
        );
        prop_assert_eq!(
            loss_avoidance::satisfies_loss_avoidance(&trace, tail, alpha),
            loss_avoidance::measured_loss_bound(&trace, tail) <= alpha + 1e-12
        );
        prop_assert_eq!(
            fairness::satisfies_fairness(&trace, tail, alpha),
            fairness::measured_fairness(&trace, tail) >= alpha - 1e-12
        );
    }

    /// Eligible segments partition correctly: they never contain a lossy
    /// step, never overlap, and appear in order.
    #[test]
    fn segments_are_disjoint_and_clean(link in arb_link(), windows in arb_windows()) {
        let trace = trace_from(link, windows);
        let s = &trace.senders[0];
        let segs = fast_utilization::eligible_segments(s, trace.sender_rtt(0), 0, false);
        let mut prev_end = 0;
        for seg in &segs {
            prop_assert!(seg.start >= prev_end);
            prop_assert!(seg.end <= s.len());
            prop_assert!(!seg.is_empty());
            for t in seg.start..seg.end {
                prop_assert_eq!(s.loss[t], 0.0, "lossy step inside segment");
            }
            prev_end = seg.end;
        }
    }
}
