//! Golden digest vectors for the content-addressed cache.
//!
//! The sweep cache stores results under `Digest::to_hex` file names, so
//! the canonical byte encoding in `axcc_core::fingerprint` is a *frozen
//! contract*: any change to the FNV constants, the length-prefix rules,
//! or a `Fingerprint` impl silently invalidates (or worse, aliases)
//! every cached result on disk. These vectors pin the encoding — if one
//! fails, either revert the encoding change or bump the engine-version
//! string the runner mixes into every digest, and regenerate.

use axcc_core::fingerprint::{Digest, Fingerprint, Fingerprinter};
use axcc_core::link::LinkParams;
use proptest::prelude::*;

#[track_caller]
fn assert_digest(actual: Digest, expected_hex: &str) {
    assert_eq!(
        actual.to_hex(),
        expected_hex,
        "the canonical fingerprint encoding changed; cached digests on \
         disk no longer address the same content"
    );
}

#[test]
fn golden_primitive_vectors() {
    // The empty fingerprint is the two FNV-1a offset bases themselves.
    assert_digest(
        Fingerprinter::new().finish(),
        "cbf29ce48422232555c5e55dfb685f30",
    );
    assert_digest(0u64.digest(), "a8c7f832281a39c59ee92ea251c82530");
    assert_digest(1.5f64.digest(), "aa95e93229a27c809d87cda2509bf605");
    assert_digest(true.digest(), "af63bc4c8601b62c27a3efb23259c043");
    assert_digest(None::<f64>.digest(), "af63bd4c8601b7df27a3eeb23259be90");
    assert_digest("scenario".digest(), "0e72bf88ab266b87e4f46e3a911e2cf2");
}

#[test]
fn golden_composite_vectors() {
    assert_digest(
        ("AIMD(1,0.5)", 4usize, 0.042f64).digest(),
        "4f69582f7da6729c4108f43de9982be3",
    );
    assert_digest(
        vec![1.0f64, 2.0].digest(),
        "932e189cc073d0b6c72a35a145980a4b",
    );
    let link = LinkParams {
        bandwidth: 100.0,
        prop_delay: 0.05,
        buffer: 50.0,
        timeout_delta: 0.6,
    };
    assert_digest(link.digest(), "631ea4a5dd94469896a63cdd24e94095");
}

#[test]
fn golden_structural_properties() {
    // -0.0 and 0.0 have distinct bit patterns and distinct digests…
    assert_digest((-0.0f64).digest(), "a8c77832281960459ee9aea251c8feb0");
    // …while values with identical canonical bytes digest identically
    // across types: "" (a zero length prefix), 0u64, and 0.0f64 are all
    // eight zero bytes. Types are NOT encoded — impls that need domain
    // separation write a tag string first (as `LinkParams` does).
    assert_eq!("".digest(), 0u64.digest());
    assert_eq!(0.0f64.digest(), 0u64.digest());
}

proptest! {
    /// Every digest survives the hex round trip, and the rendering is
    /// exactly 32 lowercase hex digits (the cache file-name contract).
    #[test]
    fn hex_round_trips(hi in any::<u64>(), lo in any::<u64>()) {
        let d = Digest { hi, lo };
        let hex = d.to_hex();
        prop_assert_eq!(hex.len(), 32);
        prop_assert!(hex.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
        prop_assert_eq!(Digest::from_hex(&hex), Some(d));
    }

    /// Parsing accepts exactly the 32-hex-digit language: case-variant
    /// inputs parse to the same digest, anything else is rejected.
    /// (Digits 0-15 render lowercase, 16-21 exercise uppercase A-F.)
    #[test]
    fn from_hex_rejects_non_canonical(digits in proptest::collection::vec(0u8..22, 0..40)) {
        let s: String = digits
            .iter()
            .map(|&d| {
                let v = if d < 16 { d } else { d - 6 };
                let c = char::from_digit(u32::from(v), 16).unwrap_or('0');
                if d < 16 { c } else { c.to_ascii_uppercase() }
            })
            .collect();
        match Digest::from_hex(&s) {
            Some(d) => {
                prop_assert_eq!(s.len(), 32);
                prop_assert_eq!(d.to_hex(), s.to_ascii_lowercase());
            }
            None => prop_assert_ne!(s.len(), 32),
        }
    }
}
