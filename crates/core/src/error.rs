//! Typed scenario errors shared by both simulation engines.
//!
//! The engines historically `panic!`ed on bad input, which is acceptable
//! for one-off research scripts but not for a library embedded in larger
//! systems (a malformed scenario arriving over an RPC boundary must not
//! abort the process). Every builder now funnels its checks through a
//! `validate()` that returns [`ScenarioError`]; the legacy `run()` entry
//! points keep their panicking behaviour (with the same messages, for
//! back-compatibility) by unwrapping the corresponding `try_run()`.
//!
//! The enum is hand-rolled (`std::error::Error` impl, no derive crates):
//! the build environment is offline and the workspace adds no external
//! dependencies for error plumbing.

use std::fmt;

/// A scenario configuration or runtime error from either simulator.
///
/// `Display` messages are written to be actionable on their own (they name
/// the offending field, its value, and the constraint it violated), so CLI
/// layers can print them verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario has no senders: there is nothing to simulate.
    NoSenders,
    /// A scalar scenario parameter is outside its domain.
    InvalidParameter {
        /// Human-readable field name (e.g. `"duration_secs"`).
        field: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint it violated, as prose (e.g. `"positive and finite"`).
        constraint: &'static str,
    },
    /// A per-sender parameter is outside its domain.
    InvalidSender {
        /// Index of the sender in the scenario (insertion order).
        index: usize,
        /// Human-readable field name.
        field: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint it violated.
        constraint: &'static str,
    },
    /// A loss/fault model's parameters are invalid.
    InvalidLossModel(String),
    /// Two scenario options cannot be combined.
    ConflictingOptions {
        /// The first option, as configured.
        first: &'static str,
        /// The second, incompatible option.
        second: &'static str,
    },
    /// The simulation produced a non-finite quantity (NaN windows from a
    /// protocol, degenerate link arithmetic, …). Carrying the step and
    /// sender makes the diagnostic actionable instead of silently emitting
    /// a garbage trace.
    NumericalDivergence {
        /// Simulation step (fluid) at which the guard tripped.
        step: u64,
        /// Sender index whose quantity went non-finite.
        sender: usize,
        /// What diverged (e.g. `"requested window"`).
        context: &'static str,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoSenders => {
                write!(f, "scenario needs at least one sender; none were added")
            }
            ScenarioError::InvalidParameter {
                field,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "scenario parameter {field} = {value} is invalid: must be {constraint}"
                )
            }
            ScenarioError::InvalidSender {
                index,
                field,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "sender {index}: {field} = {value} is invalid: must be {constraint}"
                )
            }
            ScenarioError::InvalidLossModel(msg) => write!(f, "invalid loss model: {msg}"),
            ScenarioError::ConflictingOptions { first, second } => {
                write!(
                    f,
                    "options {first} and {second} are mutually exclusive; choose one, not both"
                )
            }
            ScenarioError::NumericalDivergence {
                step,
                sender,
                context,
                value,
            } => {
                write!(
                    f,
                    "numerical divergence at step {step}, sender {sender}: {context} became \
                     {value}; aborting instead of emitting a garbage trace (check the \
                     protocol's arithmetic and the link parameters)"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = ScenarioError::InvalidParameter {
            field: "duration_secs",
            value: -1.0,
            constraint: "positive and finite",
        };
        let msg = e.to_string();
        assert!(msg.contains("duration_secs"), "{msg}");
        assert!(msg.contains("-1"), "{msg}");
        assert!(msg.contains("positive and finite"), "{msg}");
    }

    #[test]
    fn legacy_panic_substrings_survive() {
        // Tests (and downstream users) match on these substrings; the
        // panicking run() paths print Display, so they must be stable.
        assert!(ScenarioError::NoSenders
            .to_string()
            .contains("at least one sender"));
        assert!(ScenarioError::ConflictingOptions {
            first: "RED",
            second: "ECN"
        }
        .to_string()
        .contains("not both"));
        assert!(ScenarioError::InvalidLossModel("rate 1.5".into())
            .to_string()
            .contains("invalid loss model"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ScenarioError::NoSenders);
    }

    #[test]
    fn divergence_carries_diagnostics() {
        let e = ScenarioError::NumericalDivergence {
            step: 42,
            sender: 1,
            context: "requested window",
            value: f64::NAN,
        };
        let msg = e.to_string();
        assert!(msg.contains("step 42"), "{msg}");
        assert!(msg.contains("sender 1"), "{msg}");
        assert!(msg.contains("requested window"), "{msg}");
    }
}
