//! Per-sender observation history.
//!
//! The paper defines a protocol as a map from the full history of a sender's
//! windows, RTTs and losses to its next window. Most concrete protocols keep
//! only a constant-size digest of that history (CUBIC: the window at the last
//! loss and the time since; Vegas: the minimum RTT). [`History`] is the
//! general-purpose recorder for protocols, adapters, and tests that need the
//! real thing — e.g. the packet-level adapter aggregates per-packet feedback
//! into per-RTT observations, and the fast-utilization estimator replays
//! window ascent segments.

use crate::protocol::Observation;

/// A bounded log of [`Observation`]s with summary helpers.
///
/// The log is capped at `capacity` entries; pushing beyond it evicts the
/// oldest entry (ring-buffer behaviour), so long simulations do not grow
/// protocol state without bound.
#[derive(Debug, Clone)]
pub struct History {
    entries: Vec<Observation>,
    capacity: usize,
    start: usize,
    /// Total observations ever pushed (not just retained).
    pushed: u64,
}

impl History {
    /// A history retaining up to `capacity` most-recent observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        History {
            entries: Vec::with_capacity(capacity.min(1024)),
            capacity,
            start: 0,
            pushed: 0,
        }
    }

    /// Record an observation, evicting the oldest if at capacity.
    pub fn push(&mut self, obs: Observation) {
        if self.entries.len() < self.capacity {
            self.entries.push(obs);
        } else {
            self.entries[self.start] = obs;
            self.start = (self.start + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of observations ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<&Observation> {
        if self.entries.is_empty() {
            None
        } else if self.entries.len() < self.capacity {
            self.entries.last()
        } else {
            let idx = (self.start + self.capacity - 1) % self.capacity;
            Some(&self.entries[idx])
        }
    }

    /// Iterate oldest → newest over the retained observations.
    pub fn iter(&self) -> impl Iterator<Item = &Observation> {
        let (tail, head) = self.entries.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Smallest RTT retained (the sender's running estimate of `2Θ` if the
    /// capacity spans the connection lifetime).
    pub fn min_rtt(&self) -> Option<f64> {
        self.iter().map(|o| o.rtt).fold(None, |acc, r| match acc {
            None => Some(r),
            Some(m) => Some(m.min(r)),
        })
    }

    /// Mean loss rate over the retained window.
    pub fn mean_loss(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.iter().map(|o| o.loss_rate).sum::<f64>() / self.entries.len() as f64
    }

    /// Number of retained observations with strictly positive loss.
    pub fn loss_events(&self) -> usize {
        self.iter().filter(|o| o.loss_rate > 0.0).count()
    }

    /// Forget everything (e.g. on protocol reset).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.start = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tick: u64, rtt: f64, loss: f64) -> Observation {
        Observation {
            tick,
            window: tick as f64,
            loss_rate: loss,
            rtt,
            min_rtt: rtt,
        }
    }

    #[test]
    fn push_and_last() {
        let mut h = History::new(4);
        assert!(h.last().is_none());
        h.push(obs(0, 0.1, 0.0));
        h.push(obs(1, 0.2, 0.0));
        assert_eq!(h.last().unwrap().tick, 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut h = History::new(3);
        for t in 0..10 {
            h.push(obs(t, 0.1, 0.0));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_pushed(), 10);
        let ticks: Vec<u64> = h.iter().map(|o| o.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9]);
        assert_eq!(h.last().unwrap().tick, 9);
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut h = History::new(8);
        h.push(obs(0, 0.30, 0.0));
        h.push(obs(1, 0.10, 0.0));
        h.push(obs(2, 0.20, 0.0));
        assert_eq!(h.min_rtt(), Some(0.10));
    }

    #[test]
    fn min_rtt_forgets_evicted() {
        let mut h = History::new(2);
        h.push(obs(0, 0.05, 0.0));
        h.push(obs(1, 0.30, 0.0));
        h.push(obs(2, 0.20, 0.0));
        // The 0.05 observation has been evicted.
        assert_eq!(h.min_rtt(), Some(0.20));
    }

    #[test]
    fn loss_summaries() {
        let mut h = History::new(8);
        h.push(obs(0, 0.1, 0.0));
        h.push(obs(1, 0.1, 0.5));
        h.push(obs(2, 0.1, 0.25));
        assert_eq!(h.loss_events(), 2);
        assert!((h.mean_loss() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut h = History::new(2);
        h.push(obs(0, 0.1, 0.0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.total_pushed(), 0);
        assert!(h.last().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        History::new(0);
    }
}
