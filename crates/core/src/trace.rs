//! Execution traces — the interface between simulators and axiom evaluation.
//!
//! Both simulation engines (`axcc-fluidsim`, `axcc-packetsim`) record a
//! [`RunTrace`]: per time step, each sender's window, experienced loss rate,
//! RTT, and goodput. All eight axioms of the paper are statements about such
//! trajectories ("there is some time step T such that from T onwards …"),
//! so their empirical evaluation is a pure function of the trace.

use crate::link::LinkParams;
use serde::{Deserialize, Serialize};

/// The per-time-step record of a single sender.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SenderTrace {
    /// Display name of the protocol driving this sender.
    pub protocol: String,
    /// Whether that protocol is loss-based.
    pub loss_based: bool,
    /// Congestion window `x_i^(t)` (MSS) at each step.
    pub window: Vec<f64>,
    /// Loss rate experienced at each step.
    pub loss: Vec<f64>,
    /// RTT experienced at each step (seconds), **only when it differs from
    /// the run's shared link RTT column**. In the synchronized fluid model
    /// every sender sees the identical per-step RTT, so storing a copy per
    /// sender multiplied the dominant trace column for nothing; engines now
    /// leave this `None` and readers go through
    /// [`RunTrace::sender_rtt`], which falls back to the shared column.
    /// Engines with genuinely heterogeneous RTTs (packet-level simulation,
    /// multi-path topologies) attach their own column via [`own_rtt_mut`].
    ///
    /// [`own_rtt_mut`]: SenderTrace::own_rtt_mut
    pub rtt: Option<Vec<f64>>,
    /// Goodput at each step (MSS/s): delivered window over RTT.
    pub goodput: Vec<f64>,
}

impl SenderTrace {
    /// Create an empty trace with capacity for `steps` entries. The RTT
    /// column starts shared (`None`); call [`own_rtt_mut`] to record a
    /// per-sender one.
    ///
    /// [`own_rtt_mut`]: SenderTrace::own_rtt_mut
    pub fn with_capacity(protocol: String, loss_based: bool, steps: usize) -> Self {
        SenderTrace {
            protocol,
            loss_based,
            window: Vec::with_capacity(steps),
            loss: Vec::with_capacity(steps),
            rtt: None,
            goodput: Vec::with_capacity(steps),
        }
    }

    /// The per-sender RTT column, materializing it (empty) on first use.
    /// Only engines whose senders see RTTs different from the shared link
    /// column should call this; everyone else keeps the shared column and
    /// reads through [`RunTrace::sender_rtt`].
    pub fn own_rtt_mut(&mut self) -> &mut Vec<f64> {
        self.rtt.get_or_insert_with(Vec::new)
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Mean window over `[from, len)`.
    pub fn mean_window_from(&self, from: usize) -> f64 {
        mean(&self.window[from.min(self.len())..])
    }

    /// Mean goodput over `[from, len)`.
    pub fn mean_goodput_from(&self, from: usize) -> f64 {
        mean(&self.goodput[from.min(self.len())..])
    }

    /// Maximum loss rate over `[from, len)`.
    pub fn max_loss_from(&self, from: usize) -> f64 {
        self.loss[from.min(self.len())..]
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }
}

/// The full record of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// The link the run executed on.
    pub link: LinkParams,
    /// One trace per sender, in sender order.
    pub senders: Vec<SenderTrace>,
    /// Total window `X^(t) = Σ_i x_i^(t)` at each step.
    pub total_window: Vec<f64>,
    /// Link-level RTT at each step (equals each sender's RTT in the
    /// synchronized fluid model; a per-sender average in packetsim).
    pub rtt: Vec<f64>,
    /// Link-level loss rate at each step.
    pub loss: Vec<f64>,
    /// RNG seed the run used (0 when the run was fully deterministic).
    pub seed: u64,
}

impl RunTrace {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.total_window.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.total_window.is_empty()
    }

    /// Number of senders.
    pub fn num_senders(&self) -> usize {
        self.senders.len()
    }

    /// Index marking the start of the "tail" of the run: the suffix over
    /// which the axioms' "from some time T onwards" clauses are evaluated.
    ///
    /// We use the last `1 − fraction` of the run; callers pick the fraction
    /// (the experiment builders use 0.5, i.e. the second half, which is
    /// comfortably past every protocol's transient for the run lengths
    /// used).
    pub fn tail_start(&self, fraction: f64) -> usize {
        let f = fraction.clamp(0.0, 1.0);
        (self.len() as f64 * f).floor() as usize
    }

    /// Sender `i`'s RTT column: its own if it recorded one, otherwise the
    /// run's shared link column (the synchronized-feedback case, where
    /// every sender's RTT is identical by construction and stored once).
    pub fn sender_rtt(&self, i: usize) -> &[f64] {
        self.senders[i].rtt.as_deref().unwrap_or(&self.rtt)
    }

    /// Utilization `X^(t) / C` at each step of the tail.
    pub fn tail_utilization(&self, fraction: f64) -> impl Iterator<Item = f64> + '_ {
        let c = self.link.capacity();
        self.total_window[self.tail_start(fraction)..]
            .iter()
            .map(move |x| x / c)
    }

    /// Render the trace as CSV (one row per step; per-sender
    /// window/loss/rtt/goodput columns followed by the link columns),
    /// suitable for plotting with any external tool.
    ///
    /// Column layout:
    /// `step, s<i>_window, s<i>_loss, s<i>_rtt, s<i>_goodput …, total_window, link_rtt, link_loss`.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("step");
        for (i, s) in self.senders.iter().enumerate() {
            let name = s.protocol.replace(',', ";");
            let _ = write!(out, ",s{i}_window({name}),s{i}_loss,s{i}_rtt,s{i}_goodput");
        }
        out.push_str(",total_window,link_rtt,link_loss\n");
        for t in 0..self.len() {
            let _ = write!(out, "{t}");
            for (i, s) in self.senders.iter().enumerate() {
                let _ = write!(
                    out,
                    ",{},{},{},{}",
                    s.window[t],
                    s.loss[t],
                    self.sender_rtt(i)[t],
                    s.goodput[t]
                );
            }
            let _ = writeln!(
                out,
                ",{},{},{}",
                self.total_window[t], self.rtt[t], self.loss[t]
            );
        }
        out
    }

    /// Check the structural invariants every engine must maintain:
    /// rectangular shape, windows within `[0, M]`, loss within `[0, 1)`,
    /// RTTs at least `2Θ`, and the total-window column consistent with the
    /// per-sender columns. Returns a description of the first violation.
    pub fn validate(&self, max_window: f64) -> Result<(), String> {
        let steps = self.len();
        if self.rtt.len() != steps || self.loss.len() != steps {
            return Err(format!(
                "ragged link columns: total={} rtt={} loss={}",
                steps,
                self.rtt.len(),
                self.loss.len()
            ));
        }
        for (i, s) in self.senders.iter().enumerate() {
            if s.len() != steps {
                return Err(format!("sender {i} has {} steps, run has {steps}", s.len()));
            }
            for (t, &w) in s.window.iter().enumerate() {
                if !(0.0..=max_window).contains(&w) {
                    return Err(format!(
                        "sender {i} window {w} out of [0,{max_window}] at t={t}"
                    ));
                }
            }
            for (t, &l) in s.loss.iter().enumerate() {
                // NaN fails `contains` and is rejected here too.
                if !(0.0..1.0).contains(&l) {
                    return Err(format!("sender {i} loss {l} out of [0,1) at t={t}"));
                }
            }
            if let Some(own) = &s.rtt {
                if own.len() != steps {
                    return Err(format!(
                        "sender {i} has {} rtt entries, run has {steps}",
                        own.len()
                    ));
                }
            }
            for (t, &r) in self.sender_rtt(i).iter().enumerate() {
                if r < self.link.min_rtt() - 1e-12 {
                    return Err(format!("sender {i} rtt {r} below 2Θ at t={t}"));
                }
            }
        }
        for t in 0..steps {
            let sum: f64 = self.senders.iter().map(|s| s.window[t]).sum();
            if (sum - self.total_window[t]).abs() > 1e-6 * (1.0 + sum) {
                return Err(format!(
                    "total window mismatch at t={t}: column {} vs sum {sum}",
                    self.total_window[t]
                ));
            }
        }
        Ok(())
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> RunTrace {
        let link = LinkParams::new(1000.0, 0.021, 100.0);
        let mut s0 = SenderTrace::with_capacity("A".into(), true, 4);
        let mut s1 = SenderTrace::with_capacity("B".into(), true, 4);
        let windows0 = [10.0, 20.0, 30.0, 40.0];
        let windows1 = [5.0, 5.0, 5.0, 5.0];
        let mut total = Vec::new();
        let mut rtts = Vec::new();
        let mut losses = Vec::new();
        for t in 0..4 {
            let x = windows0[t] + windows1[t];
            total.push(x);
            let rtt = link.rtt(x);
            let loss = link.loss_rate(x);
            rtts.push(rtt);
            losses.push(loss);
            for (s, w) in [(&mut s0, windows0[t]), (&mut s1, windows1[t])] {
                s.window.push(w);
                s.loss.push(loss);
                s.goodput.push(w * (1.0 - loss) / rtt);
            }
        }
        RunTrace {
            link,
            senders: vec![s0, s1],
            total_window: total,
            rtt: rtts,
            loss: losses,
            seed: 0,
        }
    }

    #[test]
    fn validate_accepts_consistent_trace() {
        toy_trace().validate(1e9).unwrap();
    }

    #[test]
    fn validate_rejects_window_out_of_range() {
        let mut t = toy_trace();
        t.senders[0].window[2] = -1.0;
        assert!(t.validate(1e9).is_err());
    }

    #[test]
    fn validate_rejects_total_mismatch() {
        let mut t = toy_trace();
        t.total_window[1] += 5.0;
        assert!(t.validate(1e9).is_err());
    }

    #[test]
    fn validate_rejects_ragged_sender() {
        let mut t = toy_trace();
        t.senders[1].window.pop();
        assert!(t.validate(1e9).is_err());
    }

    #[test]
    fn sender_rtt_falls_back_to_the_shared_column() {
        let t = toy_trace();
        assert!(t.senders[0].rtt.is_none());
        assert_eq!(t.sender_rtt(0), &t.rtt[..]);
        assert_eq!(t.sender_rtt(1), &t.rtt[..]);
    }

    #[test]
    fn sender_rtt_prefers_an_own_column() {
        let mut t = toy_trace();
        let own: Vec<f64> = t.rtt.iter().map(|r| r * 2.0).collect();
        *t.senders[1].own_rtt_mut() = own.clone();
        assert_eq!(t.sender_rtt(0), &t.rtt[..]);
        assert_eq!(t.sender_rtt(1), &own[..]);
        t.validate(1e9).unwrap();
    }

    #[test]
    fn validate_rejects_ragged_own_rtt() {
        let mut t = toy_trace();
        t.senders[0].own_rtt_mut().push(1.0);
        assert!(t.validate(1e9).is_err());
    }

    #[test]
    fn tail_start_fractions() {
        let t = toy_trace();
        assert_eq!(t.tail_start(0.0), 0);
        assert_eq!(t.tail_start(0.5), 2);
        assert_eq!(t.tail_start(1.0), 4);
    }

    #[test]
    fn mean_window_from_tail() {
        let t = toy_trace();
        assert!((t.senders[0].mean_window_from(2) - 35.0).abs() < 1e-12);
        assert!((t.senders[1].mean_window_from(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn csv_export_shape_and_values() {
        let t = toy_trace();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + t.len());
        // Header: step + 4 per sender + 3 link columns.
        assert_eq!(lines[0].split(',').count(), 1 + 4 * 2 + 3);
        assert!(lines[0].starts_with("step,s0_window(A)"));
        // First data row starts with step 0 and sender 0's window 10.
        assert!(lines[1].starts_with("0,10,"), "{}", lines[1]);
        // Every data row has the header's arity.
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 1 + 4 * 2 + 3, "{l}");
        }
    }

    #[test]
    fn csv_escapes_commas_in_protocol_names() {
        let mut t = toy_trace();
        t.senders[0].protocol = "AIMD(1,0.5)".into();
        let csv = t.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("AIMD(1;0.5)"));
        assert_eq!(header.split(',').count(), 1 + 4 * 2 + 3);
    }

    #[test]
    fn tail_utilization_values() {
        let t = toy_trace();
        let c = t.link.capacity();
        let u: Vec<f64> = t.tail_utilization(0.5).collect();
        assert_eq!(u.len(), 2);
        assert!((u[0] - 35.0 / c).abs() < 1e-12);
    }
}
