//! The single-bottleneck link of the paper's model (Section 2) and its two
//! governing equations: RTT (equation 1) and the droptail loss rate.

use crate::units::{ms_to_sec, Bandwidth};
use serde::{Deserialize, Serialize};

/// An RTT value in seconds.
pub type RttSeconds = f64;

/// A loss rate in `[0, 1]`.
pub type LossRate = f64;

/// Parameters of the bottleneck link: bandwidth `B` (MSS/s), propagation
/// delay `Θ` (seconds, one-way), and buffer size `τ` (MSS).
///
/// The paper's model is explicit that `B`, `Θ`, and `τ` are **unknown to the
/// senders** — protocols may not special-case them. They are, of course,
/// known to the simulator and to the metric evaluators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Link bandwidth `B` in MSS per second. Must be positive.
    pub bandwidth: f64,
    /// One-way propagation delay `Θ` in seconds. Must be positive.
    pub prop_delay: f64,
    /// Buffer size `τ` in MSS. Must be non-negative.
    pub buffer: f64,
    /// Timeout-triggered RTT cap `Δ` (seconds), returned by equation (1)
    /// when the link is in loss. Must satisfy `Δ ≥ 2Θ + τ/B` (an RTT under
    /// loss cannot be shorter than a full queue's worth of delay).
    pub timeout_delta: f64,
}

impl LinkParams {
    /// Build a link from bandwidth, propagation delay, and buffer, choosing
    /// the conventional timeout cap `Δ = 2·(2Θ + τ/B)` (twice the maximal
    /// non-loss RTT — the paper leaves `Δ` abstract).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth ≤ 0`, `prop_delay ≤ 0`, or `buffer < 0`; the
    /// model is undefined for those values.
    pub fn new(bandwidth: f64, prop_delay: f64, buffer: f64) -> Self {
        assert!(bandwidth > 0.0, "link bandwidth must be positive");
        assert!(prop_delay > 0.0, "propagation delay must be positive");
        assert!(buffer >= 0.0, "buffer size must be non-negative");
        let max_queueing_rtt = 2.0 * prop_delay + buffer / bandwidth;
        LinkParams {
            bandwidth,
            prop_delay,
            buffer,
            timeout_delta: 2.0 * max_queueing_rtt,
        }
    }

    /// Build a link the way the paper's experiments describe one: bandwidth
    /// in Mbps, **round-trip** propagation delay in milliseconds (the paper's
    /// "fixed RTT of 42ms" is `2Θ`), and buffer in MSS.
    pub fn from_experiment(bandwidth: Bandwidth, rtt_ms: f64, buffer_mss: f64) -> Self {
        Self::new(bandwidth.mss_per_sec(), ms_to_sec(rtt_ms) / 2.0, buffer_mss)
    }

    /// The standard reference link shared by the theorem checks, the
    /// robustness shootout, the extension experiments, and the examples:
    /// 12 Mbps (exactly 1000 MSS/s at 1500-byte MSS), 100 ms RTT
    /// (`Θ` = 50 ms), and a 20-MSS buffer — so `C = B·2Θ = 100` MSS and
    /// the loss threshold `C + τ = 120` MSS.
    pub fn reference() -> Self {
        Self::from_experiment(Bandwidth::Mbps(12.0), 100.0, 20.0)
    }

    /// The link "capacity" `C = B · 2Θ`: the minimum possible
    /// bandwidth-delay product (paper, Section 2).
    pub fn capacity(&self) -> f64 {
        self.bandwidth * 2.0 * self.prop_delay
    }

    /// The minimum possible RTT, `2Θ`.
    pub fn min_rtt(&self) -> RttSeconds {
        2.0 * self.prop_delay
    }

    /// `C + τ`: the most traffic a time step can carry without loss.
    pub fn loss_threshold(&self) -> f64 {
        self.capacity() + self.buffer
    }

    /// Equation (1) of the paper: the duration of a time step as a function
    /// of the total window `X^(t)`.
    ///
    /// ```text
    /// RTT(x̄, C, τ) = max(2Θ, (X − C)/B + 2Θ)   if X < C + τ
    ///              = Δ                          otherwise
    /// ```
    ///
    /// The first branch is the queueing delay of the `X − C` MSS that do not
    /// fit in one bandwidth-delay product; the second is the timeout cap on
    /// RTT when the buffer overflows.
    ///
    /// ```
    /// use axcc_core::LinkParams;
    /// let link = LinkParams::new(1000.0, 0.05, 20.0); // C = 100 MSS
    /// assert_eq!(link.rtt(80.0), 0.1);                // under capacity: 2Θ
    /// assert!((link.rtt(110.0) - 0.11).abs() < 1e-12); // 10 MSS queued
    /// assert_eq!(link.rtt(150.0), link.timeout_delta); // overflow: Δ
    /// assert!((link.loss_rate(150.0) - 0.2).abs() < 1e-12);
    /// ```
    pub fn rtt(&self, total_window: f64) -> RttSeconds {
        let c = self.capacity();
        if total_window < self.loss_threshold() {
            let queueing = (total_window - c) / self.bandwidth;
            (2.0 * self.prop_delay + queueing).max(2.0 * self.prop_delay)
        } else {
            self.timeout_delta
        }
    }

    /// The droptail loss-rate equation of the paper:
    ///
    /// ```text
    /// L(x̄, C, τ) = 1 − (C+τ)/X   if X > C + τ
    ///            = 0              otherwise
    /// ```
    ///
    /// Because droptail FIFO drops excess traffic independently of who sent
    /// it, each sender experiences the *same* loss rate.
    pub fn loss_rate(&self, total_window: f64) -> LossRate {
        let thresh = self.loss_threshold();
        if total_window > thresh {
            1.0 - thresh / total_window
        } else {
            0.0
        }
    }

    /// Goodput (MSS/s) of a sender holding window `window` when the total is
    /// `total_window`: the delivered fraction of its window per RTT.
    pub fn goodput(&self, window: f64, total_window: f64) -> f64 {
        let rtt = self.rtt(total_window);
        window * (1.0 - self.loss_rate(total_window)) / rtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn paper_link() -> LinkParams {
        // 100 Mbps, 42 ms RTT, 100 MSS buffer — a Table 2 configuration.
        LinkParams::from_experiment(Bandwidth::Mbps(100.0), 42.0, 100.0)
    }

    #[test]
    fn capacity_is_bandwidth_delay_product() {
        let l = paper_link();
        // C = 8333.33 MSS/s * 0.042 s = 350 MSS
        assert!((l.capacity() - 350.0).abs() < 1e-6, "C = {}", l.capacity());
    }

    #[test]
    fn rtt_floor_is_two_theta() {
        let l = paper_link();
        assert_eq!(l.rtt(0.0), 0.042);
        assert_eq!(l.rtt(l.capacity()), 0.042);
        assert_eq!(l.rtt(l.capacity() * 0.5), 0.042);
    }

    #[test]
    fn rtt_grows_linearly_in_queue() {
        let l = paper_link();
        let c = l.capacity();
        // 50 MSS of standing queue => 50/B extra seconds.
        let expect = 0.042 + 50.0 / l.bandwidth;
        assert!((l.rtt(c + 50.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn rtt_capped_at_delta_on_overflow() {
        let l = paper_link();
        let x = l.loss_threshold() + 1.0;
        assert_eq!(l.rtt(x), l.timeout_delta);
        assert_eq!(l.rtt(x * 10.0), l.timeout_delta);
    }

    #[test]
    fn delta_at_least_max_queueing_rtt() {
        let l = paper_link();
        assert!(l.timeout_delta >= l.min_rtt() + l.buffer / l.bandwidth);
    }

    #[test]
    fn loss_zero_below_threshold() {
        let l = paper_link();
        assert_eq!(l.loss_rate(0.0), 0.0);
        assert_eq!(l.loss_rate(l.loss_threshold()), 0.0);
    }

    #[test]
    fn loss_matches_formula_above_threshold() {
        let l = paper_link();
        let thresh = l.loss_threshold();
        let x = thresh * 2.0;
        assert!((l.loss_rate(x) - 0.5).abs() < 1e-12);
        let x = thresh / 0.9; // 10% overshoot in the sense L = 0.1
        assert!((l.loss_rate(x) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn loss_rate_bounded() {
        let l = paper_link();
        for x in [0.0, 1.0, 100.0, 450.0, 451.0, 1e6, 1e12] {
            let r = l.loss_rate(x);
            assert!((0.0..1.0).contains(&r), "loss {r} for X={x}");
        }
    }

    #[test]
    fn goodput_of_sole_sender_at_capacity() {
        let l = paper_link();
        let c = l.capacity();
        // One sender exactly filling the pipe: goodput = C / 2Θ = B.
        let g = l.goodput(c, c);
        assert!((g - l.bandwidth).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        LinkParams::new(0.0, 0.021, 100.0);
    }

    #[test]
    #[should_panic(expected = "propagation delay must be positive")]
    fn rejects_zero_delay() {
        LinkParams::new(1000.0, 0.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "buffer size must be non-negative")]
    fn rejects_negative_buffer() {
        LinkParams::new(1000.0, 0.021, -1.0);
    }

    #[test]
    fn from_experiment_halves_rtt() {
        let l = LinkParams::from_experiment(Bandwidth::Mbps(20.0), 42.0, 10.0);
        assert!((l.prop_delay - 0.021).abs() < 1e-12);
        assert!((l.min_rtt() - 0.042).abs() < 1e-12);
    }
}
