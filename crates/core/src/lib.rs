//! # axcc-core — the axiomatic congestion-control model
//!
//! This crate implements the *vocabulary* of
//! **"An Axiomatic Approach to Congestion Control"** (Zarchy, Schapira,
//! Mittal, Shenker — HotNets-XVI, 2017): the fluid-flow single-bottleneck
//! model of Section 2, the eight parameterized axioms of Section 3, and the
//! theoretical results of Sections 4–5 (Claim 1, Theorems 1–5, and every
//! closed-form cell of Table 1).
//!
//! It deliberately contains **no simulation engine**. The engines live in
//! [`axcc-fluidsim`](https://docs.rs/axcc-fluidsim) (the paper's synchronized
//! discrete-time fluid model) and `axcc-packetsim` (an event-driven
//! packet-level simulator standing in for the paper's Emulab testbed); both
//! produce the [`trace::RunTrace`] type defined here, over which the axioms
//! are evaluated.
//!
//! ## Model recap (paper, Section 2)
//!
//! `n` senders share one bottleneck link of bandwidth `B` (MSS/s),
//! propagation delay `Θ` (seconds) and buffer `τ` (MSS), with FIFO droptail
//! queuing. Time proceeds in discrete steps of one RTT. At step `t` sender
//! `i` holds congestion window `x_i^(t) ∈ [0, M]`; `X^(t) = Σ_i x_i^(t)`.
//! With `C = B·2Θ` (the link "capacity", i.e. the minimum
//! bandwidth-delay product):
//!
//! ```text
//! RTT(t) = max(2Θ, (X−C)/B + 2Θ)   if X < C + τ
//!        = Δ                        otherwise (timeout cap)
//!
//! L(t)   = 1 − (C+τ)/X             if X > C + τ
//!        = 0                        otherwise
//! ```
//!
//! A congestion-control protocol deterministically maps a sender's history
//! of windows, RTTs and loss rates to its next window — see
//! [`protocol::Protocol`].

#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub mod axioms;
pub mod error;
pub mod fingerprint;
pub mod history;
pub mod link;
pub mod protocol;
pub mod score;
pub mod theory;
pub mod trace;
pub mod units;

pub use error::ScenarioError;
pub use fingerprint::{Digest, Fingerprint, Fingerprinter};
pub use link::{LinkParams, LossRate, RttSeconds};
pub use protocol::{LaneObs, Observation, Protocol};
pub use score::AxiomScores;
pub use trace::{RunTrace, SenderTrace};
