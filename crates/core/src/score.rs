//! Protocols as points in the 8-dimensional metric space (paper, Section 5).
//!
//! *"Our theoretical framework … allows us to associate each congestion
//! control protocol with a 8-tuple of real numbers, representing its scores
//! in the eight metrics."* This module defines that tuple, the
//! better-or-equal partial order induced by the metrics' orientations, and
//! Pareto dominance — the relation whose maximal elements form the paper's
//! *Pareto frontier for protocol design*.

use crate::axioms::Metric;
use serde::{Deserialize, Serialize};

/// A protocol's scores in the paper's eight metrics.
///
/// Orientation follows the axioms: larger is better for every field except
/// `loss_bound` and `latency_inflation`, where the score is an upper bound
/// the protocol guarantees (smaller is better). `latency_inflation` is
/// `f64::INFINITY` for loss-based protocols (Table 1 omits the column for
/// exactly this reason).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxiomScores {
    /// Metric I: α such that the protocol is α-efficient.
    pub efficiency: f64,
    /// Metric II: α such that the protocol is α-fast-utilizing.
    pub fast_utilization: f64,
    /// Metric III: the loss bound α (smaller is better).
    pub loss_bound: f64,
    /// Metric IV: α such that the protocol is α-fair.
    pub fairness: f64,
    /// Metric V: α such that the protocol is α-convergent.
    pub convergence: f64,
    /// Metric VI: α such that the protocol is α-robust.
    pub robustness: f64,
    /// Metric VII: α such that the protocol is α-TCP-friendly.
    pub tcp_friendliness: f64,
    /// Metric VIII: the latency inflation bound α (smaller is better).
    pub latency_inflation: f64,
}

impl AxiomScores {
    /// Read the score for one metric.
    pub fn get(&self, m: Metric) -> f64 {
        match m {
            Metric::Efficiency => self.efficiency,
            Metric::FastUtilization => self.fast_utilization,
            Metric::LossAvoidance => self.loss_bound,
            Metric::Fairness => self.fairness,
            Metric::Convergence => self.convergence,
            Metric::Robustness => self.robustness,
            Metric::TcpFriendliness => self.tcp_friendliness,
            Metric::LatencyAvoidance => self.latency_inflation,
        }
    }

    /// Set the score for one metric.
    pub fn set(&mut self, m: Metric, v: f64) {
        match m {
            Metric::Efficiency => self.efficiency = v,
            Metric::FastUtilization => self.fast_utilization = v,
            Metric::LossAvoidance => self.loss_bound = v,
            Metric::Fairness => self.fairness = v,
            Metric::Convergence => self.convergence = v,
            Metric::Robustness => self.robustness = v,
            Metric::TcpFriendliness => self.tcp_friendliness = v,
            Metric::LatencyAvoidance => self.latency_inflation = v,
        }
    }

    /// Whether `self`'s score in metric `m` is at least as good as
    /// `other`'s, respecting the metric's orientation.
    pub fn at_least_as_good_in(&self, other: &AxiomScores, m: Metric) -> bool {
        if m.higher_is_better() {
            self.get(m) >= other.get(m)
        } else {
            self.get(m) <= other.get(m)
        }
    }

    /// Whether `self` is at least as good as `other` in *every* metric of
    /// `metrics` (weak dominance).
    pub fn weakly_dominates_in(&self, other: &AxiomScores, metrics: &[Metric]) -> bool {
        metrics.iter().all(|&m| self.at_least_as_good_in(other, m))
    }

    /// **Pareto dominance** restricted to a metric subset: at least as good
    /// everywhere, strictly better somewhere. A feasible point is on the
    /// Pareto frontier iff no feasible point dominates it (paper, §5.2).
    ///
    /// ```
    /// use axcc_core::axioms::Metric;
    /// use axcc_core::theory::ProtocolSpec;
    /// // In the efficiency-only subspace Cubic's worst case (0.8)
    /// // dominates Reno's (0.5) — but not once friendliness is added,
    /// // where Reno's exact 1.0 wins back.
    /// let cubic = ProtocolSpec::CUBIC_LINUX.scores_worst();
    /// let reno = ProtocolSpec::RENO.scores_worst();
    /// assert!(cubic.dominates_in(&reno, &[Metric::Efficiency]));
    /// assert!(!cubic.dominates_in(
    ///     &reno,
    ///     &[Metric::Efficiency, Metric::TcpFriendliness],
    /// ));
    /// ```
    pub fn dominates_in(&self, other: &AxiomScores, metrics: &[Metric]) -> bool {
        self.weakly_dominates_in(other, metrics)
            && metrics.iter().any(|&m| {
                if m.higher_is_better() {
                    self.get(m) > other.get(m)
                } else {
                    self.get(m) < other.get(m)
                }
            })
    }

    /// Pareto dominance over all eight metrics.
    pub fn dominates(&self, other: &AxiomScores) -> bool {
        self.dominates_in(other, &Metric::ALL)
    }

    /// The worst-possible point: the identity for "take the best of".
    pub fn worst() -> Self {
        AxiomScores {
            efficiency: 0.0,
            fast_utilization: 0.0,
            loss_bound: 1.0,
            fairness: 0.0,
            convergence: 0.0,
            robustness: 0.0,
            tcp_friendliness: 0.0,
            latency_inflation: f64::INFINITY,
        }
    }

    /// Pointwise worst of two score tuples (used when aggregating a
    /// protocol's scores across scenarios: the axioms quantify universally
    /// over configurations, so the protocol's score is its worst case).
    pub fn pointwise_worst(&self, other: &AxiomScores) -> AxiomScores {
        let mut out = *self;
        for m in Metric::ALL {
            let v = if m.higher_is_better() {
                self.get(m).min(other.get(m))
            } else {
                self.get(m).max(other.get(m))
            };
            out.set(m, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AxiomScores {
        AxiomScores {
            efficiency: 0.8,
            fast_utilization: 1.0,
            loss_bound: 0.05,
            fairness: 1.0,
            convergence: 0.6,
            robustness: 0.0,
            tcp_friendliness: 1.0,
            latency_inflation: f64::INFINITY,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = base();
        let b = base();
        assert!(!a.dominates(&b));
        assert!(a.weakly_dominates_in(&b, &Metric::ALL));
    }

    #[test]
    fn better_efficiency_dominates() {
        let a = base();
        let mut b = base();
        b.efficiency = 0.7;
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn lower_loss_bound_is_better() {
        let a = base();
        let mut b = base();
        b.loss_bound = 0.10;
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn tradeoff_means_no_dominance() {
        // The Theorem-2 tension: a is faster-utilizing, b is friendlier.
        let mut a = base();
        a.fast_utilization = 2.0;
        a.tcp_friendliness = 0.5;
        let mut b = base();
        b.fast_utilization = 0.5;
        b.tcp_friendliness = 2.0;
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = base();
        let mut b = base();
        b.convergence = 0.5;
        assert!(a.dominates(&b) && !b.dominates(&a));
    }

    #[test]
    fn restricted_dominance_ignores_other_metrics() {
        let mut a = base();
        a.efficiency = 0.9;
        a.fairness = 0.1; // much worse fairness
        let b = base();
        assert!(a.dominates_in(&b, &[Metric::Efficiency]));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn pointwise_worst_takes_per_metric_worst() {
        let mut a = base();
        a.efficiency = 0.9;
        a.loss_bound = 0.10;
        let b = base();
        let w = a.pointwise_worst(&b);
        assert_eq!(w.efficiency, 0.8);
        assert_eq!(w.loss_bound, 0.10);
    }

    #[test]
    fn get_set_round_trip() {
        let mut s = AxiomScores::worst();
        for (i, m) in Metric::ALL.iter().enumerate() {
            s.set(*m, i as f64);
            assert_eq!(s.get(*m), i as f64);
        }
    }
}
