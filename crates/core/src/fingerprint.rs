//! Stable content fingerprints for experiment inputs.
//!
//! The sweep engine (`axcc-sweep`) caches scenario evaluations under a
//! content address: a 128-bit digest of everything that determines the
//! result — scenario parameters, protocol identity, metric budget, and the
//! engine version. Two runs that feed identical bytes to a
//! [`Fingerprinter`] produce identical [`Digest`]s on every platform and
//! every run, so cached results can be reused across processes; any change
//! to an input (or to the engine-version string mixed in by the runner)
//! changes the digest and forces a recompute.
//!
//! The digest is two independent FNV-1a 64-bit lanes seeded with distinct
//! offset bases. FNV-1a is not cryptographic — it does not need to be; the
//! cache is a private memo table, not a trust boundary — but 128 bits keep
//! accidental collisions out of reach for any realistic sweep size, and
//! the implementation is fully deterministic with no dependencies.
//!
//! Canonical encoding rules (the contract that makes digests stable):
//!
//! * integers are written as fixed-width little-endian bytes;
//! * `f64` values are written as their IEEE-754 bit patterns
//!   ([`f64::to_bits`]), so `-0.0`, `0.0`, infinities and NaN payloads all
//!   fingerprint distinctly and exactly;
//! * strings and byte slices are length-prefixed, so `("ab", "c")` and
//!   `("a", "bc")` cannot collide structurally;
//! * every [`Fingerprint`] impl for a sequence writes its length first.

use crate::link::LinkParams;

/// A 128-bit content digest: two independent 64-bit FNV-1a lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest {
    /// First FNV-1a lane (standard offset basis).
    pub hi: u64,
    /// Second FNV-1a lane (perturbed offset basis).
    pub lo: u64,
}

impl Digest {
    /// Render as 32 lowercase hex digits — the cache's on-disk file name.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse a digest previously rendered by [`Digest::to_hex`].
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest { hi, lo })
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
// Second lane: the standard offset basis XORed with an arbitrary odd
// constant, giving an independent hash of the same byte stream.
const FNV_OFFSET_B: u64 = FNV_OFFSET_A ^ 0x9e37_79b9_7f4a_7c15;

/// Incremental canonical-byte hasher producing a [`Digest`].
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    lane_a: u64,
    lane_b: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// Start a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprinter {
            lane_a: FNV_OFFSET_A,
            lane_b: FNV_OFFSET_B,
        }
    }

    /// Feed raw bytes. Prefer the typed `write_*` methods, which add the
    /// length prefixes that keep adjacent fields from colliding.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane_a = (self.lane_a ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.lane_b = (self.lane_b ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Write one byte (used for enum discriminants / `bool`).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Write a `u64` as fixed-width little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Write a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Write an `f64` as its exact IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Write a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Finish and return the digest. The fingerprinter can keep being fed
    /// afterwards (finishing is non-destructive).
    pub fn finish(&self) -> Digest {
        Digest {
            hi: self.lane_a,
            lo: self.lane_b,
        }
    }
}

/// Types that can feed a canonical byte encoding of themselves to a
/// [`Fingerprinter`]. Implementations must be *stable*: the encoding may
/// only change when the semantic content changes, because cache addresses
/// are derived from it.
pub trait Fingerprint {
    /// Feed this value's canonical bytes.
    fn fingerprint(&self, fp: &mut Fingerprinter);

    /// Digest of this value alone (convenience for tests and keys).
    fn digest(&self) -> Digest {
        let mut fp = Fingerprinter::new();
        self.fingerprint(&mut fp);
        fp.finish()
    }
}

impl Fingerprint for f64 {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_f64(*self);
    }
}

impl Fingerprint for u64 {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_u64(*self);
    }
}

impl Fingerprint for usize {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_usize(*self);
    }
}

impl Fingerprint for bool {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_u8(u8::from(*self));
    }
}

impl Fingerprint for str {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str(self);
    }
}

impl Fingerprint for String {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str(self);
    }
}

impl<T: Fingerprint + ?Sized> Fingerprint for &T {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        (**self).fingerprint(fp);
    }
}

impl<T: Fingerprint> Fingerprint for Option<T> {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        match self {
            None => fp.write_u8(0),
            Some(v) => {
                fp.write_u8(1);
                v.fingerprint(fp);
            }
        }
    }
}

impl<T: Fingerprint> Fingerprint for [T] {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_usize(self.len());
        for item in self {
            item.fingerprint(fp);
        }
    }
}

impl<T: Fingerprint> Fingerprint for Vec<T> {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        self.as_slice().fingerprint(fp);
    }
}

impl<A: Fingerprint, B: Fingerprint> Fingerprint for (A, B) {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        self.0.fingerprint(fp);
        self.1.fingerprint(fp);
    }
}

impl<A: Fingerprint, B: Fingerprint, C: Fingerprint> Fingerprint for (A, B, C) {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        self.0.fingerprint(fp);
        self.1.fingerprint(fp);
        self.2.fingerprint(fp);
    }
}

impl<A: Fingerprint, B: Fingerprint, C: Fingerprint, D: Fingerprint> Fingerprint for (A, B, C, D) {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        self.0.fingerprint(fp);
        self.1.fingerprint(fp);
        self.2.fingerprint(fp);
        self.3.fingerprint(fp);
    }
}

impl Fingerprint for LinkParams {
    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_str("LinkParams");
        fp.write_f64(self.bandwidth);
        fp.write_f64(self.prop_delay);
        fp.write_f64(self.buffer);
        fp.write_f64(self.timeout_delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let a = ("scenario", 3usize, 1.5f64).digest();
        let b = ("scenario", 3usize, 1.5f64).digest();
        assert_eq!(a, b);
    }

    #[test]
    fn any_field_change_alters_digest() {
        let base = ("AIMD(1,0.5)", 4usize, 0.042f64).digest();
        assert_ne!(("AIMD(1,0.5)", 4usize, 0.043f64).digest(), base);
        assert_ne!(("AIMD(1,0.5)", 5usize, 0.042f64).digest(), base);
        assert_ne!(("AIMD(2,0.5)", 4usize, 0.042f64).digest(), base);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        assert_ne!(("ab", "c").digest(), ("a", "bc").digest());
        assert_ne!(vec![1.0f64, 2.0].digest(), vec![1.0f64, 2.0, 0.0].digest());
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        assert_ne!(0.0f64.digest(), (-0.0f64).digest());
        assert_ne!(f64::INFINITY.digest(), f64::MAX.digest());
        assert_ne!(f64::NAN.digest(), f64::INFINITY.digest());
    }

    #[test]
    fn hex_round_trips() {
        let d = ("round", "trip").digest();
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("not-hex"), None);
        assert_eq!(Digest::from_hex("00"), None);
    }

    #[test]
    fn link_params_fingerprint_covers_all_fields() {
        let base = LinkParams::reference();
        let mut other = base;
        other.timeout_delta += 1.0;
        assert_ne!(base.digest(), other.digest());
    }

    #[test]
    fn option_variants_are_distinct() {
        assert_ne!(Some(0.0f64).digest(), None::<f64>.digest());
    }
}
