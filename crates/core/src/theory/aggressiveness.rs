//! The "more aggressive than" relation (paper, Section 4).
//!
//! *"A protocol P is more aggressive than a protocol Q if for any
//! combination of P- and Q-senders, and initial sending rates, from some
//! point in time onwards, the average goodput of any P-sender is higher
//! than that of any Q-sender."*
//!
//! The relation is semantic (quantifying over all mixes and all initial
//! rates); deciding it in general requires simulation, which
//! `axcc-analysis::experiments::theorems` does. This module provides the
//! **syntactic sufficient conditions** within and across the AIMD/BIN/MIMD
//! families that Theorem 4's hypotheses rely on — conservative, documented
//! rules that imply the semantic relation in the fluid model:
//!
//! * AIMD(a₁, b₁) vs AIMD(a₂, b₂): increasing faster *and* yielding less
//!   (a₁ ≥ a₂, b₁ ≥ b₂, one strict) is more aggressive.
//! * MIMD(a, b) with a > 1 is more aggressive than any AIMD: its
//!   multiplicative increase eventually outpaces any additive one, so it
//!   claims an ever-larger share of each sawtooth cycle. (This is the
//!   sense in which the paper treats PCC — "strictly more aggressive than
//!   MIMD(1.01, 0.99)" — as transitively more aggressive than Reno.)
//! * BIN(a, b, k, l) vs AIMD(a′, b′): with k = 0 the binomial increase is
//!   additive with slope a, and the decrease retains (1 − b); so the AIMD
//!   comparison applies with (a, 1 − b) vs (a′, b′). For k > 0 the increase
//!   vanishes at large windows, so no sufficient condition is claimed.

use crate::theory::table1::ProtocolSpec;

/// Conservative sufficient check that `p` is more aggressive than `q` in
/// the fluid model. Returns:
///
/// * `Some(true)` — a documented sufficient condition holds; the semantic
///   relation is guaranteed.
/// * `Some(false)` — the *converse* condition holds (q is more aggressive
///   than p by the same rules).
/// * `None` — the rules are silent; callers should fall back to simulation.
pub fn syntactically_more_aggressive(p: &ProtocolSpec, q: &ProtocolSpec) -> Option<bool> {
    let pa = additive_envelope(p);
    let qa = additive_envelope(q);
    match (pa, qa) {
        (Envelope::Additive { a: a1, retain: b1 }, Envelope::Additive { a: a2, retain: b2 }) => {
            if a1 >= a2 && b1 >= b2 && (a1 > a2 || b1 > b2) {
                Some(true)
            } else if a2 >= a1 && b2 >= b1 && (a2 > a1 || b2 > b1) {
                Some(false)
            } else {
                None
            }
        }
        (Envelope::Multiplicative, Envelope::Additive { .. }) => Some(true),
        (Envelope::Additive { .. }, Envelope::Multiplicative) => Some(false),
        _ => None,
    }
}

/// Whether `p` is (syntactically) more aggressive than Reno = AIMD(1, 0.5) —
/// hypothesis (3) of Theorem 4.
pub fn more_aggressive_than_reno(p: &ProtocolSpec) -> bool {
    syntactically_more_aggressive(p, &ProtocolSpec::RENO) == Some(true)
}

/// Whether a spec is in one of the families Theorem 4 covers
/// (AIMD, BIN, or MIMD) — hypothesis (1).
pub fn in_theorem4_families(p: &ProtocolSpec) -> bool {
    matches!(
        p,
        ProtocolSpec::Aimd { .. } | ProtocolSpec::Bin { .. } | ProtocolSpec::Mimd { .. }
    )
}

/// Growth envelope a spec presents to the comparison rules.
enum Envelope {
    /// Additive increase with slope `a`; multiplicative back-off retaining
    /// `retain` of the window.
    Additive { a: f64, retain: f64 },
    /// Multiplicative (superlinear) increase.
    Multiplicative,
    /// Anything the rules do not cover.
    Unknown,
}

fn additive_envelope(p: &ProtocolSpec) -> Envelope {
    match *p {
        ProtocolSpec::Aimd { a, b } => Envelope::Additive { a, retain: b },
        ProtocolSpec::Bin { a, b, k: 0.0, .. } => Envelope::Additive { a, retain: 1.0 - b },
        ProtocolSpec::Mimd { a, .. } if a > 1.0 => Envelope::Multiplicative,
        _ => Envelope::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalable_aimd_more_aggressive_than_reno() {
        // AIMD(1, 0.875) yields less than Reno's 0.5 back-off.
        assert!(more_aggressive_than_reno(&ProtocolSpec::SCALABLE_AIMD));
    }

    #[test]
    fn faster_additive_increase_is_more_aggressive() {
        let p = ProtocolSpec::Aimd { a: 2.0, b: 0.5 };
        assert_eq!(
            syntactically_more_aggressive(&p, &ProtocolSpec::RENO),
            Some(true)
        );
        // And the relation is antisymmetric.
        assert_eq!(
            syntactically_more_aggressive(&ProtocolSpec::RENO, &p),
            Some(false)
        );
    }

    #[test]
    fn reno_not_more_aggressive_than_itself() {
        assert_eq!(
            syntactically_more_aggressive(&ProtocolSpec::RENO, &ProtocolSpec::RENO),
            None
        );
        assert!(!more_aggressive_than_reno(&ProtocolSpec::RENO));
    }

    #[test]
    fn mimd_dominates_aimd() {
        assert!(more_aggressive_than_reno(&ProtocolSpec::SCALABLE_MIMD));
        // The PCC envelope the paper cites:
        let pcc_envelope = ProtocolSpec::Mimd { a: 1.01, b: 0.99 };
        assert!(more_aggressive_than_reno(&pcc_envelope));
        assert_eq!(
            syntactically_more_aggressive(&ProtocolSpec::RENO, &pcc_envelope),
            Some(false)
        );
    }

    #[test]
    fn incomparable_aimd_pairs_are_none() {
        // Faster increase but deeper back-off: tradeoff, no verdict.
        let p = ProtocolSpec::Aimd { a: 2.0, b: 0.3 };
        assert_eq!(syntactically_more_aggressive(&p, &ProtocolSpec::RENO), None);
    }

    #[test]
    fn bin_k0_maps_to_aimd_comparison() {
        // BIN(2, 0.5, 0, 1): additive slope 2, retains 0.5 — more
        // aggressive than Reno.
        let bin = ProtocolSpec::Bin {
            a: 2.0,
            b: 0.5,
            k: 0.0,
            l: 1.0,
        };
        assert!(more_aggressive_than_reno(&bin));
        // BIN with k > 0: rules are silent.
        let iiad = ProtocolSpec::Bin {
            a: 1.0,
            b: 0.5,
            k: 1.0,
            l: 0.0,
        };
        assert_eq!(
            syntactically_more_aggressive(&iiad, &ProtocolSpec::RENO),
            None
        );
    }

    #[test]
    fn theorem4_family_membership() {
        assert!(in_theorem4_families(&ProtocolSpec::RENO));
        assert!(in_theorem4_families(&ProtocolSpec::SCALABLE_MIMD));
        assert!(in_theorem4_families(&ProtocolSpec::Bin {
            a: 1.0,
            b: 0.5,
            k: 1.0,
            l: 0.0
        }));
        assert!(!in_theorem4_families(&ProtocolSpec::CUBIC_LINUX));
        assert!(!in_theorem4_families(&ProtocolSpec::ROBUST_AIMD_TABLE2));
    }
}
