//! Feasibility of points in the metric space.
//!
//! Section 5.2: *"Not every point in the 8-dimensional space induced by our
//! metrics is feasible, in the sense that there are some points such that
//! no protocol can attain their associated scores."* The theorems of
//! Section 4 carve out the infeasible region; this module packages them as
//! a checker a protocol designer can point at a target score tuple:
//! given the scores you want, which theorem (if any) says no?
//!
//! **Score semantics.** The tuple must hold the protocol's *universal*
//! scores — guarantees across all network parameters, i.e. Table 1's
//! angle-bracket column — because that is what the theorems' hypotheses
//! ("α-fast-utilizing and β-efficient") mean. Feeding a single favorable
//! link's parameterized efficiency into the checker produces spurious
//! Theorem 2 "violations": AIMD(1, 0.5) on a deep-buffered link is
//! 0.64-efficient *there* while being exactly 1-TCP-friendly, but its
//! guaranteed efficiency is only 0.5 — and 3(1−0.5)/(1·1.5) = 1 is tight.

use crate::score::AxiomScores;
use crate::theory::theorems::{
    theorem1_efficiency_lower_bound, theorem2_friendliness_upper_bound,
    theorem3_friendliness_upper_bound,
};

/// A theorem-derived reason a score tuple is infeasible.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasibility {
    /// Claim 1: loss-based + 0-loss + positive fast-utilization.
    Claim1,
    /// Theorem 1: the claimed efficiency is below what convergence +
    /// fast-utilization already guarantee — the tuple is *inconsistent*
    /// (it under-reports a score the other scores imply; a protocol with
    /// these convergence/fast-utilization scores is necessarily more
    /// efficient).
    Theorem1 {
        /// The efficiency the other scores imply.
        implied_efficiency: f64,
    },
    /// Theorem 2: TCP-friendliness exceeds the fast-utilization ×
    /// efficiency cap (loss-based protocols).
    Theorem2 {
        /// The friendliness cap.
        bound: f64,
    },
    /// Theorem 3: TCP-friendliness exceeds the (much tighter) cap once
    /// robustness is positive (loss-based protocols; link-dependent).
    Theorem3 {
        /// The friendliness cap at the given link.
        bound: f64,
    },
    /// Theorem 5: a loss-based protocol with positive efficiency claims
    /// positive friendliness towards a latency-avoiding protocol.
    Theorem5,
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::Claim1 => {
                write!(f, "Claim 1: a loss-based 0-loss protocol cannot be fast-utilizing")
            }
            Infeasibility::Theorem1 { implied_efficiency } => write!(
                f,
                "Theorem 1: convergence + fast-utilization already imply efficiency ≥ {implied_efficiency:.3}"
            ),
            Infeasibility::Theorem2 { bound } => write!(
                f,
                "Theorem 2: TCP-friendliness cannot exceed {bound:.3} at this fast-utilization/efficiency"
            ),
            Infeasibility::Theorem3 { bound } => write!(
                f,
                "Theorem 3: with positive robustness, TCP-friendliness cannot exceed {bound:.5} on this link"
            ),
            Infeasibility::Theorem5 => write!(
                f,
                "Theorem 5: an efficient loss-based protocol cannot be friendly to a latency-avoider"
            ),
        }
    }
}

/// Check a target score tuple for a **loss-based** protocol against every
/// theorem constraint. `c_plus_tau` locates Theorem 3's link-dependent
/// bound; `friendliness_to_latency_avoider` is an optional extra claim
/// checked against Theorem 5. Returns every violated constraint (empty =
/// no theorem in the paper rules the point out — which, the paper is
/// careful to note, does not by itself prove feasibility).
pub fn infeasibilities_loss_based(
    scores: &AxiomScores,
    c_plus_tau: f64,
    friendliness_to_latency_avoider: Option<f64>,
) -> Vec<Infeasibility> {
    let mut out = Vec::new();

    // Claim 1.
    if scores.loss_bound <= 0.0 && scores.fast_utilization > 0.0 {
        out.push(Infeasibility::Claim1);
    }

    // Theorem 1 (consistency direction).
    if scores.fast_utilization > 0.0 && (0.0..=1.0).contains(&scores.convergence) {
        let implied = theorem1_efficiency_lower_bound(scores.convergence);
        if scores.efficiency < implied - 1e-9 {
            out.push(Infeasibility::Theorem1 {
                implied_efficiency: implied,
            });
        }
    }

    // Theorem 2.
    if scores.fast_utilization > 0.0 && (0.0..=1.0).contains(&scores.efficiency) {
        let bound = theorem2_friendliness_upper_bound(scores.fast_utilization, scores.efficiency);
        if scores.tcp_friendliness > bound + 1e-9 {
            out.push(Infeasibility::Theorem2 { bound });
        }
    }

    // Theorem 3 (strictly tighter than Theorem 2 when robustness > 0).
    if scores.robustness > 0.0
        && scores.robustness < 1.0
        && scores.fast_utilization > 0.0
        && (0.0..=1.0).contains(&scores.efficiency)
        && c_plus_tau > scores.fast_utilization / 2.0
    {
        let bound = theorem3_friendliness_upper_bound(
            scores.fast_utilization,
            scores.efficiency,
            scores.robustness,
            c_plus_tau,
        );
        if scores.tcp_friendliness > bound + 1e-9 {
            out.push(Infeasibility::Theorem3 { bound });
        }
    }

    // Theorem 5.
    if let Some(beta) = friendliness_to_latency_avoider {
        if scores.efficiency > 0.0 && beta > 0.0 {
            out.push(Infeasibility::Theorem5);
        }
    }

    out
}

/// Whether no theorem rules the (loss-based) point out.
pub fn is_consistent_loss_based(scores: &AxiomScores, c_plus_tau: f64) -> bool {
    infeasibilities_loss_based(scores, c_plus_tau, None).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::table1::ProtocolSpec;

    const CT: f64 = 450.0;

    fn reno_point() -> AxiomScores {
        // Reno's universal (angle-bracket) Table 1 row.
        ProtocolSpec::RENO.scores_worst()
    }

    #[test]
    fn every_table1_worst_case_row_is_consistent() {
        // The paper's own protocols' universal scores must never violate
        // the paper's own theorems.
        for spec in [
            ProtocolSpec::RENO,
            ProtocolSpec::SCALABLE_MIMD,
            ProtocolSpec::SCALABLE_AIMD,
            ProtocolSpec::CUBIC_LINUX,
            ProtocolSpec::ROBUST_AIMD_TABLE2,
            ProtocolSpec::Bin {
                a: 1.0,
                b: 0.5,
                k: 1.0,
                l: 0.0,
            },
        ] {
            let scores = spec.scores_worst();
            let v = infeasibilities_loss_based(&scores, CT, None);
            assert!(v.is_empty(), "{spec:?}: {v:?}");
        }
    }

    #[test]
    fn parameterized_rows_must_not_be_fed_to_the_checker() {
        // The documented misuse: a favorable link's parameterized
        // efficiency (0.64 for Reno at C=350, τ=100) combined with the
        // universal friendliness 1.0 trips Theorem 2 — evidence that the
        // theorem's β is the universal score, not a per-link one.
        let parameterized = ProtocolSpec::RENO.scores(350.0, 100.0, 2.0);
        let v = infeasibilities_loss_based(&parameterized, CT, None);
        assert!(
            v.iter()
                .any(|i| matches!(i, Infeasibility::Theorem2 { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn claim1_combination_is_caught() {
        let mut s = reno_point();
        s.loss_bound = 0.0; // claims 0-loss
        let v = infeasibilities_loss_based(&s, CT, None);
        assert!(v.contains(&Infeasibility::Claim1), "{v:?}");
    }

    #[test]
    fn theorem1_inconsistency_is_caught() {
        let mut s = reno_point();
        // Convergence 0.9 implies efficiency ≥ 0.818; claim only 0.5.
        s.convergence = 0.9;
        s.efficiency = 0.5;
        let v = infeasibilities_loss_based(&s, CT, None);
        assert!(
            v.iter()
                .any(|i| matches!(i, Infeasibility::Theorem1 { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn theorem2_greedy_point_is_caught() {
        // The "have it all" point: fast, efficient AND fully friendly.
        let mut s = reno_point();
        s.fast_utilization = 2.0;
        s.efficiency = 0.9;
        s.tcp_friendliness = 1.0; // cap is 3·0.1/(2·1.9) ≈ 0.079
        let v = infeasibilities_loss_based(&s, CT, None);
        assert!(
            v.iter()
                .any(|i| matches!(i, Infeasibility::Theorem2 { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn theorem3_robust_and_friendly_is_caught() {
        // Robust-AIMD's universal scores but claiming AIMD-level
        // friendliness.
        let mut s = ProtocolSpec::ROBUST_AIMD_TABLE2.scores_worst();
        s.tcp_friendliness = 0.3;
        let v = infeasibilities_loss_based(&s, CT, None);
        assert!(
            v.iter()
                .any(|i| matches!(i, Infeasibility::Theorem3 { .. })),
            "{v:?}"
        );
        // The same friendliness without robustness is fine (Theorem 2's
        // cap at a=1, b=0.8 is 0.333).
        s.robustness = 0.0;
        let v = infeasibilities_loss_based(&s, CT, None);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn theorem5_claim_is_caught() {
        let s = reno_point();
        let v = infeasibilities_loss_based(&s, CT, Some(0.2));
        assert!(v.contains(&Infeasibility::Theorem5));
        // Claiming zero friendliness towards the latency-avoider is fine.
        let v = infeasibilities_loss_based(&s, CT, Some(0.0));
        assert!(!v.contains(&Infeasibility::Theorem5));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let mut s = reno_point();
        s.loss_bound = 0.0;
        s.fast_utilization = 3.0;
        s.efficiency = 0.95;
        s.tcp_friendliness = 2.0;
        let v = infeasibilities_loss_based(&s, CT, Some(0.5));
        assert!(v.len() >= 3, "{v:?}");
    }

    #[test]
    fn display_messages_name_the_theorem() {
        let msgs: Vec<String> = infeasibilities_loss_based(
            &{
                let mut s = reno_point();
                s.loss_bound = 0.0;
                s
            },
            CT,
            None,
        )
        .iter()
        .map(|i| i.to_string())
        .collect();
        assert!(msgs.iter().any(|m| m.contains("Claim 1")), "{msgs:?}");
    }
}
