//! The paper's theoretical results, as executable formulas.
//!
//! * [`table1`] — every cell of Table 1 ("Protocol Characterization"): the
//!   parameterized (link-dependent) scores and the worst-case bounds in
//!   angle brackets, for AIMD, MIMD, BIN, CUBIC and Robust-AIMD.
//! * [`theorems`] — Claim 1 and Theorems 1–5 of Section 4, each as a bound
//!   function plus a checkable proposition that the experiment harness and
//!   the property-test suites evaluate against simulated protocols.
//! * [`aggressiveness`] — the "more aggressive than" relation of Section 4,
//!   with the syntactic sufficient conditions used by Theorem 4.
//! * [`feasibility`] — the Section 5.2 feasibility question as a checker:
//!   which theorem (if any) rules a target score tuple out.

pub mod aggressiveness;
pub mod feasibility;
pub mod table1;
pub mod theorems;

pub use table1::ProtocolSpec;
