//! Claim 1 and Theorems 1–5 of Section 4, as executable bound functions and
//! checkable propositions.
//!
//! Every bound here is exercised twice in this repository: by unit tests
//! against the closed forms (this module) and by the experiment harness in
//! `axcc-analysis`, which simulates protocols and verifies their *measured*
//! scores respect the bounds (`check-theorems` binary; property tests).

/// **Claim 1.** *"Any loss-based protocol that is 0-loss is not
/// α-fast-utilizing for any α > 0."*
///
/// Returns `true` when the score combination is ruled out by the claim —
/// i.e. the protocol is loss-based, incurs no loss in steady state, and
/// claims a positive fast-utilization score. A loss-based protocol that is
/// α-fast-utilizing must, after a long enough loss-free stretch, keep
/// growing its window until it induces loss again; so it cannot be 0-loss.
pub fn claim1_violated(loss_based: bool, zero_loss: bool, fast_utilization: f64) -> bool {
    loss_based && zero_loss && fast_utilization > 0.0
}

/// **Theorem 1.** *"Any protocol that is α-convergent and β-fast-utilizing,
/// for some β > 0, is at least α/(2−α)-efficient."*
///
/// Returns the guaranteed efficiency lower bound.
///
/// Intuition: convergence pins every window within `[α·x*, (2−α)·x*]`;
/// positive fast-utilization forces the dynamics to keep pushing into the
/// link until loss/queueing constrains it near capacity, so the fixed point
/// satisfies `(2−α)·X* ≥ C` and the floor `α·X* ≥ αC/(2−α)` follows.
pub fn theorem1_efficiency_lower_bound(alpha_convergent: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&alpha_convergent),
        "convergence score must be in [0,1]"
    );
    alpha_convergent / (2.0 - alpha_convergent)
}

/// **Theorem 2.** *"Any loss-based protocol that is α-fast-utilizing and
/// β-efficient is at most 3(1−β)/(α(1+β))-TCP-friendly."*
///
/// Returns the TCP-friendliness upper bound. The bound is **tight**:
/// AIMD(α, β) attains it (paper, citing Cai et al.).
///
/// ```
/// use axcc_core::theory::theorems::theorem2_friendliness_upper_bound;
/// // Reno's own coordinates (α = 1, β = 0.5) allow exactly friendliness 1:
/// assert!((theorem2_friendliness_upper_bound(1.0, 0.5) - 1.0).abs() < 1e-12);
/// // Doubling the additive increase halves the permissible friendliness:
/// assert!((theorem2_friendliness_upper_bound(2.0, 0.5) - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics for `alpha_fast ≤ 0` (the theorem presumes positive
/// fast-utilization) or `beta_efficient` outside `[0, 1]`.
pub fn theorem2_friendliness_upper_bound(alpha_fast: f64, beta_efficient: f64) -> f64 {
    assert!(alpha_fast > 0.0, "theorem 2 requires α > 0");
    assert!(
        (0.0..=1.0).contains(&beta_efficient),
        "efficiency must be in [0,1]"
    );
    3.0 * (1.0 - beta_efficient) / (alpha_fast * (1.0 + beta_efficient))
}

/// **Theorem 3.** *"Any loss-based protocol that is α-fast-utilizing,
/// β-efficient, and ε-robust, for ε > 0, is at most
/// 3(1−β) / ((4·(C+τ)/(1−ε) − α)·(1+β))-TCP-friendly."*
/// (Footnote: assumes `C + τ > α/2`.)
///
/// Unlike Theorems 1–2, this bound depends explicitly on the link
/// (`c_plus_tau = C + τ`). Robustness is *expensive*: the bound shrinks
/// roughly as `1/(C+τ)`, so a robust protocol on a fat link is necessarily
/// very unfriendly (or conversely must give up robustness).
///
/// ```
/// use axcc_core::theory::theorems::{
///     theorem2_friendliness_upper_bound, theorem3_friendliness_upper_bound,
/// };
/// // At Robust-AIMD(1, 0.8, 0.01)'s coordinates on a 450-MSS link, the
/// // robustness requirement costs three orders of magnitude of headroom:
/// let t2 = theorem2_friendliness_upper_bound(1.0, 0.8);
/// let t3 = theorem3_friendliness_upper_bound(1.0, 0.8, 0.01, 450.0);
/// assert!(t3 < t2 / 100.0);
/// ```
///
/// # Panics
///
/// Panics when the footnote's assumption `C + τ > α/2` fails, or for
/// parameters outside their domains.
pub fn theorem3_friendliness_upper_bound(
    alpha_fast: f64,
    beta_efficient: f64,
    eps_robust: f64,
    c_plus_tau: f64,
) -> f64 {
    assert!(alpha_fast > 0.0, "theorem 3 requires α > 0");
    assert!(
        (0.0..=1.0).contains(&beta_efficient),
        "efficiency must be in [0,1]"
    );
    assert!(
        eps_robust > 0.0 && eps_robust < 1.0,
        "theorem 3 requires ε ∈ (0,1)"
    );
    assert!(
        c_plus_tau > alpha_fast / 2.0,
        "theorem 3 assumes C + τ > α/2"
    );
    let denom = (4.0 * c_plus_tau / (1.0 - eps_robust) - alpha_fast) * (1.0 + beta_efficient);
    3.0 * (1.0 - beta_efficient) / denom
}

/// **Theorem 4.** *"Let P and Q be two protocols such that (1) each protocol
/// is either AIMD, BIN, or MIMD, (2) P is α-TCP-friendly, and (3) Q is more
/// aggressive than Reno. Then, P is α-friendly to Q."*
///
/// Given that the hypotheses hold, the conclusion transfers P's friendliness
/// score verbatim; this helper just encodes the transfer so harness code
/// reads like the theorem.
pub fn theorem4_transferred_friendliness(
    hypotheses_hold: bool,
    alpha_tcp_friendly: f64,
) -> Option<f64> {
    hypotheses_hold.then_some(alpha_tcp_friendly)
}

/// **Theorem 5.** *"A loss-based protocol that is α-efficient, for any
/// α > 0, is not β-friendly, for any β > 0, with respect to any protocol
/// that is γ-latency avoiding, for any γ > 0."*
///
/// Returns `true` when a claimed score combination contradicts the theorem:
/// a loss-based, positively-efficient protocol claiming positive
/// friendliness towards a latency-avoiding protocol. (Intuition, after Mo
/// et al. on Reno vs Vegas: the loss-based sender keeps growing until the
/// buffer fills; the latency-avoider backs off as soon as RTT exceeds its
/// bound, and is eventually squeezed to nothing.)
pub fn theorem5_violated(
    loss_based: bool,
    alpha_efficient: f64,
    beta_friendly_to_latency_avoider: f64,
) -> bool {
    loss_based && alpha_efficient > 0.0 && beta_friendly_to_latency_avoider > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::table1::ProtocolSpec;

    #[test]
    fn claim1_rules_out_the_right_combinations() {
        assert!(claim1_violated(true, true, 1.0));
        assert!(!claim1_violated(true, true, 0.0)); // not fast-utilizing: fine
        assert!(!claim1_violated(true, false, 1.0)); // incurs loss: fine
        assert!(!claim1_violated(false, true, 1.0)); // delay-based: exempt
    }

    #[test]
    fn theorem1_bound_values() {
        assert_eq!(theorem1_efficiency_lower_bound(0.0), 0.0);
        assert_eq!(theorem1_efficiency_lower_bound(1.0), 1.0);
        // α = 2/3 (Reno's convergence score) ⇒ efficiency ≥ 0.5 — exactly
        // Reno's worst-case efficiency in Table 1. The bound is consistent.
        let reno_conv = 2.0 / 3.0;
        let bound = theorem1_efficiency_lower_bound(reno_conv);
        assert!((bound - 0.5).abs() < 1e-12);
        assert!(ProtocolSpec::RENO.efficiency_worst() >= bound - 1e-12);
    }

    #[test]
    fn theorem1_monotone() {
        let mut prev = -1.0;
        for i in 0..=10 {
            let a = i as f64 / 10.0;
            let b = theorem1_efficiency_lower_bound(a);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "convergence score")]
    fn theorem1_rejects_out_of_range() {
        theorem1_efficiency_lower_bound(1.5);
    }

    #[test]
    fn theorem2_tight_for_aimd() {
        // AIMD(a, b) is a-fast-utilizing, (worst-case) b-efficient, and
        // exactly 3(1−b)/(a(1+b))-TCP-friendly: the bound is attained.
        for (a, b) in [(1.0, 0.5), (2.0, 0.5), (1.0, 0.8), (0.5, 0.9)] {
            let spec = ProtocolSpec::Aimd { a, b };
            let bound = theorem2_friendliness_upper_bound(a, b);
            let actual = spec.tcp_friendliness_worst();
            assert!((bound - actual).abs() < 1e-12, "a={a} b={b}");
        }
    }

    #[test]
    fn theorem2_tradeoffs() {
        // Faster utilization ⇒ lower permissible friendliness.
        assert!(
            theorem2_friendliness_upper_bound(2.0, 0.5)
                < theorem2_friendliness_upper_bound(1.0, 0.5)
        );
        // Higher efficiency ⇒ lower permissible friendliness.
        assert!(
            theorem2_friendliness_upper_bound(1.0, 0.9)
                < theorem2_friendliness_upper_bound(1.0, 0.5)
        );
        // Perfect efficiency ⇒ zero friendliness allowed.
        assert_eq!(theorem2_friendliness_upper_bound(1.0, 1.0), 0.0);
    }

    #[test]
    fn theorem3_bound_matches_robust_aimd_row() {
        // Robust-AIMD(a, b, ε)'s Table 1 friendliness equals the Theorem 3
        // bound at α = a, β = b, ε = ε ("cannot be improved upon …
        // and thus lies on the Pareto frontier").
        let (a, b, eps) = (1.0, 0.8, 0.01);
        let ct = 450.0;
        let spec = ProtocolSpec::RobustAimd { a, b, eps };
        let bound = theorem3_friendliness_upper_bound(a, b, eps, ct);
        let c = 350.0;
        let tau = 100.0;
        assert!((spec.tcp_friendliness(c, tau) - bound).abs() < 1e-12);
    }

    #[test]
    fn theorem3_much_stricter_than_theorem2() {
        // On a 450-MSS link, robustness costs orders of magnitude of
        // friendliness headroom.
        let t2 = theorem2_friendliness_upper_bound(1.0, 0.8);
        let t3 = theorem3_friendliness_upper_bound(1.0, 0.8, 0.01, 450.0);
        assert!(t3 < t2 / 100.0, "t2={t2} t3={t3}");
    }

    #[test]
    fn theorem3_bound_shrinks_with_link_size() {
        let small = theorem3_friendliness_upper_bound(1.0, 0.8, 0.01, 50.0);
        let big = theorem3_friendliness_upper_bound(1.0, 0.8, 0.01, 5000.0);
        assert!(big < small);
    }

    #[test]
    fn theorem3_bound_shrinks_with_robustness() {
        let low = theorem3_friendliness_upper_bound(1.0, 0.8, 0.01, 450.0);
        let high = theorem3_friendliness_upper_bound(1.0, 0.8, 0.5, 450.0);
        assert!(high < low);
    }

    #[test]
    #[should_panic(expected = "C + τ > α/2")]
    fn theorem3_footnote_assumption() {
        theorem3_friendliness_upper_bound(10.0, 0.5, 0.01, 4.0);
    }

    #[test]
    fn theorem4_transfers_only_under_hypotheses() {
        assert_eq!(theorem4_transferred_friendliness(true, 0.7), Some(0.7));
        assert_eq!(theorem4_transferred_friendliness(false, 0.7), None);
    }

    #[test]
    fn theorem5_rules_out_loss_based_vs_latency_avoiders() {
        assert!(theorem5_violated(true, 0.5, 0.1));
        assert!(!theorem5_violated(false, 0.5, 0.1)); // delay-based P: fine
        assert!(!theorem5_violated(true, 0.0, 0.1)); // zero efficiency: fine
        assert!(!theorem5_violated(true, 0.5, 0.0)); // claims no friendliness
    }
}
