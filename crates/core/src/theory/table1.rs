//! Table 1 of the paper: closed-form characterization of the five protocol
//! families in the eight-metric space.
//!
//! Each cell exists in up to two forms:
//!
//! * the **parameterized** score, a function of the link capacity `C`,
//!   buffer `τ`, and number of senders `n` — the "more nuanced results
//!   reflecting the dependence on these parameters";
//! * the **worst-case** bound "across all choices of network parameters
//!   (e.g., very shallow buffer, very high number of senders, etc.)",
//!   printed in angle brackets in the paper.
//!
//! Latency-avoidance is omitted from the table ("as all protocols considered
//! are loss-based, their scores for latency avoidance are unbounded"), and
//! robustness is 0 for every family except Robust-AIMD(a, b, ε), which is
//! ε-robust.

use crate::score::AxiomScores;
use serde::{Deserialize, Serialize};

/// A member of one of the protocol families characterized by Table 1.
///
/// This is the *analytic* description of a protocol — enough to evaluate
/// every Table 1 formula. The executable implementations (the actual
/// window-update rules) live in `axcc-protocols`, whose constructors accept
/// a `ProtocolSpec` so the two always agree on parameters.
///
/// ```
/// use axcc_core::theory::ProtocolSpec;
/// // Reno's angle-bracket row: <b>-efficient, <a>-fast, exactly
/// // 3(1−b)/(a(1+b)) = 1 TCP-friendly, <2b/(1+b)>-convergent.
/// let row = ProtocolSpec::RENO.scores_worst();
/// assert_eq!(row.efficiency, 0.5);
/// assert_eq!(row.fast_utilization, 1.0);
/// assert!((row.tcp_friendliness - 1.0).abs() < 1e-12);
/// assert!((row.convergence - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProtocolSpec {
    /// AIMD(a, b): `x += a` on no loss, `x ← b·x` on loss. TCP Reno is
    /// AIMD(1, 0.5).
    Aimd {
        /// Additive increase per RTT (MSS).
        a: f64,
        /// Multiplicative decrease factor in (0, 1).
        b: f64,
    },
    /// MIMD(a, b): `x ← a·x` on no loss (a > 1), `x ← b·x` on loss. TCP
    /// Scalable is MIMD(1.01, 0.875) in some environments.
    Mimd {
        /// Multiplicative increase factor (> 1).
        a: f64,
        /// Multiplicative decrease factor in (0, 1).
        b: f64,
    },
    /// Binomial BIN(a, b, k, l): `x += a/x^k` on no loss,
    /// `x −= b·x^l` on loss. IIAD is (k=1, l=0); SQRT is (k=l=1/2);
    /// AIMD is (k=0, l=1).
    Bin {
        /// Increase numerator a > 0.
        a: f64,
        /// Decrease coefficient 0 < b ≤ 1.
        b: f64,
        /// Increase exponent k ≥ 0.
        k: f64,
        /// Decrease exponent l ∈ [0, 1].
        l: f64,
    },
    /// CUBIC(c, b): cubic window growth anchored at the last-loss window
    /// `x_max`, decrease to `b·x_max` on loss. Linux Cubic is CUBIC(0.4, 0.8)
    /// in the paper's parameterization.
    Cubic {
        /// Scaling factor c > 0.
        c: f64,
        /// Rate-decrease factor b ∈ (0, 1).
        b: f64,
    },
    /// Robust-AIMD(a, b, ε): `x += a` if the monitored loss rate is below
    /// ε, `x ← b·x` otherwise (paper, Section 5.2). ε-robust by design.
    RobustAimd {
        /// Additive increase per monitor interval (MSS).
        a: f64,
        /// Multiplicative decrease factor in (0, 1).
        b: f64,
        /// Loss-rate tolerance ε ∈ [0, 1).
        eps: f64,
    },
}

impl ProtocolSpec {
    /// TCP Reno: AIMD(1, 0.5) — the reference protocol for Metric VII.
    pub const RENO: ProtocolSpec = ProtocolSpec::Aimd { a: 1.0, b: 0.5 };

    /// Linux Cubic as the paper parameterizes it: CUBIC(0.4, 0.8).
    pub const CUBIC_LINUX: ProtocolSpec = ProtocolSpec::Cubic { c: 0.4, b: 0.8 };

    /// TCP Scalable in its MIMD incarnation: MIMD(1.01, 0.875).
    pub const SCALABLE_MIMD: ProtocolSpec = ProtocolSpec::Mimd { a: 1.01, b: 0.875 };

    /// TCP Scalable in its AIMD incarnation: AIMD(1, 0.875)
    /// ("in some environments and AIMD(1,0.875) in others").
    pub const SCALABLE_AIMD: ProtocolSpec = ProtocolSpec::Aimd { a: 1.0, b: 0.875 };

    /// The Robust-AIMD instance evaluated in Table 2: Robust-AIMD(1, 0.8, 0.01).
    pub const ROBUST_AIMD_TABLE2: ProtocolSpec = ProtocolSpec::RobustAimd {
        a: 1.0,
        b: 0.8,
        eps: 0.01,
    };

    /// Display name matching the paper's notation.
    pub fn name(&self) -> String {
        match *self {
            ProtocolSpec::Aimd { a, b } => format!("AIMD({a},{b})"),
            ProtocolSpec::Mimd { a, b } => format!("MIMD({a},{b})"),
            ProtocolSpec::Bin { a, b, k, l } => format!("BIN({a},{b},{k},{l})"),
            ProtocolSpec::Cubic { c, b } => format!("CUBIC({c},{b})"),
            ProtocolSpec::RobustAimd { a, b, eps } => format!("R-AIMD({a},{b},{eps})"),
        }
    }

    /// The effective multiplicative-decrease factor: the fraction of the
    /// window retained after a loss-triggered back-off. For BIN the
    /// decrease `x − b·x^l` is window-dependent; Table 1's efficiency row
    /// uses the `l = 1` form `(1 − b)`.
    fn retain_factor(&self) -> f64 {
        match *self {
            ProtocolSpec::Aimd { b, .. }
            | ProtocolSpec::Mimd { b, .. }
            | ProtocolSpec::Cubic { c: _, b } => b,
            ProtocolSpec::Bin { b, .. } => 1.0 - b,
            ProtocolSpec::RobustAimd { b, .. } => b,
        }
    }

    // ----- Metric I: efficiency -------------------------------------------

    /// Parameterized efficiency: the dip of the sawtooth relative to `C`.
    /// After backing off from the loss threshold `C + τ`, the total window
    /// is `retain·(C + τ)`, i.e. `min(1, retain·(1 + τ/C))` of capacity.
    /// Robust-AIMD backs off from `(C + τ)/(1 − ε)` instead (it tolerates
    /// loss rate ε before reacting), hence the `1/(1 − ε)` boost.
    pub fn efficiency(&self, c: f64, tau: f64) -> f64 {
        let base = self.retain_factor() * (1.0 + tau / c);
        let boosted = match *self {
            ProtocolSpec::RobustAimd { eps, .. } => base / (1.0 - eps),
            _ => base,
        };
        boosted.min(1.0)
    }

    /// Worst-case efficiency (`τ → 0`): `<b>` for AIMD/MIMD/CUBIC,
    /// `<1 − b>` for BIN, `<b/(1 − ε)>` for Robust-AIMD.
    pub fn efficiency_worst(&self) -> f64 {
        match *self {
            ProtocolSpec::RobustAimd { b, eps, .. } => (b / (1.0 - eps)).min(1.0),
            _ => self.retain_factor().min(1.0),
        }
    }

    // ----- Metric III: loss-avoidance -------------------------------------

    /// Parameterized loss bound: the residual loss rate at the top of the
    /// sawtooth, when `n` senders overshoot the threshold `C + τ` by one
    /// aggregate increase step.
    ///
    /// * AIMD: overshoot `n·a` ⇒ `1 − (C+τ)/(C+τ+na)`.
    /// * CUBIC: Table 1 uses the aggregate step `n·c` ⇒ `1 − (C+τ)/(C+τ+nc)`.
    /// * BIN: per-sender increase near the fair share `x = (C+τ)/n` is
    ///   `a/x^k`, so the aggregate overshoot is `n·a·(n/(C+τ))^k`.
    ///   (The published table prints this cell as
    ///   `1 − (C+τ)/(C+τ + a((C+τ)/n)^k)`, which does not reduce to the
    ///   AIMD row at `k = 0`; we implement the derivation-consistent form,
    ///   which does. The worst-case bound `<1>` is identical either way.)
    /// * MIMD: the overshoot is a *factor*, not an increment: the last
    ///   loss-free total is at most `C + τ`, the next is at most `a` times
    ///   that, so `L ≤ 1 − 1/a = (a−1)/a`, independent of the link. (The
    ///   published cell prints `a/(1+a)`, which is this same quantity under
    ///   the increment convention `x ← (1+a)x`; we normalize to the factor
    ///   convention `x ← ax` that MIMD(1.01, 0.875) — TCP Scalable — uses,
    ///   so the formula and the executable protocol agree.)
    /// * Robust-AIMD: tolerates loss ε before backing off, so the peak is
    ///   `(C+τ)/(1−ε) + n·a`, giving `((C+τ)ε + na(1−ε)) / ((C+τ) + na(1−ε))`.
    pub fn loss_bound(&self, c: f64, tau: f64, n: f64) -> f64 {
        let ct = c + tau;
        match *self {
            ProtocolSpec::Aimd { a, .. } => 1.0 - ct / (ct + n * a),
            ProtocolSpec::Cubic { c: cc, .. } => 1.0 - ct / (ct + n * cc),
            ProtocolSpec::Bin { a, k, .. } => {
                let overshoot = n * a * (n / ct).powf(k);
                1.0 - ct / (ct + overshoot)
            }
            ProtocolSpec::Mimd { a, .. } => (a - 1.0) / a,
            ProtocolSpec::RobustAimd { a, eps, .. } => {
                (ct * eps + n * a * (1.0 - eps)) / (ct + n * a * (1.0 - eps))
            }
        }
    }

    /// Worst-case loss bound (`n → ∞`): `<1>` for all additive-increase
    /// families; for MIMD the factor-overshoot bound `(a−1)/a` is already
    /// link- and `n`-independent (see [`Self::loss_bound`] for the
    /// convention note).
    pub fn loss_bound_worst(&self) -> f64 {
        match *self {
            ProtocolSpec::Mimd { a, .. } => (a - 1.0) / a,
            _ => 1.0,
        }
    }

    // ----- Metric II: fast-utilization ------------------------------------

    /// Worst-case fast-utilization: `<a>` for AIMD and Robust-AIMD, `<∞>`
    /// for MIMD ("its rate increases superlinearly"), `<c>` for CUBIC,
    /// `<a>` for BIN with `k = 0` and `<0>` for `k > 0` (the increase
    /// `a/x^k` vanishes for large windows).
    pub fn fast_utilization_worst(&self) -> f64 {
        match *self {
            ProtocolSpec::Aimd { a, .. } | ProtocolSpec::RobustAimd { a, .. } => a,
            ProtocolSpec::Mimd { .. } => f64::INFINITY,
            ProtocolSpec::Cubic { c, .. } => c,
            ProtocolSpec::Bin { k: 0.0, a, .. } => a,
            ProtocolSpec::Bin { .. } => 0.0,
        }
    }

    // ----- Metric VII: TCP-friendliness ------------------------------------

    /// Parameterized TCP-friendliness (towards Reno = AIMD(1, 0.5)).
    ///
    /// * AIMD: `3(1−b)/(a(1+b))` — link-independent (also the worst case);
    ///   this is the tight bound of Theorem 2 [Cai et al.].
    /// * MIMD: `2·log_a(1/b) / (C+τ − 2·log_a(1/b))` — vanishes on fast
    ///   links, worst case `<0>`.
    /// * BIN: `√(3/2)·(b/a)^{1/(1+l+k)}` if `l + k ≥ 1`, else 0
    ///   (from Bansal–Balakrishnan: only `l + k ≥ 1` binomial protocols can
    ///   be TCP-friendly).
    /// * CUBIC: `√(3/2)·(4(1−b)/(c(3+b)(C+τ)))^{1/4}`, worst case `<0>`.
    /// * Robust-AIMD: `3(1−b)/((4(C+τ)/(1−ε) − a)(1+b))` — the Theorem 3
    ///   bound, worst case `<0>`.
    pub fn tcp_friendliness(&self, c: f64, tau: f64) -> f64 {
        let ct = c + tau;
        match *self {
            ProtocolSpec::Aimd { a, b } => 3.0 * (1.0 - b) / (a * (1.0 + b)),
            ProtocolSpec::Mimd { a, b } => {
                let steps = 2.0 * (1.0 / b).ln() / a.ln();
                if ct <= steps {
                    f64::INFINITY
                } else {
                    steps / (ct - steps)
                }
            }
            ProtocolSpec::Bin { a, b, k, l } => {
                if l + k >= 1.0 {
                    (3.0f64 / 2.0).sqrt() * (b / a).powf(1.0 / (1.0 + l + k))
                } else {
                    0.0
                }
            }
            ProtocolSpec::Cubic { c: cc, b } => {
                (3.0f64 / 2.0).sqrt() * (4.0 * (1.0 - b) / (cc * (3.0 + b) * ct)).powf(0.25)
            }
            ProtocolSpec::RobustAimd { a, b, eps } => {
                3.0 * (1.0 - b) / ((4.0 * ct / (1.0 - eps) - a) * (1.0 + b))
            }
        }
    }

    /// Worst-case TCP-friendliness: the AIMD value is link-independent;
    /// every other family degrades to `<0>` on large links, except BIN with
    /// `l + k ≥ 1`, whose bound is link-independent too.
    pub fn tcp_friendliness_worst(&self) -> f64 {
        match *self {
            ProtocolSpec::Aimd { a, b } => 3.0 * (1.0 - b) / (a * (1.0 + b)),
            ProtocolSpec::Bin { a, b, k, l } if l + k >= 1.0 => {
                (3.0f64 / 2.0).sqrt() * (b / a).powf(1.0 / (1.0 + l + k))
            }
            _ => 0.0,
        }
    }

    // ----- Metrics IV, V, VI ----------------------------------------------

    /// Worst-case fairness: `<1>` for every family except MIMD, whose
    /// multiplicative increase preserves initial imbalances (`<0>`).
    pub fn fairness_worst(&self) -> f64 {
        match *self {
            ProtocolSpec::Mimd { .. } => 0.0,
            _ => 1.0,
        }
    }

    /// Worst-case convergence: `<2b/(1+b)>` for the multiplicative-decrease
    /// families (the sawtooth oscillates between `b·W` and `W`), and
    /// `<(2−2b)/(2−b)>` for BIN (whose decrease retains `1 − b`).
    pub fn convergence_worst(&self) -> f64 {
        match *self {
            ProtocolSpec::Bin { b, .. } => (2.0 - 2.0 * b) / (2.0 - b),
            _ => {
                let b = self.retain_factor();
                2.0 * b / (1.0 + b)
            }
        }
    }

    /// Robustness to non-congestion loss: ε for Robust-AIMD, 0 for all
    /// classical families ("all protocols are 0-robust, with the exception
    /// of Robust-AIMD(a, b, k), which is k-robust").
    pub fn robustness(&self) -> f64 {
        match *self {
            ProtocolSpec::RobustAimd { eps, .. } => eps,
            _ => 0.0,
        }
    }

    // ----- Assembled rows ---------------------------------------------------

    /// The parameterized Table 1 row for a given link (`C`, `τ`) and sender
    /// count `n`. Latency inflation is unbounded — all five families are
    /// loss-based.
    pub fn scores(&self, c: f64, tau: f64, n: f64) -> AxiomScores {
        AxiomScores {
            efficiency: self.efficiency(c, tau),
            fast_utilization: self.fast_utilization_worst(),
            loss_bound: self.loss_bound(c, tau, n),
            fairness: self.fairness_worst(),
            convergence: self.convergence_worst(),
            robustness: self.robustness(),
            tcp_friendliness: self.tcp_friendliness(c, tau),
            latency_inflation: f64::INFINITY,
        }
    }

    /// The worst-case (angle-bracket) Table 1 row.
    pub fn scores_worst(&self) -> AxiomScores {
        AxiomScores {
            efficiency: self.efficiency_worst(),
            fast_utilization: self.fast_utilization_worst(),
            loss_bound: self.loss_bound_worst(),
            fairness: self.fairness_worst(),
            convergence: self.convergence_worst(),
            robustness: self.robustness(),
            tcp_friendliness: self.tcp_friendliness_worst(),
            latency_inflation: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 350.0; // 100 Mbps × 42 ms
    const TAU: f64 = 100.0;

    #[test]
    fn reno_row() {
        let reno = ProtocolSpec::RENO;
        // Efficiency: min(1, 0.5·(1 + 100/350)) = 0.6428…
        assert!((reno.efficiency(C, TAU) - 0.5 * (1.0 + TAU / C)).abs() < 1e-12);
        assert_eq!(reno.efficiency_worst(), 0.5);
        // Loss with n=2: 1 − 450/452.
        assert!((reno.loss_bound(C, TAU, 2.0) - (1.0 - 450.0 / 452.0)).abs() < 1e-12);
        assert_eq!(reno.loss_bound_worst(), 1.0);
        assert_eq!(reno.fast_utilization_worst(), 1.0);
        // Friendliness to itself: 3·0.5/(1·1.5) = 1.
        assert!((reno.tcp_friendliness(C, TAU) - 1.0).abs() < 1e-12);
        assert_eq!(reno.fairness_worst(), 1.0);
        // Convergence: 2·0.5/1.5 = 2/3.
        assert!((reno.convergence_worst() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(reno.robustness(), 0.0);
    }

    #[test]
    fn efficiency_capped_at_one() {
        // Deep buffer: b(1+τ/C) > 1 ⇒ capped.
        let reno = ProtocolSpec::RENO;
        assert_eq!(reno.efficiency(100.0, 200.0), 1.0);
    }

    #[test]
    fn mimd_row() {
        let s = ProtocolSpec::SCALABLE_MIMD; // MIMD(1.01, 0.875)
        assert_eq!(s.fast_utilization_worst(), f64::INFINITY);
        assert_eq!(s.fairness_worst(), 0.0);
        assert!((s.loss_bound_worst() - 0.01 / 1.01).abs() < 1e-12);
        assert_eq!(s.tcp_friendliness_worst(), 0.0);
        // Parameterized friendliness shrinks as the link grows.
        let f_small = s.tcp_friendliness(100.0, 10.0);
        let f_big = s.tcp_friendliness(10_000.0, 10.0);
        assert!(f_small > f_big, "{f_small} vs {f_big}");
        assert!(f_big > 0.0);
    }

    #[test]
    fn bin_reduces_to_aimd_at_k0_l1() {
        let bin = ProtocolSpec::Bin {
            a: 1.0,
            b: 0.5,
            k: 0.0,
            l: 1.0,
        };
        let aimd = ProtocolSpec::RENO;
        assert!((bin.efficiency(C, TAU) - aimd.efficiency(C, TAU)).abs() < 1e-12);
        assert!((bin.loss_bound(C, TAU, 3.0) - aimd.loss_bound(C, TAU, 3.0)).abs() < 1e-12);
        assert_eq!(bin.fast_utilization_worst(), 1.0);
    }

    #[test]
    fn bin_with_positive_k_not_fast_utilizing() {
        // IIAD: k=1, l=0.
        let iiad = ProtocolSpec::Bin {
            a: 1.0,
            b: 0.5,
            k: 1.0,
            l: 0.0,
        };
        assert_eq!(iiad.fast_utilization_worst(), 0.0);
        // l + k = 1 ⇒ friendly bound √(3/2)·(b/a)^{1/2}.
        let expect = (1.5f64).sqrt() * (0.5f64).powf(0.5);
        assert!((iiad.tcp_friendliness_worst() - expect).abs() < 1e-12);
    }

    #[test]
    fn bin_below_friendliness_threshold() {
        // l + k < 1 ⇒ not TCP-friendly at all.
        let bin = ProtocolSpec::Bin {
            a: 1.0,
            b: 0.5,
            k: 0.25,
            l: 0.25,
        };
        assert_eq!(bin.tcp_friendliness_worst(), 0.0);
        assert_eq!(bin.tcp_friendliness(C, TAU), 0.0);
    }

    #[test]
    fn bin_loss_bound_decreases_with_k() {
        // Gentler increase (larger k) ⇒ smaller overshoot ⇒ less loss,
        // when the fair share (C+τ)/n exceeds 1 MSS.
        let lb = |k: f64| {
            ProtocolSpec::Bin {
                a: 1.0,
                b: 0.5,
                k,
                l: 1.0,
            }
            .loss_bound(C, TAU, 4.0)
        };
        assert!(lb(0.0) > lb(0.5));
        assert!(lb(0.5) > lb(1.0));
    }

    #[test]
    fn cubic_row() {
        let cub = ProtocolSpec::CUBIC_LINUX; // CUBIC(0.4, 0.8)
        assert_eq!(cub.efficiency_worst(), 0.8);
        assert_eq!(cub.fast_utilization_worst(), 0.4);
        assert!((cub.loss_bound(C, TAU, 2.0) - (1.0 - 450.0 / 450.8)).abs() < 1e-12);
        // Friendliness: √(3/2)·(4·0.2/(0.4·3.8·450))^{1/4}.
        let expect = (1.5f64).sqrt() * (0.8f64 / (0.4 * 3.8 * 450.0)).powf(0.25);
        assert!((cub.tcp_friendliness(C, TAU) - expect).abs() < 1e-12);
        assert_eq!(cub.tcp_friendliness_worst(), 0.0);
        assert!((cub.convergence_worst() - 1.6 / 1.8).abs() < 1e-12);
    }

    #[test]
    fn robust_aimd_row() {
        let r = ProtocolSpec::ROBUST_AIMD_TABLE2; // R-AIMD(1, 0.8, 0.01)
        assert_eq!(r.robustness(), 0.01);
        assert!((r.efficiency_worst() - 0.8 / 0.99).abs() < 1e-12);
        // Loss bound with n=2: ((C+τ)ε + na(1−ε)) / ((C+τ) + na(1−ε)).
        let ct = C + TAU;
        let num = ct * 0.01 + 2.0 * 1.0 * 0.99;
        let den = ct + 2.0 * 1.0 * 0.99;
        assert!((r.loss_bound(C, TAU, 2.0) - num / den).abs() < 1e-12);
        // Friendliness: 3·0.2/((4·450/0.99 − 1)·1.8).
        let expect = 3.0 * 0.2 / ((4.0 * ct / 0.99 - 1.0) * 1.8);
        assert!((r.tcp_friendliness(C, TAU) - expect).abs() < 1e-12);
        assert_eq!(r.tcp_friendliness_worst(), 0.0);
        assert_eq!(r.fast_utilization_worst(), 1.0);
    }

    #[test]
    fn robust_aimd_friendliness_below_reno_aimd_counterpart() {
        // Theorem 3 vs Theorem 2: tolerating loss costs friendliness.
        let r = ProtocolSpec::RobustAimd {
            a: 1.0,
            b: 0.5,
            eps: 0.01,
        };
        let aimd = ProtocolSpec::Aimd { a: 1.0, b: 0.5 };
        assert!(r.tcp_friendliness(C, TAU) < aimd.tcp_friendliness(C, TAU));
    }

    #[test]
    fn names_follow_paper_notation() {
        assert_eq!(ProtocolSpec::RENO.name(), "AIMD(1,0.5)");
        assert_eq!(ProtocolSpec::CUBIC_LINUX.name(), "CUBIC(0.4,0.8)");
        assert_eq!(ProtocolSpec::SCALABLE_MIMD.name(), "MIMD(1.01,0.875)");
        assert_eq!(
            ProtocolSpec::ROBUST_AIMD_TABLE2.name(),
            "R-AIMD(1,0.8,0.01)"
        );
    }

    #[test]
    fn assembled_rows_are_consistent() {
        for spec in [
            ProtocolSpec::RENO,
            ProtocolSpec::SCALABLE_MIMD,
            ProtocolSpec::CUBIC_LINUX,
            ProtocolSpec::ROBUST_AIMD_TABLE2,
            ProtocolSpec::Bin {
                a: 1.0,
                b: 0.5,
                k: 1.0,
                l: 0.0,
            },
        ] {
            let row = spec.scores(C, TAU, 3.0);
            let wc = spec.scores_worst();
            assert_eq!(row.fast_utilization, wc.fast_utilization);
            assert_eq!(row.fairness, wc.fairness);
            assert_eq!(row.robustness, wc.robustness);
            // Parameterized efficiency at a real link is at least the
            // worst case; the parameterized loss bound at finite n is at
            // most the worst case.
            assert!(row.efficiency >= wc.efficiency - 1e-12, "{spec:?}");
            assert!(row.loss_bound <= wc.loss_bound + 1e-12, "{spec:?}");
            assert!(row.latency_inflation.is_infinite());
        }
    }
}
