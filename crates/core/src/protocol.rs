//! The congestion-control protocol abstraction.
//!
//! Paper, Section 2: *"A congestion control protocol (deterministically)
//! maps the history of congestion-window sizes of that sender, and of the
//! RTTs and loss rates experienced by that sender, to the sender's next
//! selection of congestion window size."*
//!
//! We realize this as a trait whose single stepping method receives the
//! current [`Observation`] (the newest element of the history); protocols
//! that need deeper history (e.g. CUBIC's time-since-last-loss, Vegas's
//! minimum-RTT estimate) carry it as internal state, which [`Protocol::reset`]
//! clears. Determinism is a contract: given the same observation sequence
//! after a `reset`, a protocol must produce the same window sequence — the
//! property-test suites in the simulator crates enforce this.

use crate::link::{LossRate, RttSeconds};
use serde::{Deserialize, Serialize};

/// Everything a sender observes about time step `t`, handed to the protocol
/// when it selects the window for `t + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Index of the time step that just elapsed.
    pub tick: u64,
    /// The sender's own congestion window `x_i^(t)` during the step, in MSS.
    pub window: f64,
    /// Loss rate `L^(t)` the sender experienced during the step.
    pub loss_rate: LossRate,
    /// Duration of the step, `RTT(t)`, in seconds.
    pub rtt: RttSeconds,
    /// The smallest RTT this sender has observed so far (its best estimate
    /// of `2Θ`). Latency-aware protocols (Vegas) use it; loss-based ones
    /// must ignore it.
    pub min_rtt: RttSeconds,
}

impl Observation {
    /// Convenience constructor for loss-only observations (used heavily in
    /// unit tests of loss-based protocols, whose behaviour is invariant to
    /// the RTT fields by definition).
    pub fn loss_only(tick: u64, window: f64, loss_rate: LossRate) -> Self {
        Observation {
            tick,
            window,
            loss_rate,
            rtt: 0.1,
            min_rtt: 0.1,
        }
    }
}

/// One step's observations for *all* senders, laid out as contiguous
/// per-field lanes (the engine's struct-of-arrays hot-path view). The
/// shared link RTT is a scalar because every sender on a single link sees
/// the same RTT; per-sender fields index by sender.
///
/// [`Protocol::next_window_lane`] receives this view so simple protocols
/// can read straight from the lanes without materializing an
/// [`Observation`]; the default method builds one via
/// [`LaneObs::observation`], so existing protocols are unaffected.
#[derive(Debug, Clone, Copy)]
pub struct LaneObs<'a> {
    /// Index of the time step that just elapsed.
    pub tick: u64,
    /// Duration of the step, `RTT(t)`, in seconds — shared by all senders.
    pub rtt: RttSeconds,
    /// Per-sender congestion windows `x_i^(t)` during the step, in MSS.
    pub windows: &'a [f64],
    /// Per-sender loss rates experienced during the step.
    pub losses: &'a [f64],
    /// Per-sender smallest RTT observed so far.
    pub min_rtts: &'a [f64],
}

impl LaneObs<'_> {
    /// Materialize sender `i`'s scalar [`Observation`] from the lanes.
    pub fn observation(&self, i: usize) -> Observation {
        Observation {
            tick: self.tick,
            window: self.windows[i],
            loss_rate: self.losses[i],
            rtt: self.rtt,
            min_rtt: self.min_rtts[i],
        }
    }
}

/// A window-based congestion-control protocol in congestion-avoidance mode.
///
/// Implementations must be **deterministic**: the next window may depend
/// only on the history of observations since the last [`reset`](Self::reset)
/// (and on the protocol's fixed parameters), never on wall-clock time,
/// randomness, or global state.
///
/// The returned window is a *request*; the simulator clamps it to the model's
/// `[0, M]` range ([`MAX_WINDOW`] by default). Protocols should nevertheless
/// avoid returning negative or non-finite values — the debug assertions in
/// the engines flag them.
pub trait Protocol: Send + std::fmt::Debug {
    /// Human-readable name, e.g. `"AIMD(1,0.5)"`. Used in reports and
    /// experiment tables.
    fn name(&self) -> String;

    /// Select the congestion window for the next time step, given the
    /// observation of the step that just ended.
    fn next_window(&mut self, obs: &Observation) -> f64;

    /// Lane-slice variant of [`next_window`](Self::next_window): select
    /// sender `i`'s next window reading directly from the engine's
    /// struct-of-arrays lanes. The default materializes the scalar
    /// observation and delegates, so overriding is purely an optimization
    /// — any override must return the bit-identical value the default
    /// would (the simulator equivalence proptests enforce this).
    fn next_window_lane(&mut self, lanes: &LaneObs<'_>, i: usize) -> f64 {
        self.next_window(&lanes.observation(i))
    }

    /// Whether this protocol is *loss-based*: its window choices are
    /// invariant to the RTT values in the observations (paper, Section 2).
    /// Several theorems (Claim 1, Theorems 2, 3, 5) apply only to loss-based
    /// protocols, so the analysis code dispatches on this flag.
    fn loss_based(&self) -> bool;

    /// Clear all internal state (history), returning the protocol to the
    /// state it had at construction. Parameters are retained.
    fn reset(&mut self);

    /// Clone into a boxed trait object (protocols are cloned once per sender
    /// when a scenario instantiates `n` senders of the same protocol).
    fn clone_box(&self) -> Box<dyn Protocol>;
}

impl Clone for Box<dyn Protocol> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The model's maximum window `M` (MSS). The paper only requires `1 ≪ M`;
/// we pick a value comfortably above every experiment's bandwidth-delay
/// product (the largest `C + τ` in the paper's experiments is 450 MSS).
pub const MAX_WINDOW: f64 = 1.0e9;

/// Clamp a requested window into the model's valid range `[0, M]`,
/// sanitizing non-finite requests to `0` (and flagging them in debug
/// builds, since a well-formed protocol never produces them).
pub fn clamp_window(requested: f64, max_window: f64) -> f64 {
    debug_assert!(
        requested.is_finite(),
        "protocol produced non-finite window {requested}"
    );
    if !requested.is_finite() {
        return 0.0;
    }
    requested.clamp(0.0, max_window)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal protocol used to exercise the trait plumbing.
    #[derive(Debug, Clone)]
    struct ConstWindow(f64);

    impl Protocol for ConstWindow {
        fn name(&self) -> String {
            format!("Const({})", self.0)
        }
        fn next_window(&mut self, _obs: &Observation) -> f64 {
            self.0
        }
        fn loss_based(&self) -> bool {
            true
        }
        fn reset(&mut self) {}
        fn clone_box(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let p: Box<dyn Protocol> = Box::new(ConstWindow(7.0));
        let mut q = p.clone();
        let obs = Observation::loss_only(0, 1.0, 0.0);
        assert_eq!(q.next_window(&obs), 7.0);
        assert_eq!(q.name(), "Const(7)");
    }

    #[test]
    fn clamp_window_bounds() {
        assert_eq!(clamp_window(-1.0, 100.0), 0.0);
        assert_eq!(clamp_window(0.0, 100.0), 0.0);
        assert_eq!(clamp_window(50.0, 100.0), 50.0);
        assert_eq!(clamp_window(1e12, 100.0), 100.0);
    }

    #[test]
    fn observation_loss_only_sets_loss() {
        let o = Observation::loss_only(3, 10.0, 0.25);
        assert_eq!(o.tick, 3);
        assert_eq!(o.window, 10.0);
        assert_eq!(o.loss_rate, 0.25);
    }

    #[test]
    fn lane_obs_materializes_per_sender_observations() {
        let lanes = LaneObs {
            tick: 7,
            rtt: 0.05,
            windows: &[10.0, 20.0],
            losses: &[0.0, 0.25],
            min_rtts: &[0.04, 0.05],
        };
        let o = lanes.observation(1);
        assert_eq!(o.tick, 7);
        assert_eq!(o.window, 20.0);
        assert_eq!(o.loss_rate, 0.25);
        assert_eq!(o.rtt, 0.05);
        assert_eq!(o.min_rtt, 0.05);
    }

    #[test]
    fn default_lane_method_delegates_to_next_window() {
        let mut p = ConstWindow(7.0);
        let lanes = LaneObs {
            tick: 0,
            rtt: 0.1,
            windows: &[1.0],
            losses: &[0.0],
            min_rtts: &[0.1],
        };
        assert_eq!(
            p.next_window_lane(&lanes, 0).to_bits(),
            p.next_window(&lanes.observation(0)).to_bits()
        );
    }
}
