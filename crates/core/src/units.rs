//! Unit conversions used throughout the framework.
//!
//! The paper measures bandwidth in **MSS per second** and buffers in **MSS**.
//! Real-world experiment descriptions (Table 2, the Emulab validation of
//! Section 5.1) use megabits per second and milliseconds; this module is the
//! single place where those are converted, so every crate agrees on the
//! numbers.

use serde::{Deserialize, Serialize};

/// Size of one MSS (maximum segment size) in bytes.
///
/// The paper's experiments use standard Ethernet framing; 1500 bytes is the
/// conventional MTU and the MSS used by the Linux kernel protocols the paper
/// tests against (Reno, Cubic, Scalable).
pub const MSS_BYTES: f64 = 1500.0;

/// Bits per MSS.
pub const MSS_BITS: f64 = MSS_BYTES * 8.0;

/// Convert a bandwidth in megabits/second to the paper's MSS/second unit.
///
/// ```
/// use axcc_core::units::mbps_to_mss_per_sec;
/// // 100 Mbps = 100e6 / (1500*8) ≈ 8333.3 MSS/s
/// let b = mbps_to_mss_per_sec(100.0);
/// assert!((b - 8333.333).abs() < 0.01);
/// ```
pub fn mbps_to_mss_per_sec(mbps: f64) -> f64 {
    mbps * 1.0e6 / MSS_BITS
}

/// Convert MSS/second back to megabits/second.
pub fn mss_per_sec_to_mbps(mss_per_sec: f64) -> f64 {
    mss_per_sec * MSS_BITS / 1.0e6
}

/// Convert milliseconds to seconds.
pub fn ms_to_sec(ms: f64) -> f64 {
    ms / 1000.0
}

/// Convert seconds to milliseconds.
pub fn sec_to_ms(sec: f64) -> f64 {
    sec * 1000.0
}

/// A bandwidth value carrying its unit, convertible to the model's MSS/s.
///
/// Experiment configurations (e.g. the Table 2 grid) are written in the
/// units the paper reports (`Mbps`); the simulators consume MSS/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bandwidth {
    /// Megabits per second (as in the paper's experiment tables).
    Mbps(f64),
    /// The model's native unit.
    MssPerSec(f64),
}

impl Bandwidth {
    /// The value in MSS/second (the model's native unit).
    pub fn mss_per_sec(self) -> f64 {
        match self {
            Bandwidth::Mbps(v) => mbps_to_mss_per_sec(v),
            Bandwidth::MssPerSec(v) => v,
        }
    }

    /// The value in megabits/second.
    pub fn mbps(self) -> f64 {
        match self {
            Bandwidth::Mbps(v) => v,
            Bandwidth::MssPerSec(v) => mss_per_sec_to_mbps(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_round_trip() {
        for mbps in [1.0, 20.0, 30.0, 60.0, 100.0, 1000.0] {
            let there = mbps_to_mss_per_sec(mbps);
            let back = mss_per_sec_to_mbps(there);
            assert!((back - mbps).abs() < 1e-9, "{mbps} -> {there} -> {back}");
        }
    }

    #[test]
    fn paper_link_speeds() {
        // The paper's Emulab links: 20/30/60/100 Mbps.
        assert!((mbps_to_mss_per_sec(20.0) - 1666.666).abs() < 1e-2);
        assert!((mbps_to_mss_per_sec(30.0) - 2500.0).abs() < 1e-9);
        assert!((mbps_to_mss_per_sec(60.0) - 5000.0).abs() < 1e-9);
        assert!((mbps_to_mss_per_sec(100.0) - 8333.333).abs() < 1e-2);
    }

    #[test]
    fn ms_round_trip() {
        assert_eq!(ms_to_sec(42.0), 0.042);
        assert_eq!(sec_to_ms(0.042), 42.0);
    }

    #[test]
    fn bandwidth_enum_agrees_with_free_functions() {
        let b = Bandwidth::Mbps(60.0);
        assert_eq!(b.mss_per_sec(), mbps_to_mss_per_sec(60.0));
        assert_eq!(b.mbps(), 60.0);
        let b = Bandwidth::MssPerSec(5000.0);
        assert_eq!(b.mss_per_sec(), 5000.0);
        assert_eq!(b.mbps(), 60.0);
    }
}
