//! Streaming (single-pass) axiom evaluation — the trace-free fast path.
//!
//! Every axiom of Section 3 is a statement about a trajectory of the form
//! "there is some time step T such that from T onwards …", and every one
//! of its empirical evaluators in the sibling modules is an in-order fold
//! over trace columns: min/max folds (efficiency, loss-avoidance,
//! convergence, latency), sequential sums (fairness and friendliness tail
//! averages, fast-utilization cumulative gains), or a last-index scan
//! (robustness). None of them needs the trajectory materialized — they
//! need each step's values exactly once, in order.
//!
//! This module provides one online accumulator per axiom plus a combined
//! [`MetricAccumulator`] that consumes one [`StepRecord`] per sender per
//! step in O(senders) memory, independent of run length. A simulation
//! engine drives it directly from its hot loop (see `axcc-fluidsim`'s
//! `StepSink`), eliminating the O(steps × senders) trace allocation
//! entirely for metric-only sweeps.
//!
//! **The bit-identity contract.** Each accumulator reproduces its
//! trace-based evaluator *to the exact f64 bit*: the same additions in the
//! same order (f64 addition is not associative, so sums must fold
//! sequentially over steps exactly as the slice iterators do), the same
//! `f64::min`/`f64::max` argument order (which decides NaN propagation),
//! and the same edge-case returns for empty tails and idle senders. Tail
//! boundaries and the robustness quartiles are precomputable because the
//! run length is known up front ([`MetricConfig::steps`]), mirroring
//! [`RunTrace::tail_start`](crate::trace::RunTrace::tail_start). The
//! equivalence is asserted bit-for-bit by unit tests here, by property
//! tests in `axcc-fluidsim`, and on every registry experiment by
//! `axcc-analysis` and the `bench-engine` binary.

use crate::link::LinkParams;

/// One sender's observation at one step: exactly the four values the
/// trace path would append to its per-sender columns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepRecord {
    /// Congestion window `x_i^(t)` (MSS); 0 for a not-yet-started sender.
    pub window: f64,
    /// Loss rate the sender experienced this step.
    pub loss: f64,
    /// RTT the sender experienced this step (seconds).
    pub rtt: f64,
    /// Goodput this step (MSS/s): delivered window over RTT.
    pub goodput: f64,
}

/// A fixed-capacity column-major batch of simulation steps — the unit of
/// the batched sink path (`StepSink::on_steps` in `axcc-fluidsim`).
///
/// The engine stages each step's shared link state and per-sender values
/// into the block and flushes it to the sink when full, so short runs pay
/// one virtual dispatch (and one accumulator tail-boundary check) per
/// block instead of per step. Columns are stored sender-major: sender
/// `i`'s windows occupy one contiguous slice, which is what every
/// accumulator reads (each consumes its column in step order) and what
/// the trace sink extends from.
///
/// Consuming a block row-by-row in step order is bit-identical to the
/// per-step path: [`record`](StepBlock::record) reconstructs exactly the
/// `StepRecord` the engine would have passed to `on_step` (idle senders
/// hold staged zeros; every sender's RTT is the shared column, as in the
/// synchronized fluid model).
#[derive(Debug, Clone, Default)]
pub struct StepBlock {
    n: usize,
    cap: usize,
    len: usize,
    start: usize,
    totals: Vec<f64>,
    rtts: Vec<f64>,
    link_losses: Vec<f64>,
    windows: Vec<f64>,
    losses: Vec<f64>,
    goodputs: Vec<f64>,
}

fn resize_zeroed(v: &mut Vec<f64>, len: usize) {
    v.clear();
    v.resize(len, 0.0);
}

impl StepBlock {
    /// Default number of steps per block: small enough that the staged
    /// columns stay cache-resident, large enough to amortize the
    /// per-block dispatch down to noise.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// An empty block for `n` senders holding up to `cap` rows.
    pub fn new(n: usize, cap: usize) -> Self {
        let mut block = StepBlock {
            n: 0,
            cap: 0,
            len: 0,
            start: 0,
            totals: Vec::new(),
            rtts: Vec::new(),
            link_losses: Vec::new(),
            windows: Vec::new(),
            losses: Vec::new(),
            goodputs: Vec::new(),
        };
        block.reshape(n, cap);
        block
    }

    /// Resize for a run shape, zeroing every column and resetting the
    /// cursor. Reusable workspaces call this once per run; when the shape
    /// matches the previous run the buffers are reused in place.
    pub fn reshape(&mut self, n: usize, cap: usize) {
        self.n = n;
        self.cap = cap.max(1);
        self.len = 0;
        self.start = 0;
        resize_zeroed(&mut self.totals, self.cap);
        resize_zeroed(&mut self.rtts, self.cap);
        resize_zeroed(&mut self.link_losses, self.cap);
        resize_zeroed(&mut self.windows, n * self.cap);
        resize_zeroed(&mut self.losses, n * self.cap);
        resize_zeroed(&mut self.goodputs, n * self.cap);
    }

    /// Start a new (empty) block whose first row is absolute step `start`.
    pub fn begin(&mut self, start: usize) {
        self.len = 0;
        self.start = start;
    }

    /// Zero the per-sender columns. Engines whose step loop stages only
    /// the currently-active senders call this at block start so idle
    /// senders read as exact zeros; a run whose senders are all active
    /// throughout writes every slot and may skip it.
    pub fn zero_senders(&mut self) {
        self.windows.fill(0.0);
        self.losses.fill(0.0);
        self.goodputs.fill(0.0);
    }

    /// Stage the current row's shared link state (total window, link RTT,
    /// link loss).
    #[inline]
    pub fn stage_shared(&mut self, total: f64, rtt: f64, loss: f64) {
        self.totals[self.len] = total;
        self.rtts[self.len] = rtt;
        self.link_losses[self.len] = loss;
    }

    /// Stage sender `i`'s values for the current row.
    #[inline]
    pub fn stage_sender(&mut self, i: usize, window: f64, loss: f64, goodput: f64) {
        let at = i * self.cap + self.len;
        self.windows[at] = window;
        self.losses[at] = loss;
        self.goodputs[at] = goodput;
    }

    /// Commit the current row; returns `true` when the block is full —
    /// the caller flushes it to the sink and calls
    /// [`begin`](StepBlock::begin) for the next row.
    #[inline]
    pub fn advance(&mut self) -> bool {
        self.len += 1;
        self.len == self.cap
    }

    /// Committed rows in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no row has been committed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of senders per row.
    pub fn num_senders(&self) -> usize {
        self.n
    }

    /// Maximum rows the block holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Absolute step index of row 0.
    pub fn start_step(&self) -> usize {
        self.start
    }

    /// The committed slice of the total-window column.
    pub fn totals(&self) -> &[f64] {
        &self.totals[..self.len]
    }

    /// The committed slice of the shared link-RTT column.
    pub fn rtts(&self) -> &[f64] {
        &self.rtts[..self.len]
    }

    /// The committed slice of the link-loss column.
    pub fn link_losses(&self) -> &[f64] {
        &self.link_losses[..self.len]
    }

    /// Sender `i`'s committed window column.
    pub fn windows(&self, i: usize) -> &[f64] {
        &self.windows[i * self.cap..i * self.cap + self.len]
    }

    /// Sender `i`'s committed loss column.
    pub fn sender_losses(&self, i: usize) -> &[f64] {
        &self.losses[i * self.cap..i * self.cap + self.len]
    }

    /// Sender `i`'s committed goodput column.
    pub fn goodputs(&self, i: usize) -> &[f64] {
        &self.goodputs[i * self.cap..i * self.cap + self.len]
    }

    /// The [`StepRecord`] row `k` holds for sender `i` — exactly what the
    /// per-step path would have passed to `on_step`.
    pub fn record(&self, i: usize, k: usize) -> StepRecord {
        let at = i * self.cap + k;
        StepRecord {
            window: self.windows[at],
            loss: self.losses[at],
            rtt: self.rtts[k],
            goodput: self.goodputs[at],
        }
    }
}

/// A set of metric families for [`MetricAccumulator`] to maintain —
/// the sink-specialization knob of the streaming path.
///
/// Every streaming call site reads a small, statically-known subset of
/// the axiom scores (a robustness sweep only ever calls
/// [`MetricAccumulator::window_escapes`]; a friendliness job only the
/// fairness-family tail means), yet the combined accumulator pays every
/// family's per-step fold. Restricting the set skips the disabled
/// families' block passes entirely; the enabled families' folds are
/// untouched, so every score that *is* maintained keeps the bit-identity
/// contract. Reading a disabled family is a logic error (caught by
/// `debug_assert!` in the accessors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSet(u8);

impl MetricSet {
    /// Metric I (efficiency) and its mean-utilization companion.
    pub const EFFICIENCY: MetricSet = MetricSet(1 << 0);
    /// Metric III (loss-avoidance) and the zero-loss predicate.
    pub const LOSS_AVOIDANCE: MetricSet = MetricSet(1 << 1);
    /// Metric VIII (latency-avoidance).
    pub const LATENCY: MetricSet = MetricSet(1 << 2);
    /// Metric IV (fairness), Metric VII (friendliness), Jain's index,
    /// and the per-sender tail-mean window/goodput readers.
    pub const FAIRNESS: MetricSet = MetricSet(1 << 3);
    /// Metric V (convergence).
    pub const CONVERGENCE: MetricSet = MetricSet(1 << 4);
    /// Metric VI (robustness): escape, divergence, and last window.
    pub const ROBUSTNESS: MetricSet = MetricSet(1 << 5);
    /// Metric II (fast-utilization).
    pub const FAST_UTILIZATION: MetricSet = MetricSet(1 << 6);
    /// Every family — the default, and the set the equivalence suites run.
    pub const ALL: MetricSet = MetricSet(0x7f);
    /// Metrics I–V and VIII: what a homogeneous ("solo") sweep reads.
    pub const SOLO: MetricSet = MetricSet(
        Self::EFFICIENCY.0
            | Self::LOSS_AVOIDANCE.0
            | Self::LATENCY.0
            | Self::FAIRNESS.0
            | Self::CONVERGENCE.0
            | Self::FAST_UTILIZATION.0,
    );

    /// Does this set include every family in `other`?
    pub fn contains(self, other: MetricSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two sets.
    #[must_use]
    pub fn with(self, other: MetricSet) -> MetricSet {
        MetricSet(self.0 | other.0)
    }
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::ALL
    }
}

/// Static shape of the run the accumulators will consume — everything the
/// trace path would have read from `RunTrace` metadata — plus the
/// [`MetricSet`] selecting which families to maintain.
#[derive(Debug, Clone)]
pub struct MetricConfig {
    /// The (nominal) link of the run; capacity and RTT floor come from
    /// here, exactly as the trace evaluators read `trace.link`.
    pub link: LinkParams,
    /// Total number of steps the run will execute.
    pub steps: usize,
    /// Per-sender `loss_based` flags (drives the fast-utilization RTT
    /// eligibility check, like `SenderTrace::loss_based`).
    pub loss_based: Vec<bool>,
    /// Fraction of the run treated as transient; the tail boundary is
    /// `floor(steps · fraction)`, mirroring `RunTrace::tail_start`.
    pub tail_fraction: f64,
    /// Minimum fast-utilization segment horizon (steps).
    pub min_horizon: usize,
    /// Escape threshold β tracked by the robustness accumulator.
    pub escape_beta: f64,
    /// Which metric families to maintain ([`MetricSet::ALL`] for the
    /// full evaluator).
    pub metrics: MetricSet,
}

impl MetricConfig {
    /// The tail boundary this configuration implies — identical to
    /// `RunTrace::tail_start` on the finished trace.
    pub fn tail_start(&self) -> usize {
        let f = self.tail_fraction.clamp(0.0, 1.0);
        (self.steps as f64 * f).floor() as usize
    }
}

/// Metric I (efficiency) online: min-fold of `X^(t)/C` over the tail,
/// plus the mean-utilization companion sum.
#[derive(Debug, Clone)]
pub struct EfficiencyAcc {
    capacity: f64,
    tail_start: usize,
    t: usize,
    worst_ratio: f64,
    sum: f64,
    tail_len: usize,
}

impl EfficiencyAcc {
    /// Accumulator for a run on `link` with the given tail boundary.
    pub fn new(link: &LinkParams, tail_start: usize) -> Self {
        EfficiencyAcc {
            capacity: link.capacity(),
            tail_start,
            t: 0,
            worst_ratio: f64::INFINITY,
            sum: 0.0,
            tail_len: 0,
        }
    }

    /// Consume one step's total window `X^(t)`.
    pub fn push(&mut self, total: f64) {
        if self.t >= self.tail_start {
            self.worst_ratio = f64::min(self.worst_ratio, total / self.capacity);
            self.sum += total;
            self.tail_len += 1;
        }
        self.t += 1;
    }

    /// Consume a batch of total windows — bit-identical to pushing each
    /// in order (the per-step tail check hoists to one slice boundary).
    pub fn push_block(&mut self, totals: &[f64]) {
        let from = self.tail_start.saturating_sub(self.t).min(totals.len());
        let mut worst = self.worst_ratio;
        let mut sum = self.sum;
        for &total in &totals[from..] {
            worst = f64::min(worst, total / self.capacity);
            sum += total;
        }
        self.worst_ratio = worst;
        self.sum = sum;
        self.tail_len += totals.len() - from;
        self.t += totals.len();
    }

    /// `efficiency::measured_efficiency` of the stream so far.
    pub fn measured(&self) -> f64 {
        let worst = if self.worst_ratio.is_finite() {
            self.worst_ratio
        } else {
            0.0
        };
        worst.min(1.0)
    }

    /// `efficiency::mean_utilization` of the stream so far.
    pub fn mean_utilization(&self) -> f64 {
        if self.tail_len == 0 {
            return 0.0;
        }
        self.sum / (self.tail_len as f64 * self.capacity)
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        self.worst_ratio = f64::INFINITY;
        self.sum = 0.0;
        self.tail_len = 0;
    }
}

/// Metric III (loss-avoidance) online: max-fold and sum of the link loss
/// column over the tail.
#[derive(Debug, Clone)]
pub struct LossAvoidanceAcc {
    tail_start: usize,
    t: usize,
    worst: f64,
    sum: f64,
    tail_len: usize,
}

impl LossAvoidanceAcc {
    /// Accumulator with the given tail boundary.
    pub fn new(tail_start: usize) -> Self {
        LossAvoidanceAcc {
            tail_start,
            t: 0,
            worst: 0.0,
            sum: 0.0,
            tail_len: 0,
        }
    }

    /// Consume one step's link loss rate `L^(t)`.
    pub fn push(&mut self, loss: f64) {
        if self.t >= self.tail_start {
            self.worst = f64::max(self.worst, loss);
            self.sum += loss;
            self.tail_len += 1;
        }
        self.t += 1;
    }

    /// Consume a batch of link loss rates — bit-identical to pushing each
    /// in order.
    pub fn push_block(&mut self, losses: &[f64]) {
        let from = self.tail_start.saturating_sub(self.t).min(losses.len());
        let mut worst = self.worst;
        let mut sum = self.sum;
        for &loss in &losses[from..] {
            worst = f64::max(worst, loss);
            sum += loss;
        }
        self.worst = worst;
        self.sum = sum;
        self.tail_len += losses.len() - from;
        self.t += losses.len();
    }

    /// `loss_avoidance::measured_loss_bound` of the stream so far.
    pub fn measured(&self) -> f64 {
        self.worst
    }

    /// `loss_avoidance::mean_loss` of the stream so far.
    pub fn mean(&self) -> f64 {
        if self.tail_len == 0 {
            0.0
        } else {
            self.sum / self.tail_len as f64
        }
    }

    /// Whether the tail is 0-loss (`loss_avoidance::is_zero_loss`).
    pub fn is_zero_loss(&self) -> bool {
        self.measured() <= 1e-12
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        self.worst = 0.0;
        self.sum = 0.0;
        self.tail_len = 0;
    }
}

/// Metric VIII (latency-avoidance) online: max-fold of `RTT/(2Θ) − 1`
/// over the tail, unbounded as soon as a tail step shows loss.
///
/// The trace evaluator returns `INFINITY` the moment it meets a lossy
/// step; the stream cannot early-return, so it latches a flag instead —
/// the folded `worst` is discarded whenever the flag is set, which makes
/// the two bit-identical (on a loss-free tail the folds see the same
/// steps in the same order).
#[derive(Debug, Clone)]
pub struct LatencyAcc {
    floor: f64,
    tail_start: usize,
    t: usize,
    saw_tail_loss: bool,
    worst: f64,
}

impl LatencyAcc {
    /// Accumulator for a run on `link` with the given tail boundary.
    pub fn new(link: &LinkParams, tail_start: usize) -> Self {
        LatencyAcc {
            floor: link.min_rtt(),
            tail_start,
            t: 0,
            saw_tail_loss: false,
            worst: 0.0,
        }
    }

    /// Consume one step's link RTT and loss rate.
    pub fn push(&mut self, rtt: f64, loss: f64) {
        if self.t >= self.tail_start {
            if loss > 0.0 {
                self.saw_tail_loss = true;
            } else if !self.saw_tail_loss {
                self.worst = f64::max(self.worst, rtt / self.floor - 1.0);
            }
        }
        self.t += 1;
    }

    /// Consume a batch of link RTT and loss rows — bit-identical to
    /// pushing each pair in order.
    pub fn push_block(&mut self, rtts: &[f64], losses: &[f64]) {
        debug_assert_eq!(rtts.len(), losses.len());
        let from = self.tail_start.saturating_sub(self.t).min(rtts.len());
        for k in from..rtts.len() {
            if losses[k] > 0.0 {
                self.saw_tail_loss = true;
            } else if !self.saw_tail_loss {
                self.worst = f64::max(self.worst, rtts[k] / self.floor - 1.0);
            }
        }
        self.t += rtts.len();
    }

    /// `latency::measured_latency_inflation` of the stream so far.
    pub fn measured(&self) -> f64 {
        if self.saw_tail_loss {
            return f64::INFINITY;
        }
        self.worst.max(0.0)
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        self.saw_tail_loss = false;
        self.worst = 0.0;
    }
}

/// Metrics IV and VII (fairness / friendliness) online: per-sender tail
/// sums of window and goodput, combined at finish time exactly like
/// `SenderTrace::mean_window_from` / `mean_goodput_from`.
#[derive(Debug, Clone)]
pub struct FairnessAcc {
    tail_start: usize,
    t: usize,
    tail_len: usize,
    win_sums: Vec<f64>,
    goodput_sums: Vec<f64>,
}

impl FairnessAcc {
    /// Accumulator for `n` senders with the given tail boundary.
    pub fn new(n: usize, tail_start: usize) -> Self {
        FairnessAcc {
            tail_start,
            t: 0,
            tail_len: 0,
            win_sums: vec![0.0; n],
            goodput_sums: vec![0.0; n],
        }
    }

    /// Consume one step: every sender's record, in sender order.
    pub fn push_step(&mut self, records: &[StepRecord]) {
        if self.t >= self.tail_start {
            for (i, r) in records.iter().enumerate() {
                self.win_sums[i] += r.window;
                self.goodput_sums[i] += r.goodput;
            }
            self.tail_len += 1;
        }
        self.t += 1;
    }

    /// Consume a batch of steps — bit-identical to per-step pushes: each
    /// per-sender sum folds its own column in step order, so the additions
    /// into `win_sums[i]` / `goodput_sums[i]` happen in exactly the order
    /// the row-major path performs them.
    pub fn push_steps(&mut self, block: &StepBlock) {
        let len = block.len();
        let from = self.tail_start.saturating_sub(self.t).min(len);
        if from < len {
            for i in 0..self.win_sums.len() {
                let mut ws = self.win_sums[i];
                for &w in &block.windows(i)[from..] {
                    ws += w;
                }
                self.win_sums[i] = ws;
                let mut gs = self.goodput_sums[i];
                for &g in &block.goodputs(i)[from..] {
                    gs += g;
                }
                self.goodput_sums[i] = gs;
            }
            self.tail_len += len - from;
        }
        self.t += len;
    }

    /// Sender `i`'s tail-average window (`mean_window_from(tail)`).
    pub fn tail_mean_window(&self, i: usize) -> f64 {
        if self.tail_len == 0 {
            0.0
        } else {
            self.win_sums[i] / self.tail_len as f64
        }
    }

    /// Sender `i`'s tail-average goodput (`mean_goodput_from(tail)`).
    pub fn tail_mean_goodput(&self, i: usize) -> f64 {
        if self.tail_len == 0 {
            0.0
        } else {
            self.goodput_sums[i] / self.tail_len as f64
        }
    }

    /// `fairness::measured_fairness` of the stream so far.
    pub fn measured(&self) -> f64 {
        let n = self.win_sums.len();
        if n < 2 {
            return 1.0;
        }
        let avgs = (0..n).map(|i| self.tail_mean_window(i));
        let max = avgs.clone().fold(0.0, f64::max);
        let min = avgs.fold(f64::INFINITY, f64::min);
        if max <= 0.0 {
            return 1.0;
        }
        (min / max).clamp(0.0, 1.0)
    }

    /// `fairness::jain_index` of the stream so far.
    pub fn jain_index(&self) -> f64 {
        let n = self.goodput_sums.len() as f64;
        let g = (0..self.goodput_sums.len()).map(|i| self.tail_mean_goodput(i));
        let sum: f64 = g.clone().sum();
        let sum_sq: f64 = g.map(|x| x * x).sum();
        if sum_sq <= 0.0 {
            return 1.0;
        }
        (sum * sum) / (n * sum_sq)
    }

    /// `friendliness::measured_friendliness` of the stream so far, for
    /// P-senders `p` and Q-senders `q` (indices into the sender order).
    pub fn friendliness(&self, p: &[usize], q: &[usize]) -> f64 {
        if p.is_empty() || q.is_empty() {
            return 1.0;
        }
        let p_max = p
            .iter()
            .map(|&i| self.tail_mean_window(i))
            .fold(0.0, f64::max);
        let q_min = q
            .iter()
            .map(|&j| self.tail_mean_window(j))
            .fold(f64::INFINITY, f64::min);
        if p_max <= 0.0 {
            return 1.0;
        }
        (q_min / p_max).max(0.0)
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        self.tail_len = 0;
        self.win_sums.fill(0.0);
        self.goodput_sums.fill(0.0);
    }
}

/// Metric V (convergence) online: per-sender `[lo, hi]` window excursion
/// over the tail.
#[derive(Debug, Clone)]
pub struct ConvergenceAcc {
    steps: usize,
    tail_start: usize,
    t: usize,
    los: Vec<f64>,
    his: Vec<f64>,
}

impl ConvergenceAcc {
    /// Accumulator for `n` senders over a `steps`-long run.
    pub fn new(n: usize, steps: usize, tail_start: usize) -> Self {
        ConvergenceAcc {
            steps,
            tail_start,
            t: 0,
            los: vec![f64::INFINITY; n],
            his: vec![0.0; n],
        }
    }

    /// Consume one step: every sender's record, in sender order.
    pub fn push_step(&mut self, records: &[StepRecord]) {
        if self.t >= self.tail_start {
            for (i, r) in records.iter().enumerate() {
                self.los[i] = f64::min(self.los[i], r.window);
                self.his[i] = f64::max(self.his[i], r.window);
            }
        }
        self.t += 1;
    }

    /// Consume a batch of steps — bit-identical to per-step pushes (each
    /// sender's `[lo, hi]` fold consumes its own column in step order
    /// with the same `f64::min`/`f64::max` argument order).
    pub fn push_steps(&mut self, block: &StepBlock) {
        let len = block.len();
        let from = self.tail_start.saturating_sub(self.t).min(len);
        if from < len {
            for i in 0..self.los.len() {
                let mut lo = self.los[i];
                let mut hi = self.his[i];
                for &w in &block.windows(i)[from..] {
                    lo = f64::min(lo, w);
                    hi = f64::max(hi, w);
                }
                self.los[i] = lo;
                self.his[i] = hi;
            }
        }
        self.t += len;
    }

    /// `convergence::measured_convergence` of the stream so far.
    pub fn measured(&self) -> f64 {
        if self.tail_start.min(self.steps) >= self.steps {
            return 1.0;
        }
        let mut worst = 1.0_f64;
        for i in 0..self.los.len() {
            let (lo, hi) = (self.los[i], self.his[i]);
            let alpha = if hi <= 0.0 { 1.0 } else { 2.0 * lo / (lo + hi) };
            worst = worst.min(alpha);
        }
        worst.clamp(0.0, 1.0)
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        self.los.fill(f64::INFINITY);
        self.his.fill(0.0);
    }
}

/// Metric VI (robustness) online: per-sender last-dip index below β, the
/// third/fourth-quarter window sums behind `window_diverging`, and the
/// final window.
#[derive(Debug, Clone)]
pub struct RobustnessAcc {
    beta: f64,
    steps: usize,
    t: usize,
    last_dips: Vec<Option<usize>>,
    q3_sums: Vec<f64>,
    q4_sums: Vec<f64>,
    last_windows: Vec<f64>,
}

impl RobustnessAcc {
    /// Accumulator for `n` senders over a `steps`-long run, tracking
    /// escape above `beta`.
    pub fn new(n: usize, steps: usize, beta: f64) -> Self {
        RobustnessAcc {
            beta,
            steps,
            t: 0,
            last_dips: vec![None; n],
            q3_sums: vec![0.0; n],
            q4_sums: vec![0.0; n],
            last_windows: vec![0.0; n],
        }
    }

    /// Consume one step: every sender's record, in sender order.
    pub fn push_step(&mut self, records: &[StepRecord]) {
        let (h, q) = (self.steps / 2, 3 * self.steps / 4);
        for (i, r) in records.iter().enumerate() {
            if r.window < self.beta {
                self.last_dips[i] = Some(self.t);
            }
            if self.t >= q {
                self.q4_sums[i] += r.window;
            } else if self.t >= h {
                self.q3_sums[i] += r.window;
            }
            self.last_windows[i] = r.window;
        }
        self.t += 1;
    }

    /// Consume a batch of steps — bit-identical to per-step pushes: the
    /// quartile boundaries hoist to slice boundaries (every row in
    /// `[h_from, q_from)` satisfies `h <= t < q`, and rows from `q_from`
    /// satisfy `t >= q`), and each per-sender sum folds its column in
    /// step order.
    pub fn push_steps(&mut self, block: &StepBlock) {
        let len = block.len();
        if len == 0 {
            return;
        }
        let (h, q) = (self.steps / 2, 3 * self.steps / 4);
        let h_from = h.saturating_sub(self.t).min(len);
        let q_from = q.saturating_sub(self.t).min(len).max(h_from);
        for i in 0..self.last_dips.len() {
            let col = block.windows(i);
            let mut dip = self.last_dips[i];
            for (k, &w) in col.iter().enumerate() {
                if w < self.beta {
                    dip = Some(self.t + k);
                }
            }
            self.last_dips[i] = dip;
            let mut q3 = self.q3_sums[i];
            for &w in &col[h_from..q_from] {
                q3 += w;
            }
            self.q3_sums[i] = q3;
            let mut q4 = self.q4_sums[i];
            for &w in &col[q_from..] {
                q4 += w;
            }
            self.q4_sums[i] = q4;
            self.last_windows[i] = col[len - 1];
        }
        self.t += len;
    }

    /// `robustness::window_escapes(senders[i], beta, min_suffix_frac)` of
    /// the stream so far.
    pub fn escapes(&self, i: usize, min_suffix_frac: f64) -> bool {
        let n = self.t;
        if n == 0 {
            return false;
        }
        let suffix_start = match self.last_dips[i] {
            None => 0,
            Some(d) => d + 1,
        };
        let suffix_len = n - suffix_start;
        suffix_len as f64 >= min_suffix_frac * n as f64 && suffix_len > 0
    }

    /// `robustness::window_diverging(senders[i], growth_margin)` of the
    /// stream so far.
    pub fn diverging(&self, i: usize, growth_margin: f64) -> bool {
        let n = self.steps;
        if n < 8 {
            return false;
        }
        let q3_len = 3 * n / 4 - n / 2;
        let q4_len = n - 3 * n / 4;
        let q3 = if q3_len == 0 {
            0.0
        } else {
            self.q3_sums[i] / q3_len as f64
        };
        let q4 = if q4_len == 0 {
            0.0
        } else {
            self.q4_sums[i] / q4_len as f64
        };
        q4 > q3 + growth_margin
    }

    /// Sender `i`'s final window (`senders[i].window.last()`), 0 before
    /// any step.
    pub fn last_window(&self, i: usize) -> f64 {
        self.last_windows[i]
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        self.last_dips.fill(None);
        self.q3_sums.fill(0.0);
        self.q4_sums.fill(0.0);
        self.last_windows.fill(0.0);
    }
}

/// Per-sender streaming state for Metric II (fast-utilization): the
/// segment scan of `fast_utilization::eligible_segments` fused with the
/// per-segment cumulative-gain fold of `measured_fast_utilization`, using
/// one step of lookback.
#[derive(Debug, Clone)]
struct FastUtilSender {
    check_rtt: bool,
    prev_window: f64,
    prev_rtt: f64,
    seg_start: Option<usize>,
    x1: f64,
    cum_gain: f64,
    worst: Option<f64>,
}

impl FastUtilSender {
    fn new(loss_based: bool) -> Self {
        FastUtilSender {
            check_rtt: !loss_based,
            prev_window: 0.0,
            prev_rtt: 0.0,
            seg_start: None,
            x1: 0.0,
            cum_gain: 0.0,
            worst: None,
        }
    }

    fn finalize_segment(&mut self, start: usize, end: usize, min_horizon: usize) {
        let len = end - start;
        if len <= min_horizon {
            return;
        }
        let final_dt = (len - 1) as f64;
        let alpha = 2.0 * self.cum_gain / (final_dt * final_dt);
        self.worst = Some(match self.worst {
            None => alpha,
            Some(w) => w.min(alpha),
        });
    }

    fn push(&mut self, t: usize, from: usize, min_horizon: usize, r: &StepRecord) {
        let lossy = r.loss > 0.0;
        let has_prev = t > from;
        let backed_off = has_prev && r.window < self.prev_window * 0.99 - 1e-12;
        let rtt_rose = self.check_rtt && has_prev && r.rtt > self.prev_rtt + 1e-12;
        if lossy || backed_off || rtt_rose {
            if let Some(s) = self.seg_start.take() {
                self.finalize_segment(s, t, min_horizon);
            }
            // A back-off or RTT rise ends a segment but can begin a new
            // one at the post-event window; a lossy step cannot — exactly
            // the `eligible_segments` rule.
            if !lossy {
                self.seg_start = Some(t);
                self.x1 = r.window;
                self.cum_gain = 0.0;
            }
        } else if self.seg_start.is_none() {
            self.seg_start = Some(t);
            self.x1 = r.window;
            self.cum_gain = 0.0;
        } else {
            self.cum_gain += r.window - self.x1;
        }
        self.prev_window = r.window;
        self.prev_rtt = r.rtt;
    }

    fn measured(&self, end: usize, min_horizon: usize) -> Option<f64> {
        // Flush the open segment without mutating (`measured` may be read
        // mid-stream by tests); clone the tiny state instead.
        let mut fin = self.clone();
        if let Some(s) = fin.seg_start.take() {
            if end > s {
                fin.finalize_segment(s, end, min_horizon);
            }
        }
        fin.worst.map(|w| w.max(0.0))
    }

    fn reset(&mut self) {
        self.prev_window = 0.0;
        self.prev_rtt = 0.0;
        self.seg_start = None;
        self.x1 = 0.0;
        self.cum_gain = 0.0;
        self.worst = None;
    }
}

/// Metric II (fast-utilization) online, per sender.
#[derive(Debug, Clone)]
pub struct FastUtilizationAcc {
    from: usize,
    min_horizon: usize,
    t: usize,
    senders: Vec<FastUtilSender>,
}

impl FastUtilizationAcc {
    /// Accumulator scanning from step `from` with the given minimum
    /// segment horizon; `loss_based` flags one entry per sender.
    pub fn new(loss_based: &[bool], from: usize, min_horizon: usize) -> Self {
        FastUtilizationAcc {
            from,
            min_horizon,
            t: 0,
            senders: loss_based
                .iter()
                .map(|&lb| FastUtilSender::new(lb))
                .collect(),
        }
    }

    /// Consume one step: every sender's record, in sender order.
    pub fn push_step(&mut self, records: &[StepRecord]) {
        if self.t >= self.from {
            for (i, r) in records.iter().enumerate() {
                self.senders[i].push(self.t, self.from, self.min_horizon, r);
            }
        }
        self.t += 1;
    }

    /// Consume a batch of steps — bit-identical to per-step pushes. The
    /// segment scan is an inherently sequential state machine, so rows
    /// replay per sender in step order (reading straight from the block's
    /// columns instead of rebuilding a record slice per step).
    pub fn push_steps(&mut self, block: &StepBlock) {
        let len = block.len();
        let start = self.from.saturating_sub(self.t).min(len);
        let (t0, from, min_horizon) = (self.t, self.from, self.min_horizon);
        let rtts = block.rtts();
        for (i, s) in self.senders.iter_mut().enumerate() {
            let windows = block.windows(i);
            let losses = block.sender_losses(i);
            let goodputs = block.goodputs(i);
            for k in start..len {
                let r = StepRecord {
                    window: windows[k],
                    loss: losses[k],
                    rtt: rtts[k],
                    goodput: goodputs[k],
                };
                s.push(t0 + k, from, min_horizon, &r);
            }
        }
        self.t += len;
    }

    /// `fast_utilization::measured_fast_utilization(senders[i], from,
    /// min_horizon)` of the stream so far.
    pub fn measured(&self, i: usize) -> Option<f64> {
        self.senders[i].measured(self.t, self.min_horizon)
    }

    /// Clear run state, keeping the configuration.
    pub fn reset(&mut self) {
        self.t = 0;
        for s in &mut self.senders {
            s.reset();
        }
    }
}

/// The combined single-pass evaluator: one instance per run, consuming
/// each step's shared link state and per-sender records, exposing every
/// axiom score the trace evaluators would produce — bit-identically.
#[derive(Debug, Clone)]
pub struct MetricAccumulator {
    steps: usize,
    n: usize,
    t: usize,
    metrics: MetricSet,
    efficiency: EfficiencyAcc,
    loss: LossAvoidanceAcc,
    latency: LatencyAcc,
    fairness: FairnessAcc,
    convergence: ConvergenceAcc,
    robustness: RobustnessAcc,
    fast_utilization: FastUtilizationAcc,
}

impl MetricAccumulator {
    /// Build the accumulator for one run shape.
    pub fn new(cfg: &MetricConfig) -> Self {
        let tail = cfg.tail_start();
        let n = cfg.loss_based.len();
        MetricAccumulator {
            steps: cfg.steps,
            n,
            t: 0,
            metrics: cfg.metrics,
            efficiency: EfficiencyAcc::new(&cfg.link, tail),
            loss: LossAvoidanceAcc::new(tail),
            latency: LatencyAcc::new(&cfg.link, tail),
            fairness: FairnessAcc::new(n, tail),
            convergence: ConvergenceAcc::new(n, cfg.steps, tail),
            robustness: RobustnessAcc::new(n, cfg.steps, cfg.escape_beta),
            fast_utilization: FastUtilizationAcc::new(&cfg.loss_based, tail, cfg.min_horizon),
        }
    }

    /// Consume one step: the shared total window, link RTT and link loss
    /// (the trace path's `total_window` / `rtt` / `loss` columns), plus
    /// one record per sender in sender order.
    pub fn push_step(&mut self, total: f64, rtt: f64, loss: f64, records: &[StepRecord]) {
        debug_assert_eq!(records.len(), self.n);
        let m = self.metrics;
        if m.contains(MetricSet::EFFICIENCY) {
            self.efficiency.push(total);
        }
        if m.contains(MetricSet::LOSS_AVOIDANCE) {
            self.loss.push(loss);
        }
        if m.contains(MetricSet::LATENCY) {
            self.latency.push(rtt, loss);
        }
        if m.contains(MetricSet::FAIRNESS) {
            self.fairness.push_step(records);
        }
        if m.contains(MetricSet::CONVERGENCE) {
            self.convergence.push_step(records);
        }
        if m.contains(MetricSet::ROBUSTNESS) {
            self.robustness.push_step(records);
        }
        if m.contains(MetricSet::FAST_UTILIZATION) {
            self.fast_utilization.push_step(records);
        }
        self.t += 1;
    }

    /// Consume a whole block of steps at once — bit-identical to feeding
    /// the same rows through [`MetricAccumulator::push_step`] one at a
    /// time. Each sub-accumulator walks the block's contiguous columns in
    /// step order, so the f64 accumulation order is exactly the per-step
    /// order; the win is branch hoisting (tail boundaries and quartile
    /// cuts computed once per block instead of once per step) and the
    /// removal of the per-step `StepRecord` slice round-trip.
    pub fn push_steps(&mut self, block: &StepBlock) {
        debug_assert_eq!(block.num_senders(), self.n);
        let m = self.metrics;
        if m.contains(MetricSet::EFFICIENCY) {
            self.efficiency.push_block(block.totals());
        }
        if m.contains(MetricSet::LOSS_AVOIDANCE) {
            self.loss.push_block(block.link_losses());
        }
        if m.contains(MetricSet::LATENCY) {
            self.latency.push_block(block.rtts(), block.link_losses());
        }
        if m.contains(MetricSet::FAIRNESS) {
            self.fairness.push_steps(block);
        }
        if m.contains(MetricSet::CONVERGENCE) {
            self.convergence.push_steps(block);
        }
        if m.contains(MetricSet::ROBUSTNESS) {
            self.robustness.push_steps(block);
        }
        if m.contains(MetricSet::FAST_UTILIZATION) {
            self.fast_utilization.push_steps(block);
        }
        self.t += block.len();
    }

    /// Steps consumed so far.
    pub fn steps_seen(&self) -> usize {
        self.t
    }

    /// Steps the configuration promised.
    pub fn steps_expected(&self) -> usize {
        self.steps
    }

    /// Number of senders.
    pub fn num_senders(&self) -> usize {
        self.n
    }

    /// Metric I: `efficiency::measured_efficiency`.
    pub fn measured_efficiency(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::EFFICIENCY));
        self.efficiency.measured()
    }

    /// Companion: `efficiency::mean_utilization`.
    pub fn mean_utilization(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::EFFICIENCY));
        self.efficiency.mean_utilization()
    }

    /// Metric III: `loss_avoidance::measured_loss_bound`.
    pub fn measured_loss_bound(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::LOSS_AVOIDANCE));
        self.loss.measured()
    }

    /// Companion: `loss_avoidance::mean_loss`.
    pub fn mean_loss(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::LOSS_AVOIDANCE));
        self.loss.mean()
    }

    /// `loss_avoidance::is_zero_loss`.
    pub fn is_zero_loss(&self) -> bool {
        debug_assert!(self.metrics.contains(MetricSet::LOSS_AVOIDANCE));
        self.loss.is_zero_loss()
    }

    /// Metric VIII: `latency::measured_latency_inflation`.
    pub fn measured_latency_inflation(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::LATENCY));
        self.latency.measured()
    }

    /// Metric IV: `fairness::measured_fairness`.
    pub fn measured_fairness(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::FAIRNESS));
        self.fairness.measured()
    }

    /// Companion: `fairness::jain_index`.
    pub fn jain_index(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::FAIRNESS));
        self.fairness.jain_index()
    }

    /// Metric V: `convergence::measured_convergence`.
    pub fn measured_convergence(&self) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::CONVERGENCE));
        self.convergence.measured()
    }

    /// Metric II per sender: `fast_utilization::measured_fast_utilization`.
    pub fn measured_fast_utilization(&self, i: usize) -> Option<f64> {
        debug_assert!(self.metrics.contains(MetricSet::FAST_UTILIZATION));
        self.fast_utilization.measured(i)
    }

    /// Metric VII: `friendliness::measured_friendliness` for P-set `p`
    /// and Q-set `q`.
    pub fn measured_friendliness(&self, p: &[usize], q: &[usize]) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::FAIRNESS));
        self.fairness.friendliness(p, q)
    }

    /// Metric VI per sender: `robustness::window_escapes` at the
    /// configured β.
    pub fn window_escapes(&self, i: usize, min_suffix_frac: f64) -> bool {
        debug_assert!(self.metrics.contains(MetricSet::ROBUSTNESS));
        self.robustness.escapes(i, min_suffix_frac)
    }

    /// Metric VI per sender: `robustness::window_diverging`.
    pub fn window_diverging(&self, i: usize, growth_margin: f64) -> bool {
        debug_assert!(self.metrics.contains(MetricSet::ROBUSTNESS));
        self.robustness.diverging(i, growth_margin)
    }

    /// Sender `i`'s final window.
    pub fn last_window(&self, i: usize) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::ROBUSTNESS));
        self.robustness.last_window(i)
    }

    /// Sender `i`'s tail-average window.
    pub fn tail_mean_window(&self, i: usize) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::FAIRNESS));
        self.fairness.tail_mean_window(i)
    }

    /// Sender `i`'s tail-average goodput.
    pub fn tail_mean_goodput(&self, i: usize) -> f64 {
        debug_assert!(self.metrics.contains(MetricSet::FAIRNESS));
        self.fairness.tail_mean_goodput(i)
    }

    /// Clear all run state so the accumulator can consume another run of
    /// the same shape (sweep jobs reuse one instance across scenario
    /// variations instead of reallocating per run).
    pub fn reset(&mut self) {
        self.t = 0;
        self.efficiency.reset();
        self.loss.reset();
        self.latency.reset();
        self.fairness.reset();
        self.convergence.reset();
        self.robustness.reset();
        self.fast_utilization.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::testutil::{small_link, trace_from_windows};
    use crate::axioms::{
        convergence, efficiency, fairness, fast_utilization, friendliness, latency, loss_avoidance,
        robustness,
    };
    use crate::trace::RunTrace;

    /// Drive an accumulator with exactly the columns a finished trace
    /// holds — the reference replay every equivalence test uses.
    fn accumulate(trace: &RunTrace, tail_fraction: f64, beta: f64) -> MetricAccumulator {
        let cfg = MetricConfig {
            link: trace.link,
            steps: trace.len(),
            loss_based: trace.senders.iter().map(|s| s.loss_based).collect(),
            tail_fraction,
            min_horizon: fast_utilization::DEFAULT_MIN_HORIZON,
            escape_beta: beta,
            metrics: MetricSet::ALL,
        };
        let mut acc = MetricAccumulator::new(&cfg);
        let mut records = Vec::with_capacity(trace.num_senders());
        for t in 0..trace.len() {
            records.clear();
            for (i, s) in trace.senders.iter().enumerate() {
                records.push(StepRecord {
                    window: s.window[t],
                    loss: s.loss[t],
                    rtt: trace.sender_rtt(i)[t],
                    goodput: s.goodput[t],
                });
            }
            acc.push_step(trace.total_window[t], trace.rtt[t], trace.loss[t], &records);
        }
        acc
    }

    fn assert_matches_trace(trace: &RunTrace, tail_fraction: f64) {
        let tail = trace.tail_start(tail_fraction);
        let beta = 50.0;
        let acc = accumulate(trace, tail_fraction, beta);
        assert_eq!(
            acc.measured_efficiency().to_bits(),
            efficiency::measured_efficiency(trace, tail).to_bits()
        );
        assert_eq!(
            acc.mean_utilization().to_bits(),
            efficiency::mean_utilization(trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_loss_bound().to_bits(),
            loss_avoidance::measured_loss_bound(trace, tail).to_bits()
        );
        assert_eq!(
            acc.mean_loss().to_bits(),
            loss_avoidance::mean_loss(trace, tail).to_bits()
        );
        assert_eq!(
            acc.is_zero_loss(),
            loss_avoidance::is_zero_loss(trace, tail)
        );
        assert_eq!(
            acc.measured_latency_inflation().to_bits(),
            latency::measured_latency_inflation(trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_fairness().to_bits(),
            fairness::measured_fairness(trace, tail).to_bits()
        );
        assert_eq!(
            acc.jain_index().to_bits(),
            fairness::jain_index(trace, tail).to_bits()
        );
        assert_eq!(
            acc.measured_convergence().to_bits(),
            convergence::measured_convergence(trace, tail).to_bits()
        );
        for (i, s) in trace.senders.iter().enumerate() {
            assert_eq!(
                acc.measured_fast_utilization(i).map(f64::to_bits),
                fast_utilization::measured_fast_utilization(
                    s,
                    trace.sender_rtt(i),
                    tail,
                    fast_utilization::DEFAULT_MIN_HORIZON
                )
                .map(f64::to_bits),
                "fast-utilization diverged for sender {i}"
            );
            assert_eq!(
                acc.window_escapes(i, 0.2),
                robustness::window_escapes(s, beta, 0.2)
            );
            assert_eq!(
                acc.window_diverging(i, 1e-9),
                robustness::window_diverging(s, 1e-9)
            );
            assert_eq!(
                acc.last_window(i).to_bits(),
                s.window.last().copied().unwrap_or(0.0).to_bits()
            );
            assert_eq!(
                acc.tail_mean_window(i).to_bits(),
                s.mean_window_from(tail).to_bits()
            );
            assert_eq!(
                acc.tail_mean_goodput(i).to_bits(),
                s.mean_goodput_from(tail).to_bits()
            );
        }
        if trace.num_senders() >= 2 {
            assert_eq!(
                acc.measured_friendliness(&[0], &[1]).to_bits(),
                friendliness::measured_friendliness(trace, &[0], &[1], tail).to_bits()
            );
        }
    }

    #[test]
    fn sawtooth_pair_matches_trace_evaluation() {
        let a: Vec<f64> = (0..64).map(|t| 30.0 + (t % 16) as f64 * 4.0).collect();
        let b: Vec<f64> = (0..64).map(|t| 60.0 - (t % 8) as f64 * 3.0).collect();
        let trace = trace_from_windows(small_link(), &[a, b]);
        for frac in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_matches_trace(&trace, frac);
        }
    }

    #[test]
    fn lossy_overflow_matches_trace_evaluation() {
        // Overshoots C + τ = 120 periodically: loss steps exercise the
        // latency INF path and fast-utilization segment splitting.
        let w: Vec<f64> = (0..48)
            .map(|t| if t % 6 == 5 { 140.0 } else { 80.0 + t as f64 })
            .collect();
        let trace = trace_from_windows(small_link(), &[w]);
        for frac in [0.0, 0.5] {
            assert_matches_trace(&trace, frac);
        }
    }

    #[test]
    fn idle_and_staggered_senders_match_trace_evaluation() {
        // Sender 1 idle for the first half (staggered entry shape).
        let a = vec![50.0; 32];
        let b: Vec<f64> = (0..32).map(|t| if t < 16 { 0.0 } else { 20.0 }).collect();
        let trace = trace_from_windows(small_link(), &[a, b]);
        for frac in [0.0, 0.25, 0.5, 0.75] {
            assert_matches_trace(&trace, frac);
        }
    }

    #[test]
    fn all_idle_trace_matches_vacuous_scores() {
        let trace = trace_from_windows(small_link(), &[vec![0.0; 10], vec![0.0; 10]]);
        assert_matches_trace(&trace, 0.5);
        let acc = accumulate(&trace, 0.5, 50.0);
        assert_eq!(acc.measured_fairness(), 1.0);
        assert_eq!(acc.measured_convergence(), 1.0);
    }

    #[test]
    fn empty_tail_matches_trace_evaluation() {
        let trace = trace_from_windows(small_link(), &[vec![50.0; 8]]);
        assert_matches_trace(&trace, 1.0);
    }

    #[test]
    fn reset_reproduces_a_fresh_accumulator() {
        let w: Vec<f64> = (0..40).map(|t| 10.0 + t as f64).collect();
        let trace = trace_from_windows(small_link(), &[w]);
        let fresh = accumulate(&trace, 0.5, 50.0);
        let mut reused = accumulate(&trace, 0.5, 50.0);
        reused.reset();
        // Replay after reset: every score must match the fresh pass.
        let mut records = Vec::new();
        for t in 0..trace.len() {
            records.clear();
            for (i, s) in trace.senders.iter().enumerate() {
                records.push(StepRecord {
                    window: s.window[t],
                    loss: s.loss[t],
                    rtt: trace.sender_rtt(i)[t],
                    goodput: s.goodput[t],
                });
            }
            reused.push_step(trace.total_window[t], trace.rtt[t], trace.loss[t], &records);
        }
        assert_eq!(
            reused.measured_efficiency().to_bits(),
            fresh.measured_efficiency().to_bits()
        );
        assert_eq!(
            reused.measured_fast_utilization(0).map(f64::to_bits),
            fresh.measured_fast_utilization(0).map(f64::to_bits)
        );
        assert_eq!(
            reused.measured_convergence().to_bits(),
            fresh.measured_convergence().to_bits()
        );
    }

    #[test]
    fn robustness_quartiles_match_growing_window() {
        let w: Vec<f64> = (0..100).map(|t| t as f64).collect();
        let trace = trace_from_windows(crate::link::LinkParams::new(1.0e6, 0.05, 1.0e6), &[w]);
        assert_matches_trace(&trace, 0.5);
        let acc = accumulate(&trace, 0.5, 50.0);
        assert!(acc.window_escapes(0, 0.25));
        assert!(acc.window_diverging(0, 1.0));
    }

    /// Replay the same trace through `StepBlock`s of capacity `cap`,
    /// flushing each full block through the batched `push_steps` ingest —
    /// the path the engine's short-run sink specialization exercises.
    fn accumulate_blocks(
        trace: &RunTrace,
        tail_fraction: f64,
        beta: f64,
        cap: usize,
    ) -> MetricAccumulator {
        let cfg = MetricConfig {
            link: trace.link,
            steps: trace.len(),
            loss_based: trace.senders.iter().map(|s| s.loss_based).collect(),
            tail_fraction,
            min_horizon: fast_utilization::DEFAULT_MIN_HORIZON,
            escape_beta: beta,
            metrics: MetricSet::ALL,
        };
        let mut acc = MetricAccumulator::new(&cfg);
        let mut block = StepBlock::new(trace.num_senders(), cap);
        for t in 0..trace.len() {
            block.stage_shared(trace.total_window[t], trace.rtt[t], trace.loss[t]);
            for (i, s) in trace.senders.iter().enumerate() {
                block.stage_sender(i, s.window[t], s.loss[t], s.goodput[t]);
            }
            if block.advance() {
                acc.push_steps(&block);
                block.begin(t + 1);
            }
        }
        if !block.is_empty() {
            acc.push_steps(&block);
        }
        acc
    }

    fn assert_blocks_match_steps(trace: &RunTrace, tail_fraction: f64, cap: usize) {
        let beta = 50.0;
        let by_step = accumulate(trace, tail_fraction, beta);
        let by_block = accumulate_blocks(trace, tail_fraction, beta, cap);
        assert_eq!(by_block.steps_seen(), by_step.steps_seen());
        assert_eq!(
            by_block.measured_efficiency().to_bits(),
            by_step.measured_efficiency().to_bits()
        );
        assert_eq!(
            by_block.mean_utilization().to_bits(),
            by_step.mean_utilization().to_bits()
        );
        assert_eq!(
            by_block.measured_loss_bound().to_bits(),
            by_step.measured_loss_bound().to_bits()
        );
        assert_eq!(
            by_block.mean_loss().to_bits(),
            by_step.mean_loss().to_bits()
        );
        assert_eq!(by_block.is_zero_loss(), by_step.is_zero_loss());
        assert_eq!(
            by_block.measured_latency_inflation().to_bits(),
            by_step.measured_latency_inflation().to_bits()
        );
        assert_eq!(
            by_block.measured_fairness().to_bits(),
            by_step.measured_fairness().to_bits()
        );
        assert_eq!(
            by_block.jain_index().to_bits(),
            by_step.jain_index().to_bits()
        );
        assert_eq!(
            by_block.measured_convergence().to_bits(),
            by_step.measured_convergence().to_bits()
        );
        for i in 0..trace.num_senders() {
            assert_eq!(
                by_block.measured_fast_utilization(i).map(f64::to_bits),
                by_step.measured_fast_utilization(i).map(f64::to_bits),
                "fast-utilization diverged for sender {i} at cap {cap}"
            );
            assert_eq!(
                by_block.window_escapes(i, 0.2),
                by_step.window_escapes(i, 0.2)
            );
            assert_eq!(
                by_block.window_diverging(i, 1e-9),
                by_step.window_diverging(i, 1e-9)
            );
            assert_eq!(
                by_block.last_window(i).to_bits(),
                by_step.last_window(i).to_bits()
            );
            assert_eq!(
                by_block.tail_mean_window(i).to_bits(),
                by_step.tail_mean_window(i).to_bits()
            );
            assert_eq!(
                by_block.tail_mean_goodput(i).to_bits(),
                by_step.tail_mean_goodput(i).to_bits()
            );
        }
        if trace.num_senders() >= 2 {
            assert_eq!(
                by_block.measured_friendliness(&[0], &[1]).to_bits(),
                by_step.measured_friendliness(&[0], &[1]).to_bits()
            );
        }
    }

    #[test]
    fn block_ingest_matches_per_step_ingest() {
        // Odd capacities force tail boundaries and quartile cuts to land
        // mid-block; cap 1 degenerates to the per-step path; a cap larger
        // than the run exercises the final partial flush.
        let a: Vec<f64> = (0..64).map(|t| 30.0 + (t % 16) as f64 * 4.0).collect();
        let b: Vec<f64> = (0..64).map(|t| 60.0 - (t % 8) as f64 * 3.0).collect();
        let sawtooth = trace_from_windows(small_link(), &[a, b]);
        let lossy: Vec<f64> = (0..48)
            .map(|t| if t % 6 == 5 { 140.0 } else { 80.0 + t as f64 })
            .collect();
        let lossy = trace_from_windows(small_link(), &[lossy]);
        let idle_a = vec![50.0; 32];
        let idle_b: Vec<f64> = (0..32).map(|t| if t < 16 { 0.0 } else { 20.0 }).collect();
        let staggered = trace_from_windows(small_link(), &[idle_a, idle_b]);
        for trace in [&sawtooth, &lossy, &staggered] {
            for frac in [0.0, 0.25, 0.5, 0.9, 1.0] {
                for cap in [1, 7, 16, 1024] {
                    assert_blocks_match_steps(trace, frac, cap);
                }
            }
        }
    }

    #[test]
    fn step_block_layout_round_trips_records() {
        let mut block = StepBlock::new(2, 4);
        block.begin(10);
        for k in 0..3 {
            block.stage_shared(100.0 + k as f64, 0.05, 0.01 * k as f64);
            block.stage_sender(0, 1.0 + k as f64, 0.0, 9.0);
            block.stage_sender(1, 2.0 + k as f64, 0.5, 8.0);
            assert!(!block.advance());
        }
        assert_eq!(block.len(), 3);
        assert_eq!(block.start_step(), 10);
        assert_eq!(block.num_senders(), 2);
        assert_eq!(block.totals(), &[100.0, 101.0, 102.0]);
        assert_eq!(block.windows(0), &[1.0, 2.0, 3.0]);
        assert_eq!(block.windows(1), &[2.0, 3.0, 4.0]);
        let r = block.record(1, 2);
        assert_eq!(r.window, 4.0);
        assert_eq!(r.loss, 0.5);
        assert_eq!(r.rtt, 0.05);
        assert_eq!(r.goodput, 8.0);
        // The fourth row fills the block.
        block.stage_shared(103.0, 0.05, 0.0);
        block.stage_sender(0, 4.0, 0.0, 9.0);
        block.stage_sender(1, 5.0, 0.0, 8.0);
        assert!(block.advance());
        assert_eq!(block.len(), block.capacity());
        // Reshape resets and re-zeroes for a new run shape.
        block.reshape(3, 8);
        assert!(block.is_empty());
        assert_eq!(block.num_senders(), 3);
        assert!(block.windows(2).is_empty());
        block.stage_shared(1.0, 0.1, 0.0);
        assert!(!block.advance());
        assert_eq!(block.windows(2), &[0.0]);
    }

    #[test]
    fn mid_stream_reads_do_not_disturb_the_final_score() {
        // `measured` on the fast-utilization accumulator clones to flush
        // the open segment; reading mid-stream must not corrupt state.
        let w: Vec<f64> = (0..40).map(|t| 10.0 + t as f64).collect();
        let trace = trace_from_windows(small_link(), std::slice::from_ref(&w));
        let cfg = MetricConfig {
            link: trace.link,
            steps: trace.len(),
            loss_based: vec![true],
            tail_fraction: 0.0,
            min_horizon: 8,
            escape_beta: 50.0,
            metrics: MetricSet::ALL,
        };
        let mut acc = MetricAccumulator::new(&cfg);
        for (t, &wt) in w.iter().enumerate() {
            let rec = [StepRecord {
                window: wt,
                loss: trace.senders[0].loss[t],
                rtt: trace.rtt[t],
                goodput: trace.senders[0].goodput[t],
            }];
            acc.push_step(trace.total_window[t], trace.rtt[t], trace.loss[t], &rec);
            let _ = acc.measured_fast_utilization(0);
        }
        assert_eq!(
            acc.measured_fast_utilization(0).map(f64::to_bits),
            fast_utilization::measured_fast_utilization(
                &trace.senders[0],
                trace.sender_rtt(0),
                0,
                8
            )
            .map(f64::to_bits)
        );
    }
}
